//! Release-mode scale gates for the sharded parallel driver.
//!
//! Both tests are `#[ignore]`d: they run 100k–10M-machine fleets and
//! belong to the release-mode CI jobs (the smoke by name in the
//! release-smokes job, the 10M gate in the scale job's `--ignored`
//! sweep), not the debug tier-1 run.

use std::time::Instant;

use mirage_deploy::ProtocolChoice;
use mirage_sim::{run, run_parallel_in, ScenarioBuilder, SimArena};
use mirage_telemetry::Telemetry;

/// The paper's Figure-10 shape at 100k machines: 20 clusters × 5000,
/// problems placed late in the staging order.
fn scenario_100k() -> mirage_sim::Scenario {
    ScenarioBuilder::new()
        .clusters(20, 5_000, 1)
        .problem_in_clusters("prevalent", &[15, 16, 17])
        .problem_in_clusters("rare-a", &[18])
        .problem_in_clusters("rare-b", &[19])
        .build()
}

/// Release-smoke gate: the parallel driver at 4 workers is bit-identical
/// to the sequential oracle on the full 100k Figure-10 scenario, for
/// every protocol.
#[test]
#[ignore = "release-mode smoke; run explicitly in the release-smokes CI job"]
fn parallel_smoke_100k_4_workers() {
    let s = scenario_100k();
    let mut arena = SimArena::new();
    for choice in [
        ProtocolChoice::NoStaging,
        ProtocolChoice::Balanced,
        ProtocolChoice::FrontLoading,
    ] {
        let mut oracle = choice.build(s.plan.clone(), s.threshold);
        let expect = run(&s, &mut oracle);
        let mut p = choice.build(s.plan.clone(), s.threshold);
        let got = run_parallel_in(&mut arena, &s, &mut p, Telemetry::noop(), 4);
        assert_eq!(expect, got, "{} diverged at 100k/4 workers", choice.name());
        assert_eq!(expect.passed_count(), s.machine_count());
    }
}

/// Scale gate (acceptance): a 10M-machine Balanced deployment completes
/// through the parallel driver in under 10 seconds of run time
/// (scenario construction excluded).
#[test]
#[ignore = "10M-machine scale gate; release mode only (CI scale job)"]
fn parallel_ten_million_machines_under_ten_seconds() {
    let s = ScenarioBuilder::new()
        .clusters(1_000, 10_000, 1)
        .problem_in_clusters("prevalent", &[750, 800, 850])
        .problem_in_clusters("rare-a", &[900])
        .problem_in_clusters("rare-b", &[950])
        .build();
    assert_eq!(s.machine_count(), 10_000_000);
    let mut protocol = ProtocolChoice::Balanced.build(s.plan.clone(), s.threshold);
    let mut arena = SimArena::new();
    let started = Instant::now();
    let metrics = run_parallel_in(&mut arena, &s, &mut protocol, Telemetry::noop(), 8);
    let elapsed = started.elapsed();
    assert_eq!(metrics.passed_count(), 10_000_000);
    assert!(metrics.completion_time.is_some());
    // 3 distinct problems -> 3 fix releases.
    assert_eq!(metrics.releases_shipped, 3);
    assert!(
        elapsed.as_secs_f64() < 10.0,
        "10M-machine Balanced run took {:.2} s (budget 10 s)",
        elapsed.as_secs_f64()
    );
}
