//! Integration tests of the simulator → URR wiring: attaching a
//! repository must leave the simulation bit-identical while producing a
//! queryable record of every vendor-received outcome, up to the paper's
//! million-machine scale.

use std::sync::Arc;

use mirage_deploy::{Balanced, NoStaging, Protocol};
use mirage_report::Urr;
use mirage_sim::{run, FaultSpec, ScenarioBuilder};

/// With the knob enabled the metrics are bit-identical to the unwired
/// run, and the repository holds exactly the vendor-received outcomes.
#[test]
fn with_urr_is_observationally_neutral_and_records_everything() {
    let build = || {
        ScenarioBuilder::new()
            .clusters(4, 3, 1)
            .problem_in_clusters("php/crash", &[2])
            .problem_in_clusters("mycnf/overwritten", &[3])
    };
    let plain = build().build();
    let m_plain = run(&plain, &mut Balanced::new(plain.plan.clone(), 1.0));

    let urr = Arc::new(Urr::with_shards(4));
    let wired = build().with_urr(Arc::clone(&urr)).build();
    let m_wired = run(&wired, &mut Balanced::new(wired.plan.clone(), 1.0));

    assert_eq!(m_plain, m_wired, "with_urr must not perturb the simulation");

    // On the reliable channel every test outcome reaches the vendor
    // exactly once: the repository is a complete record.
    let stats = urr.stats();
    assert_eq!(stats.successes, m_wired.passed_count());
    assert_eq!(stats.failures, m_wired.failed_tests);
    assert_eq!(stats.total, m_wired.passed_count() + m_wired.failed_tests);
    assert_eq!(stats.distinct_failures, 2);
    assert_eq!(stats.image_bytes, 0, "interned reports carry no image");

    // The vendor's queries see the deployment's problems.
    let groups = urr.failure_groups();
    assert_eq!(groups.len(), 2);
    assert_eq!(groups[0].signature, "php/crash", "discovered first");
    assert_eq!(groups[0].clusters, vec![2]);
    assert_eq!(groups[1].signature, "mycnf/overwritten");
    let top = urr.top_k_failure_groups(1);
    assert_eq!(top.len(), 1);
    assert_eq!(top[0].count, groups.iter().map(|g| g.count).max().unwrap());

    // Per-cluster rates cover every cluster (all machines reported) and
    // failures appear only in the problem clusters.
    let rates = urr.cluster_failure_rates();
    assert_eq!(rates.len(), 4);
    assert_eq!(rates[0].failures, 0);
    assert!(rates[2].failures > 0);
    assert!(rates[3].failures > 0);

    // Every shipped fix shows up as a release: r0 plus one per fix.
    let releases = urr.release_summaries();
    assert_eq!(releases.len(), 1 + m_wired.releases_shipped as usize);
    assert_eq!(releases[0].version, "r0");
    assert!(
        releases[0].failures > 0,
        "original upgrade accumulated failures"
    );
    assert_eq!(
        releases.last().unwrap().failures,
        0,
        "final release fixed everything"
    );
}

/// Under faults the repository records what the vendor actually
/// received: duplicated reports deposit again (deduplicated by
/// signature when grouping), lost reports never arrive.
#[test]
fn with_urr_under_faults_records_received_reports() {
    let urr = Arc::new(Urr::with_shards(2));
    let s = ScenarioBuilder::new()
        .clusters(3, 4, 1)
        .problem_in_clusters("p", &[1])
        .faults(FaultSpec::new(0xFA17).loss(0.2).duplication(0.2))
        .with_urr(Arc::clone(&urr))
        .build();
    let mut protocol = Balanced::new(s.plan.clone(), 1.0);
    let m = run(&s, &mut protocol);
    assert!(protocol.done(), "deployment must converge under faults");
    assert!(m.converged(s.machine_count()));

    let stats = urr.stats();
    // Every machine eventually passed and its report was received at
    // least once; duplicates may push the count higher.
    assert!(stats.successes >= m.passed_count());
    assert!(stats.failures >= 1);
    assert_eq!(stats.distinct_failures, 1);
    let groups = urr.failure_groups();
    assert_eq!(groups[0].signature, "p");
    assert_eq!(groups[0].clusters, vec![1]);
}

/// Acceptance: a million-machine simulated deployment with `with_urr`
/// enabled completes in release mode and answers a top-k failure-group
/// query. Gated behind `--ignored` so plain `cargo test` stays fast.
#[test]
#[ignore = "1M-machine run; exercised via cargo test --release -- --ignored"]
fn million_machine_run_with_urr_answers_topk() {
    let urr = Arc::new(Urr::new());
    let s = ScenarioBuilder::new()
        .clusters(100, 10_000, 1)
        .problem_in_clusters("prevalent", &[70, 71, 72])
        .problem_in_clusters("rare-a", &[85])
        .problem_in_clusters("rare-b", &[90])
        .with_urr(Arc::clone(&urr))
        .build();
    assert_eq!(s.machine_count(), 1_000_000);

    let m = run(&s, &mut NoStaging::new(s.plan.clone()));
    assert_eq!(m.passed_count(), 1_000_000);
    assert_eq!(m.failed_tests, 50_000);

    // The repository holds the full fleet's outcomes...
    let stats = urr.stats();
    assert_eq!(stats.successes, 1_000_000);
    assert_eq!(stats.failures, 50_000);
    assert_eq!(stats.distinct_failures, 3);

    // ...and the vendor's top-k query ranks the prevalent problem first.
    let top = urr.top_k_failure_groups(2);
    assert_eq!(top.len(), 2);
    assert_eq!(top[0].signature, "prevalent");
    assert_eq!(top[0].count, 30_000);
    assert_eq!(top[0].machines.len(), 30_000);
    assert_eq!(top[0].clusters, vec![70, 71, 72]);
    assert_eq!(top[1].count, 10_000);

    // Drill-downs and rates stay consistent at scale.
    assert_eq!(urr.clusters_for_signature("rare-a").unwrap(), vec![85]);
    let rates = urr.cluster_failure_rates();
    assert_eq!(rates.len(), 100);
    assert!(rates[70].rate() > 0.49 && rates[70].rate() < 0.51);
}

/// A simulated campaign persisted through the storage layer: the
/// journaled run is observationally neutral (identical metrics and
/// repository contents to `with_urr`), and after a simulated vendor
/// crash the recovered repository answers every query the live one
/// could.
#[test]
fn durable_campaign_survives_vendor_crash() {
    use mirage_report::{DurableConfig, DurableUrr, MemoryStore, UrrStore};

    let build = || {
        ScenarioBuilder::new()
            .clusters(4, 50, 2)
            .problem_in_clusters("php/crash", &[2])
            .problem_in_clusters("mycnf/overwritten", &[3])
            .faults(FaultSpec::new(0xD0_0D).loss(0.1).duplication(0.1))
    };

    // Baseline: plain in-memory repository.
    let plain_urr = Arc::new(Urr::with_shards(4));
    let plain = build().with_urr(Arc::clone(&plain_urr)).build();
    let m_plain = run(&plain, &mut Balanced::new(plain.plan.clone(), 1.0));

    // Journaled: same campaign, deposits flow through the WAL, with a
    // mid-campaign compaction cadence.
    let store = MemoryStore::with_segment_bytes(16 << 10);
    let handle = store.clone();
    let durable = Arc::new(
        DurableUrr::new(
            Box::new(store),
            DurableConfig {
                shards: 4,
                snapshot_every_batches: 1,
                ..DurableConfig::default()
            },
        )
        .expect("durable"),
    );
    let wired = build().with_durable_urr(Arc::clone(&durable)).build();
    let m_wired = run(&wired, &mut Balanced::new(wired.plan.clone(), 1.0));

    assert_eq!(
        m_plain, m_wired,
        "journaling must not perturb the simulation"
    );
    assert_eq!(durable.urr().stats(), plain_urr.stats());
    assert_eq!(durable.urr().failure_groups(), plain_urr.failure_groups());
    assert!(
        !handle.snapshots().expect("snapshots").is_empty(),
        "campaign wrote at least one compacted snapshot"
    );

    // Vendor crash: image the store, recover, and compare every surface.
    let crashed = handle.fork();
    let (recovered, report) = DurableUrr::recover(
        Box::new(crashed),
        DurableConfig {
            shards: 4,
            snapshot_every_batches: 1,
            ..DurableConfig::default()
        },
    )
    .expect("recover");
    assert!(report.snapshot_loaded, "recovery started from a snapshot");
    assert_eq!(report.torn_tail, None);
    let (live, back) = (durable.urr(), recovered.urr());
    assert_eq!(live.stats(), back.stats());
    assert_eq!(live.failure_groups(), back.failure_groups());
    assert_eq!(live.top_k_failure_groups(2), back.top_k_failure_groups(2));
    assert_eq!(live.cluster_failure_rates(), back.cluster_failure_rates());
    assert_eq!(live.release_summaries(), back.release_summaries());
    assert_eq!(live.to_json(), back.to_json());
    assert_eq!(
        live.machines_for_signature("php/crash"),
        back.machines_for_signature("php/crash")
    );
    // The frozen serving view of the recovered repository matches too.
    assert_eq!(live.snapshot(), back.snapshot());
}
