//! Fault-injection integration tests: churn windows, rep crashes and
//! timeout waivers, and an (ignored) million-machine sweep.
//!
//! These exercise the unreliable-channel path of the runner — the
//! reliable fast path is covered by the zero-fault equivalence
//! property in `proptests.rs`.

use mirage_deploy::{Balanced, MachineId, Protocol, ProtocolChoice};
use mirage_sim::{run, FaultSpec, Scenario, ScenarioBuilder, SimTime};

/// Cluster id owning a given machine in the scenario's plan.
fn cluster_of(scenario: &Scenario, machine: MachineId) -> usize {
    scenario
        .plan
        .clusters
        .iter()
        .find(|c| c.members.contains(&machine))
        .expect("machine belongs to some cluster")
        .id
}

/// A machine that leaves the network before its stage is reached is
/// notified when it rejoins: the fleet still converges, and the churned
/// cluster's latency is pushed past the rejoin time.
#[test]
fn machine_leaving_before_its_stage_delays_only_its_cluster() {
    let rejoin: SimTime = 100_000;
    let scenario = ScenarioBuilder::new()
        .clusters(4, 8, 1)
        // One non-rep of the last cluster is gone from t=1 until long
        // after the healthy fleet would have finished.
        .faults(FaultSpec::new(11).churn(3, 1, 1, rejoin))
        .build();
    let total = scenario.plan.machine_count();
    let (churned, leave, back) = scenario.faults.churn[0];
    assert_eq!((leave, back), (1, rejoin));
    assert_eq!(cluster_of(&scenario, churned), 3);

    let metrics = run(
        &scenario,
        &mut Balanced::new(scenario.plan.clone(), scenario.threshold),
    );
    assert!(metrics.converged(total), "churned machine passes on rejoin");
    assert!(
        metrics.pass_time(churned).unwrap() >= rejoin,
        "pass {:?} must postdate rejoin {rejoin}",
        metrics.pass_time(churned)
    );

    let latencies = metrics.cluster_latencies(&scenario.plan, 1.0);
    assert!(latencies.iter().all(|l| l.time.is_some()));
    assert!(
        latencies[3].time.unwrap() >= rejoin,
        "churned cluster completes only after the rejoin"
    );
    for healthy in &latencies[..3] {
        assert!(
            healthy.time.unwrap() < rejoin,
            "cluster {} should finish before the churned one rejoins",
            healthy.cluster
        );
    }
    assert!(metrics.completion_time.unwrap() >= rejoin);
}

/// A machine that only joins the network after the plan was made (it
/// is offline from t=0) is picked up by its first deliverable
/// notification; the fleet converges.
#[test]
fn machine_joining_after_planning_is_upgraded_on_arrival() {
    let arrives: SimTime = 7_500;
    let scenario = ScenarioBuilder::new()
        .clusters(3, 6, 1)
        .faults(FaultSpec::new(23).churn(0, 1, 0, arrives))
        .build();
    let total = scenario.plan.machine_count();
    let (late_joiner, ..) = scenario.faults.churn[0];

    let metrics = run(
        &scenario,
        &mut Balanced::new(scenario.plan.clone(), scenario.threshold),
    );
    assert!(metrics.converged(total));
    assert!(
        metrics.pass_time(late_joiner).unwrap() >= arrives,
        "cannot integrate before joining the network"
    );
    // Everyone else is unaffected by the straggler's absence except
    // for stage ordering: at threshold 1.0 the joiner's own cluster
    // gates on it, so its latency lands after the arrival...
    let latencies = metrics.cluster_latencies(&scenario.plan, 1.0);
    assert!(latencies[0].time.unwrap() >= arrives);
    // ...while a sub-1.0 threshold view of the same cluster is already
    // served by the machines that never left.
    let relaxed = metrics.cluster_latencies(&scenario.plan, 0.5);
    assert!(relaxed[0].time.unwrap() < arrives);
}

/// A representative that crashes and never returns is waived by the
/// timeout-based degradation: the protocol still completes, counts the
/// waiver in `rep_timeouts`, and every surviving machine passes.
#[test]
fn crashed_rep_is_waived_and_the_rest_of_the_fleet_converges() {
    let scenario = ScenarioBuilder::new()
        .clusters(3, 10, 1)
        .faults(FaultSpec::new(31).crash_rep(1, 0).rep_timeout(200))
        .build();
    let total = scenario.plan.machine_count();
    let (crashed, _, gone_until) = scenario.faults.churn[0];
    assert_eq!(gone_until, SimTime::MAX, "crash means never rejoining");
    assert!(scenario.plan.clusters[1].members.contains(&crashed));

    let mut protocol = Balanced::new(scenario.plan.clone(), scenario.threshold)
        .with_rep_timeout(scenario.faults.rep_timeout.unwrap());
    let metrics = run(&scenario, &mut protocol);
    assert!(protocol.done(), "waiver unblocks the protocol");
    assert!(metrics.rep_timeouts >= 1, "the crashed rep was waived");
    assert!(!metrics.converged(total), "the crashed rep never passes");
    assert_eq!(metrics.passed_count(), total - 1);
    assert_eq!(metrics.pass_time(crashed), None);
    assert!(
        metrics.completion_time.is_some(),
        "completion despite the permanent crash"
    );
    let latencies = metrics.cluster_latencies(&scenario.plan, 1.0);
    assert_eq!(latencies[1].time, None, "crashed rep holds 1.0 threshold");
    assert!(latencies[0].time.is_some() && latencies[2].time.is_some());
}

/// Duplicated reports and notifications do not change convergence,
/// only the duplication counter.
#[test]
fn duplication_alone_does_not_change_outcomes() {
    let clean = ScenarioBuilder::new().clusters(4, 12, 2).build();
    let noisy = ScenarioBuilder::new()
        .clusters(4, 12, 2)
        .faults(FaultSpec::new(5).duplication(0.5))
        .build();
    let total = clean.plan.machine_count();

    let base = run(
        &clean,
        &mut Balanced::new(clean.plan.clone(), clean.threshold),
    );
    let dup = run(
        &noisy,
        &mut Balanced::new(noisy.plan.clone(), noisy.threshold),
    );
    assert!(base.converged(total) && dup.converged(total));
    assert_eq!(dup.failed_tests, base.failed_tests);
    assert_eq!(dup.msgs_dropped, 0, "duplication is not loss");
    assert!(dup.msgs_duplicated > 0, "seeded duplication must fire");
}

/// Million-machine fault sweep: 200 clusters x 5000 machines under
/// 20% loss, duplication, delay and rep timeouts. Run with
/// `cargo test --release -p mirage-sim --test fault_injection -- --ignored`.
#[test]
#[ignore = "release-mode scale run"]
fn million_machine_fleet_converges_under_faults() {
    let scenario = ScenarioBuilder::new()
        .clusters(200, 5_000, 2)
        .faults(
            FaultSpec::new(0x00A1_5EED)
                .loss(0.20)
                .duplication(0.10)
                .delay(8)
                .rep_timeout(4_000),
        )
        .build();
    let total = scenario.plan.machine_count();
    assert_eq!(total, 1_000_000);
    for choice in [
        ProtocolChoice::NoStaging,
        ProtocolChoice::Balanced,
        ProtocolChoice::FrontLoading,
    ] {
        let mut protocol = choice
            .build(scenario.plan.clone(), scenario.threshold)
            .with_rep_timeout(scenario.faults.rep_timeout.unwrap());
        let metrics = run(&scenario, &mut protocol);
        assert!(
            metrics.converged(total),
            "{}: {}/{total} passed",
            choice.name(),
            metrics.passed_count()
        );
        assert!(metrics.msgs_dropped > 0 && metrics.retries_sent > 0);
    }
}
