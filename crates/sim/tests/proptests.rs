//! Property-based tests of the simulator + protocols as a system:
//! random small scenarios must always converge, and the paper's
//! overhead relations must hold.

use proptest::prelude::*;

use mirage_deploy::{Balanced, FrontLoading, NoStaging, Protocol};
use mirage_sim::{run, Scenario, ScenarioBuilder};

#[derive(Debug, Clone)]
struct RandomScenario {
    clusters: usize,
    size: usize,
    problem_clusters: Vec<usize>,
    misplaced_cluster: Option<usize>,
    threshold: f64,
}

fn arb_scenario() -> impl Strategy<Value = RandomScenario> {
    (2usize..6, 2usize..6)
        .prop_flat_map(|(clusters, size)| {
            (
                Just(clusters),
                Just(size),
                proptest::collection::btree_set(0..clusters, 0..clusters),
                proptest::option::of(0..clusters),
                prop_oneof![Just(0.5f64), Just(0.75), Just(1.0)],
            )
        })
        .prop_map(
            |(clusters, size, problem_clusters, misplaced_cluster, threshold)| RandomScenario {
                clusters,
                size,
                problem_clusters: problem_clusters.into_iter().collect(),
                misplaced_cluster,
                threshold,
            },
        )
}

fn build(spec: &RandomScenario) -> Scenario {
    let mut builder = ScenarioBuilder::new()
        .clusters(spec.clusters, spec.size, 1)
        .threshold(spec.threshold);
    if !spec.problem_clusters.is_empty() {
        builder = builder.problem_in_clusters("p-main", &spec.problem_clusters);
    }
    if let Some(c) = spec.misplaced_cluster {
        // Only inject where a non-representative exists and the cluster
        // is otherwise healthy (that is what "misplaced" means).
        if spec.size > 1 && !spec.problem_clusters.contains(&c) {
            builder = builder.misplaced_machine(c, "p-misplaced");
        }
    }
    builder.build()
}

fn protocols(scenario: &Scenario) -> Vec<(&'static str, Box<dyn Protocol>)> {
    vec![
        ("NoStaging", Box::new(NoStaging::new(scenario.plan.clone()))),
        (
            "Balanced",
            Box::new(Balanced::new(scenario.plan.clone(), scenario.threshold)),
        ),
        (
            "FrontLoading",
            Box::new(FrontLoading::new(scenario.plan.clone(), scenario.threshold)),
        ),
        (
            "RandomStaging",
            Box::new(Balanced::with_order(
                scenario.plan.clone(),
                scenario.plan.order_by_distance_desc(),
                scenario.threshold,
            )),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every protocol converges on every scenario: all machines pass,
    /// completion is reported, and pass times are sane.
    #[test]
    fn all_protocols_converge(spec in arb_scenario()) {
        let scenario = build(&spec);
        let total = scenario.machine_count();
        for (name, mut protocol) in protocols(&scenario) {
            let metrics = run(&scenario, protocol.as_mut());
            prop_assert_eq!(
                metrics.machine_pass_time.len(),
                total,
                "{} left machines behind", name
            );
            prop_assert!(metrics.completion_time.is_some(), "{} never completed", name);
            prop_assert!(protocol.done(), "{} not done", name);
            let max_pass = metrics.machine_pass_time.values().max().copied().unwrap_or(0);
            prop_assert!(
                metrics.completion_time.unwrap() >= max_pass,
                "{} completed before its last machine", name
            );
        }
    }

    /// NoStaging's overhead equals the problem population exactly, and
    /// staged protocols never exceed it.
    #[test]
    fn staging_never_increases_overhead(spec in arb_scenario()) {
        let scenario = build(&spec);
        let m = scenario.machine_problem.len();
        let nostaging = run(&scenario, &mut NoStaging::new(scenario.plan.clone()));
        prop_assert_eq!(nostaging.failed_tests, m);
        for (name, mut protocol) in protocols(&scenario) {
            let metrics = run(&scenario, protocol.as_mut());
            prop_assert!(
                metrics.failed_tests <= m,
                "{} overhead {} exceeds NoStaging {}", name, metrics.failed_tests, m
            );
        }
    }

    /// The number of releases equals the number of distinct problems
    /// present in the fleet (each needs exactly one fix).
    #[test]
    fn one_release_per_problem(spec in arb_scenario()) {
        let scenario = build(&spec);
        let distinct = scenario.problem_populations().len() as u32;
        for (name, mut protocol) in protocols(&scenario) {
            let metrics = run(&scenario, protocol.as_mut());
            prop_assert_eq!(
                metrics.releases_shipped, distinct,
                "{} shipped a surprising number of releases", name
            );
        }
    }

    /// Healthy fleets complete with zero failures and zero releases at
    /// the deterministic per-protocol time.
    #[test]
    fn healthy_fleet_timing(clusters in 1usize..6, size in 1usize..6) {
        let scenario = ScenarioBuilder::new().clusters(clusters, size, 1).build();
        let cycle = scenario.timings.machine_cycle();
        let balanced = run(&scenario, &mut Balanced::new(scenario.plan.clone(), 1.0));
        prop_assert_eq!(balanced.failed_tests, 0);
        // Sequential reps+nonreps per cluster (single-member clusters
        // skip the empty non-rep stage).
        let per_cluster = if size == 1 { cycle } else { 2 * cycle };
        prop_assert_eq!(
            balanced.completion_time,
            Some(per_cluster * clusters as u64)
        );
        let nostaging = run(&scenario, &mut NoStaging::new(scenario.plan.clone()));
        prop_assert_eq!(nostaging.completion_time, Some(cycle));
    }
}
