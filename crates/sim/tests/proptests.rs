//! Randomised tests of the simulator + protocols as a system: random
//! small scenarios must always converge, the paper's overhead
//! relations must hold, and the interned data plane must be
//! bit-identical to the retained string-keyed reference.
//!
//! Scenarios are generated with a seeded xorshift generator, so every
//! run exercises the same cases deterministically and offline.

use std::collections::BTreeSet;
use std::sync::Arc;

use mirage_deploy::reference::{AnyNamedProtocol, NamedProtocol};
use mirage_deploy::{AnyProtocol, Balanced, NoStaging, Protocol, ProtocolChoice};
use mirage_sim::runner::reference::{run_reference, NamedScenario};
use mirage_sim::{
    run, run_parallel, run_parallel_with_telemetry, run_with_telemetry, FaultSpec, Scenario,
    ScenarioBuilder,
};
use mirage_telemetry::{Journal, Registry, Telemetry};

/// Deterministic xorshift64 generator for scenario specs.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

#[derive(Debug, Clone)]
struct RandomScenario {
    clusters: usize,
    size: usize,
    problem_clusters: Vec<usize>,
    misplaced_cluster: Option<usize>,
    threshold: f64,
    /// `(cluster, count, until)` offline directive, if any.
    offline: Option<(usize, usize, u64)>,
    /// `(problem cluster, count)` missed-detection directive, if any.
    missed: Option<(usize, usize)>,
}

fn random_scenario(rng: &mut Rng) -> RandomScenario {
    let clusters = 2 + rng.below(4);
    let size = 2 + rng.below(4);
    let mut problem_clusters = BTreeSet::new();
    for _ in 0..rng.below(clusters) {
        problem_clusters.insert(rng.below(clusters));
    }
    let misplaced_cluster = if rng.below(2) == 0 {
        Some(rng.below(clusters))
    } else {
        None
    };
    let threshold = [0.5f64, 0.75, 1.0][rng.below(3)];
    RandomScenario {
        clusters,
        size,
        problem_clusters: problem_clusters.into_iter().collect(),
        misplaced_cluster,
        threshold,
        offline: None,
        missed: None,
    }
}

/// Like [`random_scenario`], but also exercises the offline and
/// missed-detection extension knobs (used by the driver-equivalence
/// test, which makes no behavioural assumptions beyond determinism).
fn random_scenario_ext(rng: &mut Rng) -> RandomScenario {
    let mut spec = random_scenario(rng);
    if rng.below(2) == 0 {
        let cluster = rng.below(spec.clusters);
        let count = 1 + rng.below(2);
        let until = 50 + 50 * rng.below(20) as u64;
        spec.offline = Some((cluster, count, until));
    }
    if rng.below(2) == 0 {
        if let Some(&c) = spec.problem_clusters.first() {
            spec.missed = Some((c, 1 + rng.below(spec.size)));
        }
    }
    spec
}

fn build(spec: &RandomScenario) -> Scenario {
    let mut builder = ScenarioBuilder::new()
        .clusters(spec.clusters, spec.size, 1)
        .threshold(spec.threshold);
    if !spec.problem_clusters.is_empty() {
        builder = builder.problem_in_clusters("p-main", &spec.problem_clusters);
    }
    if let Some(c) = spec.misplaced_cluster {
        // Only inject where a non-representative exists and the cluster
        // is otherwise healthy (that is what "misplaced" means).
        if spec.size > 1 && !spec.problem_clusters.contains(&c) {
            builder = builder.misplaced_machine(c, "p-misplaced");
        }
    }
    if let Some((cluster, count, until)) = spec.offline {
        builder = builder.offline_machines(cluster, count, until);
    }
    if let Some((cluster, count)) = spec.missed {
        builder = builder.missed_detections(cluster, count);
    }
    builder.build()
}

/// The four protocol selections exercised by every property, through
/// the unified dispatch surface (RandomStaging's shuffle is seeded per
/// case so different cases explore different orders deterministically).
fn choices(case: u64) -> [ProtocolChoice; 4] {
    [
        ProtocolChoice::NoStaging,
        ProtocolChoice::Balanced,
        ProtocolChoice::FrontLoading,
        ProtocolChoice::RandomStaging { seed: case },
    ]
}

fn protocols(scenario: &Scenario, case: u64) -> Vec<(&'static str, AnyProtocol)> {
    choices(case)
        .into_iter()
        .map(|c| (c.name(), c.build(scenario.plan.clone(), scenario.threshold)))
        .collect()
}

/// The string-keyed reference protocols, in the same order as
/// [`protocols`] and with the same RandomStaging order (both sides
/// derive it from the same seeded shuffle).
fn named_protocols(named: &NamedScenario, case: u64) -> Vec<(&'static str, AnyNamedProtocol)> {
    choices(case)
        .into_iter()
        .map(|c| (c.name(), c.build_named(named.plan.clone(), named.threshold)))
        .collect()
}

/// Every protocol converges on every scenario: all machines pass,
/// completion is reported, and pass times are sane.
#[test]
fn all_protocols_converge() {
    let mut rng = Rng::new(0x51);
    for case in 0..64 {
        let spec = random_scenario(&mut rng);
        let scenario = build(&spec);
        let total = scenario.machine_count();
        for (name, mut protocol) in protocols(&scenario, case) {
            let metrics = run(&scenario, &mut protocol);
            assert_eq!(
                metrics.passed_count(),
                total,
                "case {case}: {name} left machines behind ({spec:?})"
            );
            assert!(
                metrics.completion_time.is_some(),
                "case {case}: {name} never completed ({spec:?})"
            );
            assert!(protocol.done(), "case {case}: {name} not done ({spec:?})");
            let max_pass = metrics.max_pass_time().unwrap_or(0);
            assert!(
                metrics.completion_time.unwrap() >= max_pass,
                "case {case}: {name} completed before its last machine ({spec:?})"
            );
        }
    }
}

/// NoStaging's overhead equals the problem population exactly, and
/// staged protocols never exceed it.
#[test]
fn staging_never_increases_overhead() {
    let mut rng = Rng::new(0x52);
    for case in 0..64 {
        let spec = random_scenario(&mut rng);
        let scenario = build(&spec);
        let m = scenario.problem_machine_count();
        let nostaging = run(&scenario, &mut NoStaging::new(scenario.plan.clone()));
        assert_eq!(nostaging.failed_tests, m, "case {case} ({spec:?})");
        for (name, mut protocol) in protocols(&scenario, case) {
            let metrics = run(&scenario, &mut protocol);
            assert!(
                metrics.failed_tests <= m,
                "case {case}: {name} overhead {} exceeds NoStaging {m} ({spec:?})",
                metrics.failed_tests
            );
        }
    }
}

/// The number of releases equals the number of distinct problems
/// present in the fleet (each needs exactly one fix).
#[test]
fn one_release_per_problem() {
    let mut rng = Rng::new(0x53);
    for case in 0..64 {
        let spec = random_scenario(&mut rng);
        let scenario = build(&spec);
        let distinct = scenario.problem_populations().len() as u32;
        for (name, mut protocol) in protocols(&scenario, case) {
            let metrics = run(&scenario, &mut protocol);
            assert_eq!(
                metrics.releases_shipped, distinct,
                "case {case}: {name} shipped a surprising number of releases ({spec:?})"
            );
        }
    }
}

/// Healthy fleets complete with zero failures and zero releases at
/// the deterministic per-protocol time.
#[test]
fn healthy_fleet_timing() {
    for clusters in 1usize..6 {
        for size in 1usize..6 {
            let scenario = ScenarioBuilder::new().clusters(clusters, size, 1).build();
            let cycle = scenario.timings.machine_cycle();
            let balanced = run(&scenario, &mut Balanced::new(scenario.plan.clone(), 1.0));
            assert_eq!(balanced.failed_tests, 0);
            // Sequential reps+nonreps per cluster (single-member clusters
            // skip the empty non-rep stage).
            let per_cluster = if size == 1 { cycle } else { 2 * cycle };
            assert_eq!(
                balanced.completion_time,
                Some(per_cluster * clusters as u64),
                "clusters {clusters}, size {size}"
            );
            let nostaging = run(&scenario, &mut NoStaging::new(scenario.plan.clone()));
            assert_eq!(nostaging.completion_time, Some(cycle));
        }
    }
}

/// **The equivalence property** (tentpole acceptance): the interned
/// data plane — id-keyed protocols, calendar event queue, flat-indexed
/// driver — produces *bit-identical* [`mirage_sim::SimMetrics`] (pass
/// times, overhead, releases, completion time, problem discovery
/// order, escapes) to the retained string-keyed reference across
/// random scenarios, thresholds, extension knobs, and all four
/// protocols.
#[test]
fn interned_driver_matches_string_reference() {
    let mut rng = Rng::new(0x5E);
    for case in 0..48 {
        let spec = random_scenario_ext(&mut rng);
        let scenario = build(&spec);
        let named = NamedScenario::from_scenario(&scenario);
        let fast = protocols(&scenario, case);
        let slow = named_protocols(&named, case);
        for ((name, mut fast_p), (slow_name, mut slow_p)) in fast.into_iter().zip(slow) {
            assert_eq!(name, slow_name);
            let fast_m = run(&scenario, &mut fast_p);
            let slow_m = run_reference(&named, &mut slow_p);
            assert_eq!(
                fast_m, slow_m,
                "case {case}: {name} diverged from the string reference ({spec:?})"
            );
            assert_eq!(
                fast_p.done(),
                slow_p.done(),
                "case {case}: {name} done() diverged ({spec:?})"
            );
        }
    }
}

/// **Zero-fault equivalence** (fault-path acceptance): a scenario
/// carrying an explicit [`mirage_sim::FaultPlan::none`] — here attached
/// through the builder's `faults(FaultSpec)` surface with no fault
/// knobs set — produces *bit-identical* [`mirage_sim::SimMetrics`] to
/// the pre-fault string-keyed reference driver, across ≥48 random
/// scenarios and all four protocols. This is what licenses the fault
/// machinery to exist at all: the reliable-channel fast path is
/// untouched, including the new fault counters (all zero).
#[test]
fn fault_plan_none_is_bit_identical() {
    let mut rng = Rng::new(0xFA);
    for case in 0..48u64 {
        let spec = random_scenario_ext(&mut rng);
        let mut builder = ScenarioBuilder::new()
            .clusters(spec.clusters, spec.size, 1)
            .threshold(spec.threshold)
            // A FaultSpec with no fault knobs lowers to FaultPlan::none().
            .faults(FaultSpec::new(case));
        if !spec.problem_clusters.is_empty() {
            builder = builder.problem_in_clusters("p-main", &spec.problem_clusters);
        }
        if let Some((cluster, count, until)) = spec.offline {
            builder = builder.offline_machines(cluster, count, until);
        }
        if let Some((cluster, count)) = spec.missed {
            builder = builder.missed_detections(cluster, count);
        }
        let scenario = builder.build();
        assert!(
            scenario.faults.is_none(),
            "case {case}: a knob-free FaultSpec must lower to the zero-fault plan"
        );
        let named = NamedScenario::from_scenario(&scenario);
        let fast = protocols(&scenario, case);
        let slow = named_protocols(&named, case);
        for ((name, mut fast_p), (slow_name, mut slow_p)) in fast.into_iter().zip(slow) {
            assert_eq!(name, slow_name);
            let fast_m = run(&scenario, &mut fast_p);
            let slow_m = run_reference(&named, &mut slow_p);
            assert_eq!(
                fast_m, slow_m,
                "case {case}: {name} zero-fault run diverged from the pre-fault reference ({spec:?})"
            );
            assert_eq!(
                (
                    fast_m.msgs_dropped,
                    fast_m.msgs_duplicated,
                    fast_m.retries_sent,
                    fast_m.rep_timeouts
                ),
                (0, 0, 0, 0),
                "case {case}: {name} zero-fault run touched the fault counters ({spec:?})"
            );
        }
    }
}

/// **Journal neutrality** (observatory acceptance): attaching a
/// journal-enabled [`Registry`] to both the driver and the protocol
/// produces *bit-identical* [`mirage_sim::SimMetrics`] to a plain,
/// uninstrumented run, across 48 random scenarios (extension knobs
/// included, heavy faults on half the cases) and all four protocols.
/// The journal is strictly observational: it records the timeline but
/// never feeds back into simulation state.
#[test]
fn journaled_run_is_bit_identical() {
    let mut rng = Rng::new(0x0B);
    for case in 0..48u64 {
        let spec = random_scenario_ext(&mut rng);
        let mut builder = ScenarioBuilder::new()
            .clusters(spec.clusters, spec.size, 1)
            .threshold(spec.threshold);
        if !spec.problem_clusters.is_empty() {
            builder = builder.problem_in_clusters("p-main", &spec.problem_clusters);
        }
        if let Some((cluster, count, until)) = spec.offline {
            builder = builder.offline_machines(cluster, count, until);
        }
        if let Some((cluster, count)) = spec.missed {
            builder = builder.missed_detections(cluster, count);
        }
        // Half the cases run under heavy faults so the fault/retry/
        // waiver journal arms are exercised, not just the happy path.
        if case % 2 == 1 {
            builder = builder.faults(
                FaultSpec::new(0x0B5E ^ case)
                    .loss(0.30)
                    .duplication(0.15)
                    .delay(6)
                    .retry(20, 4)
                    .rep_timeout(600),
            );
        }
        let scenario = builder.build();
        for choice in choices(case) {
            let name = choice.name();
            let mut plain_p = choice.build(scenario.plan.clone(), scenario.threshold);
            let plain = run(&scenario, &mut plain_p);

            let registry = Arc::new(Registry::with_journal(4096, Journal::with_spill(4096)));
            let telemetry = Telemetry::from_registry(Arc::clone(&registry));
            let mut journaled_p = choice
                .build(scenario.plan.clone(), scenario.threshold)
                .with_telemetry(telemetry.clone());
            let journaled = run_with_telemetry(&scenario, &mut journaled_p, telemetry);

            assert_eq!(
                plain, journaled,
                "case {case}: {name} metrics diverged under journaling ({spec:?})"
            );
            assert!(
                registry.journal().total() > 0,
                "case {case}: {name} journaled run recorded nothing ({spec:?})"
            );
            assert_eq!(
                registry.journal().dropped(),
                0,
                "case {case}: {name} spill journal dropped events ({spec:?})"
            );
        }
    }
}

/// Builds the parallel-equivalence scenario for `case`: extension
/// knobs from [`random_scenario_ext`], heavy faults (loss, dup, delay,
/// retries, rep timeouts) on odd cases so both the reliable and the
/// faulted replay paths face the full 48-case gauntlet.
fn parallel_case(rng: &mut Rng, case: u64) -> (RandomScenario, Scenario) {
    let spec = random_scenario_ext(rng);
    let mut builder = ScenarioBuilder::new()
        .clusters(spec.clusters, spec.size, 1)
        .threshold(spec.threshold);
    if !spec.problem_clusters.is_empty() {
        builder = builder.problem_in_clusters("p-main", &spec.problem_clusters);
    }
    if let Some((cluster, count, until)) = spec.offline {
        builder = builder.offline_machines(cluster, count, until);
    }
    if let Some((cluster, count)) = spec.missed {
        builder = builder.missed_detections(cluster, count);
    }
    if case % 2 == 1 {
        builder = builder.faults(
            FaultSpec::new(0x0B5E ^ case)
                .loss(0.30)
                .duplication(0.15)
                .delay(6)
                .retry(20, 4)
                .rep_timeout(600),
        );
    }
    (spec, builder.build())
}

/// **Parallel equivalence** (tentpole acceptance): the sharded
/// time-bucket driver produces *bit-identical* [`mirage_sim::SimMetrics`]
/// to the sequential oracle at 1, 2, 4, and 8 workers, across 48 random
/// scenarios (extension knobs included, heavy faults on odd cases) and
/// all four protocols — the fault schedule, retry cascade, and waiver
/// timing must reproduce exactly at every shard count.
#[test]
fn parallel_driver_matches_sequential_oracle() {
    let mut rng = Rng::new(0x5EB);
    for case in 0..48u64 {
        let (spec, scenario) = parallel_case(&mut rng, case);
        for choice in choices(case) {
            let name = choice.name();
            let mut oracle = choice.build(scenario.plan.clone(), scenario.threshold);
            let expect = run(&scenario, &mut oracle);
            for workers in [1usize, 2, 4, 8] {
                let mut protocol = choice.build(scenario.plan.clone(), scenario.threshold);
                let got = run_parallel(&scenario, &mut protocol, workers);
                assert_eq!(
                    expect, got,
                    "case {case}: {name} diverged at {workers} workers ({spec:?})"
                );
                assert!(
                    protocol.done(),
                    "case {case}: {name} not done at {workers} workers ({spec:?})"
                );
            }
        }
    }
}

/// **Journaled parallel equivalence**: with a journal-enabled registry
/// attached to driver *and* protocol, the parallel driver's journal
/// stream — entry for entry, `(time, seq, payload)` — and metrics match
/// the sequential oracle's at 1, 2, 4, and 8 workers across the same
/// 48-case gauntlet. The merge rule replays cross-shard events in
/// exactly the sequential order, so even the raw (unsorted) stream is
/// identical.
#[test]
fn journaled_parallel_run_matches_sequential() {
    let mut rng = Rng::new(0x0B7);
    for case in 0..48u64 {
        let (spec, scenario) = parallel_case(&mut rng, case);
        for choice in choices(case) {
            let name = choice.name();
            let seq_reg = Arc::new(Registry::with_journal(4096, Journal::with_spill(4096)));
            let seq_tel = Telemetry::from_registry(Arc::clone(&seq_reg));
            let mut seq_p = choice
                .build(scenario.plan.clone(), scenario.threshold)
                .with_telemetry(seq_tel.clone());
            let seq_m = run_with_telemetry(&scenario, &mut seq_p, seq_tel);
            let seq_entries = seq_reg.journal().entries();
            assert!(!seq_entries.is_empty(), "case {case}: {name} journal empty");
            for workers in [1usize, 2, 4, 8] {
                let par_reg = Arc::new(Registry::with_journal(4096, Journal::with_spill(4096)));
                let par_tel = Telemetry::from_registry(Arc::clone(&par_reg));
                let mut par_p = choice
                    .build(scenario.plan.clone(), scenario.threshold)
                    .with_telemetry(par_tel.clone());
                let par_m = run_parallel_with_telemetry(&scenario, &mut par_p, par_tel, workers);
                assert_eq!(
                    seq_m, par_m,
                    "case {case}: {name} journaled metrics diverged at {workers} workers ({spec:?})"
                );
                assert_eq!(
                    seq_entries,
                    par_reg.journal().entries(),
                    "case {case}: {name} journal stream diverged at {workers} workers ({spec:?})"
                );
            }
        }
    }
}

/// **Fault convergence** (hardening acceptance): under 30% message
/// loss, 15% duplication, delivery delay, *and* transient churn, every
/// protocol still converges to 100% of machines passed within the
/// bounded tick budget, thanks to timed re-notification and
/// timeout-based stage advancement.
#[test]
fn protocols_converge_under_heavy_faults() {
    let mut rng = Rng::new(0xF0);
    for case in 0..24u64 {
        let spec = random_scenario(&mut rng);
        let mut builder = ScenarioBuilder::new()
            .clusters(spec.clusters, spec.size, 1)
            .threshold(spec.threshold);
        if !spec.problem_clusters.is_empty() {
            builder = builder.problem_in_clusters("p-main", &spec.problem_clusters);
        }
        let mut faults = FaultSpec::new(0xC0FFEE ^ case)
            .loss(0.30)
            .duplication(0.15)
            .delay(6)
            .retry(20, 4)
            .rep_timeout(600);
        // Transient churn: a trailing non-rep of the last cluster leaves
        // early and rejoins later (clusters of size 1 have no non-reps).
        if spec.size > 1 {
            faults = faults.churn(spec.clusters - 1, 1, 10, 400);
        }
        let scenario = builder.faults(faults).build();
        assert!(!scenario.faults.is_none());
        let total = scenario.machine_count();
        for (name, mut protocol) in protocols(&scenario, case) {
            let metrics = run(&scenario, &mut protocol);
            assert_eq!(
                metrics.passed_count(),
                total,
                "case {case}: {name} left machines behind under faults ({spec:?})"
            );
            assert!(
                metrics.completion_time.is_some(),
                "case {case}: {name} never completed under faults ({spec:?})"
            );
            assert!(
                protocol.done(),
                "case {case}: {name} not done under faults ({spec:?})"
            );
        }
    }
}
