//! Phase 1: exact grouping on parser-produced diff items.

use std::collections::BTreeMap;

use mirage_fingerprint::ItemSet;

use crate::cluster::MachineInfo;

/// Groups machines whose parsed diff sets are identical.
///
/// Runs in time proportional to the number of machines (a map keyed by the
/// parsed item set), which is the efficiency claim the paper makes for
/// this phase. The map is keyed *by reference* into the machines' own
/// diff sets — no item set is cloned, which matters when fleets carry
/// large parsed diffs. Groups are returned in deterministic (key) order;
/// machines within a group keep their input order.
pub fn original_clusters<'a>(machines: &[&'a MachineInfo]) -> Vec<Vec<&'a MachineInfo>> {
    let mut groups: BTreeMap<&ItemSet, Vec<&MachineInfo>> = BTreeMap::new();
    for m in machines {
        groups.entry(&m.diff.parsed).or_default().push(m);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_fingerprint::{DiffSet, Item};

    fn machine(id: &str, parsed: &[&str]) -> MachineInfo {
        let mut diff = DiffSet::empty(id);
        diff.parsed = parsed.iter().map(|s| Item::new([*s])).collect();
        MachineInfo::new(diff)
    }

    #[test]
    fn identical_sets_group_together() {
        let a = machine("a", &["x", "y"]);
        let b = machine("b", &["x", "y"]);
        let c = machine("c", &["x"]);
        let d = machine("d", &[]);
        let groups = original_clusters(&[&a, &b, &c, &d]);
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2));
        // The pair {a, b} is together.
        let pair = groups.iter().find(|g| g.len() == 2).unwrap();
        let ids: Vec<&str> = pair.iter().map(|m| m.id()).collect();
        assert_eq!(ids, vec!["a", "b"]);
    }

    #[test]
    fn content_items_do_not_affect_phase1() {
        let mut a = machine("a", &["x"]);
        a.diff.content.insert(Item::new(["c1"]));
        let mut b = machine("b", &["x"]);
        b.diff.content.insert(Item::new(["c2"]));
        let groups = original_clusters(&[&a, &b]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(original_clusters(&[]).is_empty());
    }

    #[test]
    fn deterministic_under_permutation() {
        let a = machine("a", &["x"]);
        let b = machine("b", &["y"]);
        let c = machine("c", &["x"]);
        let g1 = original_clusters(&[&a, &b, &c]);
        let g2 = original_clusters(&[&c, &b, &a]);
        // Same group structure (member sets) regardless of order.
        let sets1: Vec<Vec<&str>> = g1
            .iter()
            .map(|g| {
                let mut v: Vec<&str> = g.iter().map(|m| m.id()).collect();
                v.sort_unstable();
                v
            })
            .collect();
        let sets2: Vec<Vec<&str>> = g2
            .iter()
            .map(|g| {
                let mut v: Vec<&str> = g.iter().map(|m| m.id()).collect();
                v.sort_unstable();
                v
            })
            .collect();
        assert_eq!(sets1, sets2);
    }
}
