//! Post-pass: split clusters on overlapping-application sets.
//!
//! "After the final set of clusters is produced, we also explicitly split
//! clusters that contain machines with different sets of applications
//! with overlapping environmental resources" (paper §3.2.3). A machine
//! running PHP built against MySQL's client library must not share a
//! cluster with one that is not, even if their MySQL environments look
//! identical — the upgrade can break PHP on one and not the other.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::cluster::MachineInfo;

/// Splits one group of machines by their overlapping-application sets.
///
/// Returns sub-groups in deterministic (app-set) order.
pub fn split_by_app_set<'a>(group: &[&'a MachineInfo]) -> Vec<Vec<&'a MachineInfo>> {
    let mut by_apps: BTreeMap<BTreeSet<String>, Vec<&MachineInfo>> = BTreeMap::new();
    for m in group {
        by_apps
            .entry(m.overlapping_apps.clone())
            .or_default()
            .push(m);
    }
    by_apps.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_fingerprint::DiffSet;

    fn machine(id: &str, apps: &[&str]) -> MachineInfo {
        let mut info = MachineInfo::new(DiffSet::empty(id));
        info.overlapping_apps = apps.iter().map(|s| s.to_string()).collect();
        info
    }

    #[test]
    fn different_app_sets_split() {
        let a = machine("a", &[]);
        let b = machine("b", &["php"]);
        let c = machine("c", &["php"]);
        let d = machine("d", &["php", "apache"]);
        let groups = split_by_app_set(&[&a, &b, &c, &d]);
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert!(sizes.contains(&2));
    }

    #[test]
    fn same_app_set_stays_together() {
        let a = machine("a", &["php"]);
        let b = machine("b", &["php"]);
        let groups = split_by_app_set(&[&a, &b]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 2);
    }

    #[test]
    fn empty_group() {
        assert!(split_by_app_set(&[]).is_empty());
    }
}
