//! Clustering quality metrics (paper §4.2).
//!
//! A clustering is scored against the ground-truth *behaviour* of each
//! machine with respect to a particular upgrade: either `"ok"` or the
//! identifier of the problem the machine exhibits. Two metrics:
//!
//! * `C` — unnecessarily created clusters: the number of clusters beyond
//!   one per distinct behaviour (`p + 1` when all problems and correct
//!   behaviour occur);
//! * `w` — wrongly-placed machines: machines that behave differently from
//!   the rest (majority) of their cluster.
//!
//! `w = 0, C = 0` is *ideal*; `w = 0, C ≥ 0` is *sound*; `w > 0` is
//! *imperfect*.

use std::collections::BTreeMap;

use crate::cluster::Clustering;

/// Qualitative class of a clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterQuality {
    /// One cluster per behaviour, no misplacements.
    Ideal,
    /// No misplacements, but extra clusters.
    Sound,
    /// At least one machine behaves differently from its cluster.
    Imperfect,
}

/// The score of a clustering against ground-truth behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusteringScore {
    /// Number of clusters.
    pub clusters: usize,
    /// Number of distinct behaviours among scored machines.
    pub behaviors: usize,
    /// Unnecessarily created clusters (`C`), `clusters - behaviors`,
    /// floored at zero.
    pub unnecessary_clusters: usize,
    /// Wrongly-placed machines (`w`).
    pub misplaced: usize,
}

impl ClusteringScore {
    /// Scores `clustering` against the behaviour map
    /// (machine id → behaviour label, e.g. `"ok"` / `"php-crash"`).
    ///
    /// Machines missing from `behavior` are treated as `"ok"`.
    pub fn compute(clustering: &Clustering, behavior: &BTreeMap<String, String>) -> Self {
        let label = |m: &str| -> &str { behavior.get(m).map(String::as_str).unwrap_or("ok") };
        let mut distinct: BTreeMap<&str, ()> = BTreeMap::new();
        let mut misplaced = 0usize;
        for cluster in &clustering.clusters {
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            for m in &cluster.members {
                let l = label(m);
                *counts.entry(l).or_insert(0) += 1;
                distinct.insert(l, ());
            }
            let majority = counts.values().copied().max().unwrap_or(0);
            misplaced += cluster.members.len() - majority;
        }
        let behaviors = distinct.len();
        ClusteringScore {
            clusters: clustering.len(),
            behaviors,
            unnecessary_clusters: clustering.len().saturating_sub(behaviors),
            misplaced,
        }
    }

    /// Returns the qualitative class.
    pub fn quality(&self) -> ClusterQuality {
        if self.misplaced > 0 {
            ClusterQuality::Imperfect
        } else if self.unnecessary_clusters > 0 {
            ClusterQuality::Sound
        } else {
            ClusterQuality::Ideal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterId};
    use std::collections::BTreeSet;

    fn clustering(groups: &[&[&str]]) -> Clustering {
        Clustering {
            clusters: groups
                .iter()
                .enumerate()
                .map(|(i, g)| Cluster {
                    id: ClusterId(i),
                    members: g.iter().map(|s| s.to_string()).collect(),
                    label: Default::default(),
                    app_set: BTreeSet::new(),
                    vendor_distance: 0.0,
                })
                .collect(),
        }
    }

    fn behavior(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(m, b)| (m.to_string(), b.to_string()))
            .collect()
    }

    #[test]
    fn ideal_clustering() {
        let c = clustering(&[&["a", "b"], &["p1", "p2"]]);
        let b = behavior(&[("p1", "problem"), ("p2", "problem")]);
        let score = ClusteringScore::compute(&c, &b);
        assert_eq!(score.clusters, 2);
        assert_eq!(score.behaviors, 2);
        assert_eq!(score.unnecessary_clusters, 0);
        assert_eq!(score.misplaced, 0);
        assert_eq!(score.quality(), ClusterQuality::Ideal);
    }

    #[test]
    fn sound_clustering_has_extra_clusters() {
        // Same behaviours split across extra clusters, no mixing.
        let c = clustering(&[&["a"], &["b"], &["p1"]]);
        let b = behavior(&[("p1", "problem")]);
        let score = ClusteringScore::compute(&c, &b);
        assert_eq!(score.unnecessary_clusters, 1);
        assert_eq!(score.misplaced, 0);
        assert_eq!(score.quality(), ClusterQuality::Sound);
    }

    #[test]
    fn imperfect_counts_minority_members() {
        // Cluster mixes one problematic machine with two healthy ones.
        let c = clustering(&[&["a", "b", "p1"]]);
        let b = behavior(&[("p1", "problem")]);
        let score = ClusteringScore::compute(&c, &b);
        assert_eq!(score.misplaced, 1);
        assert_eq!(score.quality(), ClusterQuality::Imperfect);
    }

    #[test]
    fn tie_counts_all_but_one_side() {
        // 3 ok + 3 problem in one cluster → w = 3 (the paper's Figure 9
        // right-hand case).
        let c = clustering(&[&["a", "b", "c", "p1", "p2", "p3"]]);
        let b = behavior(&[("p1", "x"), ("p2", "x"), ("p3", "x")]);
        let score = ClusteringScore::compute(&c, &b);
        assert_eq!(score.misplaced, 3);
    }

    #[test]
    fn unknown_machines_default_to_ok() {
        let c = clustering(&[&["a", "b"]]);
        let score = ClusteringScore::compute(&c, &BTreeMap::new());
        assert_eq!(score.behaviors, 1);
        assert_eq!(score.misplaced, 0);
        assert_eq!(score.quality(), ClusterQuality::Ideal);
    }

    #[test]
    fn more_behaviors_than_clusters_floors_c() {
        let c = clustering(&[&["a", "p1"]]);
        let b = behavior(&[("p1", "problem")]);
        let score = ClusteringScore::compute(&c, &b);
        assert_eq!(score.unnecessary_clusters, 0);
        assert_eq!(score.misplaced, 1);
    }
}
