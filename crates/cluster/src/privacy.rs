//! Privacy-preserving cluster membership (paper §3.5, "Deployment").
//!
//! The plain protocol stores every machine's differing items — including
//! file names — at the vendor, which "could be used by an attacker to
//! quickly identify the targets of a known vulnerability". The paper
//! sketches a mitigation for parser-aided clustering, implemented here:
//!
//! 1. each machine compares its items against the vendor's published
//!    reference list *locally* and communicates only a single
//!    cryptographic hash of its diff-item set;
//! 2. the vendor groups machines by that opaque hash (phase-1 equality
//!    clustering commutes with hashing), learning cluster *sizes* but no
//!    item contents;
//! 3. to run a staged deployment, the vendor publicly advertises the
//!    hash of the cluster currently being tested; each machine decides
//!    locally whether it belongs.
//!
//! The trade-off, faithfully preserved: phase 2 (content-based QT
//! clustering) requires pairwise distances and therefore cannot run on
//! opaque hashes — private clustering only covers resources with
//! parsers, which is one more reason for vendors to supply them.

use std::collections::BTreeMap;

use mirage_fingerprint::{DiffSet, HashValue, ItemSet};

/// The opaque token a machine reports instead of its diff items.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterToken(pub u64);

impl std::fmt::Display for ClusterToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "token:{:016x}", self.0)
    }
}

/// Computes the machine-side token: a hash over the canonical (sorted)
/// rendering of the parsed diff items.
///
/// Runs entirely on the user machine; only the token leaves it.
pub fn token_of(items: &ItemSet) -> ClusterToken {
    // Items are stored sorted (BTreeSet), so the rendering is canonical.
    let mut rendering = String::new();
    for item in items {
        rendering.push_str(&item.to_string());
        rendering.push('\n');
    }
    ClusterToken(HashValue::of_str(&rendering).0)
}

/// Computes a machine's token from its diff set (parsed items only —
/// content-based items cannot participate, see the module docs).
pub fn machine_token(diff: &DiffSet) -> ClusterToken {
    token_of(&diff.parsed)
}

/// The vendor-side view of a privately clustered fleet: token → count.
///
/// The vendor can size clusters and advance a staged deployment, but
/// holds no environmental information.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrivateClustering {
    /// Members per token (machine identities intentionally absent; the
    /// count is what deployment pacing needs).
    pub cluster_sizes: BTreeMap<ClusterToken, usize>,
}

impl PrivateClustering {
    /// Aggregates the tokens reported by a fleet.
    pub fn from_tokens(tokens: impl IntoIterator<Item = ClusterToken>) -> Self {
        let mut cluster_sizes = BTreeMap::new();
        for t in tokens {
            *cluster_sizes.entry(t).or_insert(0) += 1;
        }
        PrivateClustering { cluster_sizes }
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.cluster_sizes.len()
    }

    /// Returns `true` when no tokens were reported.
    pub fn is_empty(&self) -> bool {
        self.cluster_sizes.is_empty()
    }

    /// Total machines.
    pub fn machine_count(&self) -> usize {
        self.cluster_sizes.values().sum()
    }

    /// The deployment schedule: tokens ordered by ascending cluster size
    /// (small clusters are cheap to test first), ties by token value.
    pub fn schedule(&self) -> Vec<ClusterToken> {
        let mut tokens: Vec<(ClusterToken, usize)> =
            self.cluster_sizes.iter().map(|(t, c)| (*t, *c)).collect();
        tokens.sort_by_key(|(t, c)| (*c, *t));
        tokens.into_iter().map(|(t, _)| t).collect()
    }
}

/// The machine-side membership check: "the vendor advertised `current`;
/// is that me?".
pub fn is_my_turn(my_diff: &DiffSet, current: ClusterToken) -> bool {
    machine_token(my_diff) == current
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_fingerprint::Item;

    fn diff(machine: &str, parsed: &[&str], content: &[&str]) -> DiffSet {
        let mut d = DiffSet::empty(machine);
        d.parsed = parsed.iter().map(|s| Item::new([*s])).collect();
        d.content = content.iter().map(|s| Item::new([*s])).collect();
        d
    }

    #[test]
    fn equal_parsed_diffs_share_tokens() {
        let a = diff("a", &["libc-2.4", "php"], &["noise-1"]);
        let b = diff("b", &["libc-2.4", "php"], &["noise-2"]);
        let c = diff("c", &["libc-2.5"], &[]);
        assert_eq!(machine_token(&a), machine_token(&b));
        assert_ne!(machine_token(&a), machine_token(&c));
    }

    #[test]
    fn token_ignores_insertion_order() {
        let mut x = DiffSet::empty("x");
        x.parsed.insert(Item::new(["b"]));
        x.parsed.insert(Item::new(["a"]));
        let mut y = DiffSet::empty("y");
        y.parsed.insert(Item::new(["a"]));
        y.parsed.insert(Item::new(["b"]));
        assert_eq!(machine_token(&x), machine_token(&y));
    }

    #[test]
    fn private_clustering_matches_phase1_structure() {
        use crate::cluster::MachineInfo;
        use crate::phase1::original_clusters;
        let diffs = [
            diff("a", &["x"], &[]),
            diff("b", &["x"], &[]),
            diff("c", &["y"], &[]),
            diff("d", &[], &[]),
        ];
        // The vendor's private view.
        let private = PrivateClustering::from_tokens(diffs.iter().map(machine_token));
        // The plain phase-1 view.
        let infos: Vec<MachineInfo> = diffs.iter().cloned().map(MachineInfo::new).collect();
        let refs: Vec<&MachineInfo> = infos.iter().collect();
        let plain = original_clusters(&refs);
        assert_eq!(private.len(), plain.len());
        assert_eq!(private.machine_count(), 4);
        let mut private_sizes: Vec<usize> = private.cluster_sizes.values().copied().collect();
        let mut plain_sizes: Vec<usize> = plain.iter().map(Vec::len).collect();
        private_sizes.sort_unstable();
        plain_sizes.sort_unstable();
        assert_eq!(private_sizes, plain_sizes);
    }

    #[test]
    fn staged_advance_via_advertised_tokens() {
        let fleet = [
            diff("a", &["x"], &[]),
            diff("b", &["x"], &[]),
            diff("c", &["y"], &[]),
        ];
        let private = PrivateClustering::from_tokens(fleet.iter().map(machine_token));
        let schedule = private.schedule();
        assert_eq!(schedule.len(), 2);
        // The vendor advertises the first token; exactly the singleton
        // cluster's machine answers.
        let responders: Vec<&str> = fleet
            .iter()
            .filter(|d| is_my_turn(d, schedule[0]))
            .map(|d| d.machine.as_str())
            .collect();
        assert_eq!(responders, vec!["c"], "smallest cluster goes first");
        let responders: Vec<&str> = fleet
            .iter()
            .filter(|d| is_my_turn(d, schedule[1]))
            .map(|d| d.machine.as_str())
            .collect();
        assert_eq!(responders, vec!["a", "b"]);
    }

    #[test]
    fn empty_fleet() {
        let private = PrivateClustering::from_tokens(std::iter::empty());
        assert!(private.is_empty());
        assert!(private.schedule().is_empty());
    }
}
