//! Machine clustering for staged deployment (paper §3.2.3).
//!
//! Machines are clustered so that members of one cluster are likely to
//! behave identically with respect to an upgrade. The algorithm has two
//! phases plus a post-pass:
//!
//! 1. **Phase 1 (exact)** — machines whose *parser-produced* diff sets
//!    against the vendor are identical form "original clusters". Parsers
//!    give precise semantic information, so equality is the right
//!    grouping.
//! 2. **Phase 2 (QT diameter)** — inside each original cluster, machines
//!    are agglomeratively merged on their *content-based* (Rabin) items
//!    using a deterministic variant of the Quality-Threshold algorithm:
//!    merges minimise average inter-machine Manhattan distance and never
//!    exceed the vendor-defined cluster diameter `d`. (The paper dismisses
//!    k-means for being non-deterministic.)
//! 3. **App-overlap split** — clusters containing machines with different
//!    sets of applications that share environmental resources with the
//!    upgraded application are split, because those applications can be
//!    broken by the upgrade (the PHP/MySQL case).
//!
//! The vendor can apply an [`mirage_fingerprint::ImportanceFilter`] before phase 1 to merge
//! clusters it considers needlessly distinct, and [`metrics`] scores any
//! clustering against ground-truth behaviour with the paper's `C`
//! (unnecessary clusters) and `w` (misplaced machines).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod cluster;
pub mod drift;
pub mod engine;
pub mod incremental;
pub mod metrics;
mod par;
pub mod phase1;
pub mod privacy;
pub mod qt;
pub mod split;

pub use cluster::{Cluster, ClusterId, Clustering, MachineInfo};
pub use drift::{clustering_from_groups, Cohesion, DriftEngine, DriftOp, DriftStats, MachineDelta};
pub use engine::ClusterEngine;
pub use incremental::{drift_reference, recluster_one, recluster_one_counted, StepOutcome};
pub use metrics::{ClusterQuality, ClusteringScore};
pub use privacy::{machine_token, ClusterToken, PrivateClustering};
pub use qt::{
    qt_cluster, qt_cluster_indices, qt_cluster_indices_instrumented, qt_cluster_indices_reference,
    qt_cluster_instrumented,
};
