//! Incremental reclustering (the paper's §3.2.3 future work).
//!
//! "A relevant change in a machine's environment can change that
//! machine's cluster", and recomputing the full (quadratic) phase-2
//! clustering on every fleet update does not scale. The move semantics
//! for a *single* machine whose environment changed are:
//!
//! 1. the machine is removed from its current cluster (which is dropped
//!    if it becomes empty);
//! 2. every existing cluster is tested for compatibility — identical
//!    parsed diff set, identical overlapping-application set, and
//!    content distance to *every* member within the diameter (members
//!    already satisfy the bound pairwise, so only the new edges need
//!    checking);
//! 3. the compatible cluster with the smallest mean distance to the
//!    machine adopts it (ties break on cluster order, equivalently
//!    ascending cluster creation); otherwise the machine founds a
//!    singleton cluster whose id is one past the current maximum.
//!
//! The result is always a valid clustering (partition + diameter bound +
//! phase-1/app-set agreement). It may be *coarser-grained* than a full
//! re-run — greedy QT could have reshuffled other machines too — which
//! is the classic incremental-maintenance trade-off; a periodic full
//! recluster restores the canonical partition.
//!
//! This module holds the **reference plane**: [`reference::recluster_one`]
//! moves one machine per call over plain `BTreeMap`s and owned
//! `Cluster`s, and [`reference::drift_reference`] folds a delta stream
//! through it one step at a time. It is deliberately simple — the batch
//! [`crate::drift::DriftEngine`] is property-tested to be bit-identical
//! to this loop (clusterings *and* `cluster.drift_*` counters) across
//! seeded random drift streams.

pub mod reference {
    //! The retained one-machine-at-a-time re-clustering reference.

    use std::collections::BTreeMap;

    use mirage_fingerprint::{ItemPool, ItemSet, LoweredDiff};
    use mirage_telemetry::Telemetry;

    use crate::cluster::{Cluster, ClusterId, Clustering, MachineInfo};
    use crate::drift::{publish_drift_counters, DriftStats, MachineDelta};

    /// Moves `updated` to its best cluster after an environment change.
    ///
    /// `machines` must hold the clustering inputs of every machine in
    /// `clustering` *except* possibly a stale entry for `updated.id()`,
    /// which is replaced.
    ///
    /// # Panics
    ///
    /// Panics if a clustering member other than the updated machine is
    /// missing from `machines`.
    pub fn recluster_one(
        clustering: &Clustering,
        machines: &BTreeMap<String, MachineInfo>,
        updated: MachineInfo,
        diameter: usize,
    ) -> Clustering {
        recluster_one_counted(clustering, machines, updated, diameter).0
    }

    /// Outcome of one reference re-clustering step, for drift counters.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct StepOutcome {
        /// The machine joined an existing cluster (false = founded a
        /// singleton).
        pub adopted: bool,
        /// Kernel distance evaluations performed by the candidate scan:
        /// one per member visited, stopping at the first member past the
        /// diameter (compatible clusters therefore cost exactly one eval
        /// per member — the scan's sums are reused for the mean).
        pub dist_evals: u64,
    }

    /// [`recluster_one`] returning the [`StepOutcome`] alongside the
    /// clustering, so [`drift_reference`] can publish exact drift
    /// counters.
    pub fn recluster_one_counted(
        clustering: &Clustering,
        machines: &BTreeMap<String, MachineInfo>,
        updated: MachineInfo,
        diameter: usize,
    ) -> (Clustering, StepOutcome) {
        let updated_id = updated.id().to_string();
        let info_of = |m: &str| -> &MachineInfo {
            machines
                .get(m)
                .unwrap_or_else(|| panic!("machine {m} missing from inputs"))
        };

        // All content distances in this function involve the updated
        // machine, so they run on the interned kernel: lower the updated
        // diff once, lower each candidate member's diff at most once, and
        // compare sorted u32 ids instead of `BTreeSet<Item>` strings. The
        // kernel distance equals `DiffSet::content_distance` exactly.
        let mut pool = ItemPool::new();
        let updated_lowered = pool.lower(&updated.diff.content);
        let mut lowered: BTreeMap<String, LoweredDiff> = BTreeMap::new();
        let mut dist_evals = 0u64;

        // 1. Remove the machine from its old cluster.
        let mut clusters: Vec<Cluster> = Vec::new();
        for c in &clustering.clusters {
            if c.contains(&updated_id) {
                if c.members.len() > 1 {
                    let mut remaining = c.clone();
                    remaining.members.retain(|m| m != &updated_id);
                    recompute_derived(&mut remaining, &info_of);
                    clusters.push(remaining);
                }
                // Empty cluster dropped.
            } else {
                clusters.push(c.clone());
            }
        }

        // 2. Find the best compatible cluster. Each member costs at most
        // one kernel distance evaluation: the scan short-circuits at the
        // first incompatible member, and the per-member distances are
        // summed as they are checked so the mean needs no second pass.
        let mut best: Option<(f64, usize)> = None;
        for (idx, cluster) in clusters.iter().enumerate() {
            let mut sum = 0usize;
            let mut compatible = true;
            for m in &cluster.members {
                let info = if m == &updated_id {
                    &updated
                } else {
                    info_of(m)
                };
                if info.diff.parsed != updated.diff.parsed
                    || info.overlapping_apps != updated.overlapping_apps
                {
                    compatible = false;
                    break;
                }
                let d = lowered
                    .entry(m.clone())
                    .or_insert_with(|| pool.lower(&info.diff.content))
                    .distance(&updated_lowered);
                dist_evals += 1;
                if d > diameter {
                    compatible = false;
                    break;
                }
                sum += d;
            }
            if !compatible {
                continue;
            }
            let mean: f64 = if cluster.members.is_empty() {
                0.0
            } else {
                sum as f64 / cluster.members.len() as f64
            };
            if best.map(|(b, _)| mean < b).unwrap_or(true) {
                best = Some((mean, idx));
            }
        }

        // 3. Adopt or found.
        let adopted = best.is_some();
        match best {
            Some((_, idx)) => {
                clusters[idx].members.push(updated_id.clone());
                clusters[idx].members.sort();
                // Derived fields are recomputed from the borrowed inputs
                // plus the updated machine — no O(fleet) map clone.
                let info_of2 = |m: &str| -> &MachineInfo {
                    if m == updated_id.as_str() {
                        &updated
                    } else {
                        info_of(m)
                    }
                };
                recompute_derived(&mut clusters[idx], &info_of2);
            }
            None => {
                let next_id = clusters.iter().map(|c| c.id.0 + 1).max().unwrap_or(0);
                clusters.push(Cluster {
                    id: ClusterId(next_id),
                    members: vec![updated_id],
                    label: updated.diff.all_items(),
                    app_set: updated.overlapping_apps.clone(),
                    vendor_distance: updated.diff.vendor_distance() as f64,
                });
            }
        }
        (
            Clustering { clusters },
            StepOutcome {
                adopted,
                dist_evals,
            },
        )
    }

    /// Folds a drift-delta stream through [`recluster_one`] one step at
    /// a time — the reference loop the batch
    /// [`crate::drift::DriftEngine`] is property-tested against.
    ///
    /// Deltas whose application leaves the machine's input unchanged are
    /// skipped entirely (no candidate scan, no distance evaluations),
    /// matching the engine's no-op fast path. `machines` is updated in
    /// place as deltas apply. Publishes the same `cluster.drift_*`
    /// counters as the engine and returns them alongside the final
    /// clustering.
    ///
    /// # Panics
    ///
    /// Panics if a delta names a machine missing from `machines` or not
    /// present in the clustering.
    pub fn drift_reference(
        clustering: &Clustering,
        machines: &mut BTreeMap<String, MachineInfo>,
        deltas: &[MachineDelta],
        diameter: usize,
        telemetry: &Telemetry,
    ) -> (Clustering, DriftStats) {
        let mut current = clustering.clone();
        let mut stats = DriftStats::default();
        for delta in deltas {
            let info = machines
                .get(&delta.machine)
                .unwrap_or_else(|| panic!("machine {} missing from inputs", delta.machine));
            let next = delta.op.apply(info);
            if next == *info {
                stats.noops += 1;
                continue;
            }
            let old_id = current
                .cluster_of(&delta.machine)
                .unwrap_or_else(|| panic!("machine {} not in clustering", delta.machine))
                .id;
            let (reclustered, outcome) =
                recluster_one_counted(&current, machines, next.clone(), diameter);
            let new_id = reclustered
                .cluster_of(&delta.machine)
                .expect("re-clustered machine must land in a cluster")
                .id;
            stats.applied += 1;
            if new_id != old_id {
                stats.moves += 1;
            }
            if outcome.adopted {
                stats.adoptions += 1;
            } else {
                stats.singletons += 1;
            }
            stats.dist_evals += outcome.dist_evals;
            machines.insert(delta.machine.clone(), next);
            current = reclustered;
        }
        publish_drift_counters(telemetry, &stats);
        (current, stats)
    }

    fn recompute_derived<'a, F>(cluster: &mut Cluster, info_of: &F)
    where
        F: Fn(&str) -> &'a MachineInfo,
    {
        let mut label = ItemSet::new();
        let mut total = 0usize;
        for m in &cluster.members {
            let info = info_of(m);
            label.extend(info.diff.all_items());
            total += info.diff.vendor_distance();
        }
        cluster.label = label;
        cluster.vendor_distance = if cluster.members.is_empty() {
            0.0
        } else {
            total as f64 / cluster.members.len() as f64
        };
    }
}

pub use reference::{drift_reference, recluster_one, recluster_one_counted, StepOutcome};

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;
    use crate::cluster::{Clustering, MachineInfo};
    use crate::drift::{DriftOp, MachineDelta};
    use crate::engine::ClusterEngine;
    use mirage_fingerprint::{DiffSet, Item};
    use mirage_telemetry::Telemetry;

    fn machine(id: &str, parsed: &[&str], content: &[&str]) -> MachineInfo {
        let mut diff = DiffSet::empty(id);
        diff.parsed = parsed.iter().map(|s| Item::new([*s])).collect();
        diff.content = content.iter().map(|s| Item::new([*s])).collect();
        MachineInfo::new(diff)
    }

    fn setup() -> (Clustering, BTreeMap<String, MachineInfo>) {
        let infos = vec![
            machine("a", &["x"], &[]),
            machine("b", &["x"], &[]),
            machine("c", &["y"], &[]),
        ];
        let clustering = ClusterEngine::new(1).cluster(&infos);
        let map = infos.into_iter().map(|i| (i.id().to_string(), i)).collect();
        (clustering, map)
    }

    #[test]
    fn machine_moves_to_matching_cluster() {
        let (clustering, machines) = setup();
        assert_eq!(clustering.len(), 2);
        // Machine b's environment changes to match c.
        let updated = machine("b", &["y"], &[]);
        let next = recluster_one(&clustering, &machines, updated, 1);
        next.validate_partition().unwrap();
        assert_eq!(next.len(), 2);
        let c_cluster = next.cluster_of("c").unwrap();
        assert!(c_cluster.contains("b"));
        assert!(!next.cluster_of("a").unwrap().contains("b"));
    }

    #[test]
    fn unique_environment_founds_singleton() {
        let (clustering, machines) = setup();
        let updated = machine("b", &["z"], &[]);
        let next = recluster_one(&clustering, &machines, updated, 1);
        next.validate_partition().unwrap();
        assert_eq!(next.len(), 3);
        let b_cluster = next.cluster_of("b").unwrap();
        assert_eq!(b_cluster.members, vec!["b"]);
        // The fresh cluster received an unused id.
        let ids: std::collections::BTreeSet<usize> = next.clusters.iter().map(|c| c.id.0).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn emptied_cluster_disappears() {
        let (clustering, machines) = setup();
        // c (a singleton) changes to match the {a, b} cluster.
        let updated = machine("c", &["x"], &[]);
        let next = recluster_one(&clustering, &machines, updated, 1);
        next.validate_partition().unwrap();
        assert_eq!(next.len(), 1);
        assert_eq!(next.clusters[0].members, vec!["a", "b", "c"]);
    }

    #[test]
    fn diameter_blocks_adoption() {
        let infos = vec![machine("a", &[], &["c1"]), machine("b", &[], &["c1"])];
        let clustering = ClusterEngine::new(0).cluster(&infos);
        assert_eq!(clustering.len(), 1);
        let machines: BTreeMap<String, MachineInfo> =
            infos.into_iter().map(|i| (i.id().to_string(), i)).collect();
        // Same parsed diff but content now differs: at d = 0 the
        // machine cannot rejoin and must found a singleton.
        let updated = machine("b", &[], &["c2"]);
        let next = recluster_one(&clustering, &machines, updated, 0);
        assert_eq!(next.len(), 2);
    }

    #[test]
    fn derived_fields_stay_consistent() {
        let (clustering, machines) = setup();
        let updated = machine("b", &["y"], &["extra"]);
        let mut with_updated = machines.clone();
        with_updated.insert("b".into(), updated.clone());
        let next = recluster_one(&clustering, &machines, updated, 5);
        let cluster = next.cluster_of("b").unwrap();
        // Label is the union of member items.
        assert!(cluster.label.contains(&Item::new(["y"])));
        assert!(cluster.label.contains(&Item::new(["extra"])));
        // Vendor distance is the member mean: c has 1 item, b has 2.
        assert!((cluster.vendor_distance - 1.5).abs() < 1e-9);
    }

    #[test]
    fn no_change_is_stable() {
        let (clustering, machines) = setup();
        let same = machines["a"].clone();
        let next = recluster_one(&clustering, &machines, same, 1);
        next.validate_partition().unwrap();
        assert_eq!(next.len(), clustering.len());
        assert!(next.cluster_of("a").unwrap().contains("b"));
    }

    #[test]
    fn counted_scan_is_one_eval_per_member() {
        // Fleet: {a, b} share parsed "x" with contents one apart; c is
        // parsed "y". Moving b within diameter keeps it adopted: the
        // only compatible candidate is {a}, so exactly 1 eval.
        let infos = vec![
            machine("a", &["x"], &["w"]),
            machine("b", &["x"], &["w"]),
            machine("c", &["y"], &[]),
        ];
        let clustering = ClusterEngine::new(2).cluster(&infos);
        let machines: BTreeMap<String, MachineInfo> =
            infos.into_iter().map(|i| (i.id().to_string(), i)).collect();
        let updated = machine("b", &["x"], &["w", "v"]);
        let (next, outcome) = recluster_one_counted(&clustering, &machines, updated, 2);
        next.validate_partition().unwrap();
        assert!(outcome.adopted);
        // Candidate {a} costs 1 eval; the parsed-"y" cluster costs none
        // (its first member fails the parsed check before any distance).
        assert_eq!(outcome.dist_evals, 1);
    }

    #[test]
    fn drift_reference_counts_and_skips_noops() {
        let (clustering, mut machines) = setup();
        let deltas = vec![
            // No-op: "a" already has parsed x and no content.
            MachineDelta {
                machine: "a".into(),
                op: DriftOp::Uninstall {
                    parsed: vec![Item::new(["nope"])],
                    content: vec![],
                },
            },
            // b moves to c's parsed-"y" cluster.
            MachineDelta {
                machine: "b".into(),
                op: DriftOp::Install {
                    parsed: vec![Item::new(["y"])],
                    content: vec![],
                },
            },
        ];
        // Note b's parsed becomes {x, y}, which matches neither a nor c:
        // it founds a singleton.
        let (next, stats) =
            drift_reference(&clustering, &mut machines, &deltas, 1, &Telemetry::noop());
        next.validate_partition().unwrap();
        assert_eq!(stats.noops, 1);
        assert_eq!(stats.applied, 1);
        assert_eq!(stats.singletons, 1);
        assert_eq!(stats.adoptions, 0);
        assert_eq!(stats.moves, 1);
        // The machines map tracked the applied delta.
        assert!(machines["b"].diff.parsed.contains(&Item::new(["y"])));
        assert_eq!(next.cluster_of("b").unwrap().members, vec!["b"]);
    }
}
