//! Incremental reclustering (the paper's §3.2.3 future work).
//!
//! "A relevant change in a machine's environment can change that
//! machine's cluster", and recomputing the full (quadratic) phase-2
//! clustering on every fleet update does not scale. This module moves a
//! *single* machine whose environment changed:
//!
//! 1. the machine is removed from its current cluster (which is dropped
//!    if it becomes empty);
//! 2. every existing cluster is tested for compatibility — identical
//!    parsed diff set, identical overlapping-application set, and
//!    content distance to *every* member within the diameter (members
//!    already satisfy the bound pairwise, so only the new edges need
//!    checking);
//! 3. the compatible cluster with the smallest mean distance to the
//!    machine adopts it (ties break on cluster id); otherwise the
//!    machine founds a singleton cluster.
//!
//! The result is always a valid clustering (partition + diameter bound +
//! phase-1/app-set agreement). It may be *coarser-grained* than a full
//! re-run — greedy QT could have reshuffled other machines too — which
//! is the classic incremental-maintenance trade-off; a periodic full
//! recluster restores the canonical partition.

use std::collections::BTreeMap;

use mirage_fingerprint::{ItemPool, ItemSet, LoweredDiff};

use crate::cluster::{Cluster, ClusterId, Clustering, MachineInfo};

/// Moves `updated` to its best cluster after an environment change.
///
/// `machines` must hold the clustering inputs of every machine in
/// `clustering` *except* possibly a stale entry for `updated.id()`,
/// which is replaced.
///
/// # Panics
///
/// Panics if a clustering member other than the updated machine is
/// missing from `machines`.
pub fn recluster_one(
    clustering: &Clustering,
    machines: &BTreeMap<String, MachineInfo>,
    updated: MachineInfo,
    diameter: usize,
) -> Clustering {
    let updated_id = updated.id().to_string();
    let info_of = |m: &str| -> &MachineInfo {
        machines
            .get(m)
            .unwrap_or_else(|| panic!("machine {m} missing from inputs"))
    };

    // All content distances in this function involve the updated
    // machine, so they run on the interned kernel: lower the updated
    // diff once, lower each candidate member's diff at most once, and
    // compare sorted u32 ids instead of `BTreeSet<Item>` strings. The
    // kernel distance equals `DiffSet::content_distance` exactly.
    let mut pool = ItemPool::new();
    let updated_lowered = pool.lower(&updated.diff.content);
    let mut lowered: BTreeMap<String, LoweredDiff> = BTreeMap::new();

    // 1. Remove the machine from its old cluster.
    let mut clusters: Vec<Cluster> = Vec::new();
    for c in &clustering.clusters {
        if c.contains(&updated_id) {
            if c.members.len() > 1 {
                let mut remaining = c.clone();
                remaining.members.retain(|m| m != &updated_id);
                recompute_derived(&mut remaining, &info_of);
                clusters.push(remaining);
            }
            // Empty cluster dropped.
        } else {
            clusters.push(c.clone());
        }
    }

    // 2. Find the best compatible cluster.
    let mut best: Option<(f64, usize)> = None;
    for (idx, cluster) in clusters.iter().enumerate() {
        let compatible = cluster.members.iter().all(|m| {
            let info = if m == &updated_id {
                &updated
            } else {
                info_of(m)
            };
            info.diff.parsed == updated.diff.parsed
                && info.overlapping_apps == updated.overlapping_apps
                && lowered
                    .entry(m.clone())
                    .or_insert_with(|| pool.lower(&info.diff.content))
                    .distance(&updated_lowered)
                    <= diameter
        });
        if !compatible {
            continue;
        }
        let mean: f64 = if cluster.members.is_empty() {
            0.0
        } else {
            cluster
                .members
                .iter()
                .map(|m| {
                    let info = info_of(m);
                    lowered
                        .entry(m.clone())
                        .or_insert_with(|| pool.lower(&info.diff.content))
                        .distance(&updated_lowered)
                })
                .sum::<usize>() as f64
                / cluster.members.len() as f64
        };
        if best.map(|(b, _)| mean < b).unwrap_or(true) {
            best = Some((mean, idx));
        }
    }

    // 3. Adopt or found.
    match best {
        Some((_, idx)) => {
            clusters[idx].members.push(updated_id.clone());
            clusters[idx].members.sort();
            let mut with_updated = machines.clone();
            with_updated.insert(updated_id, updated);
            let info_of2 = |m: &str| -> &MachineInfo {
                with_updated
                    .get(m)
                    .unwrap_or_else(|| panic!("machine {m} missing"))
            };
            recompute_derived(&mut clusters[idx], &info_of2);
        }
        None => {
            let next_id = clusters.iter().map(|c| c.id.0 + 1).max().unwrap_or(0);
            clusters.push(Cluster {
                id: ClusterId(next_id),
                members: vec![updated_id],
                label: updated.diff.all_items(),
                app_set: updated.overlapping_apps.clone(),
                vendor_distance: updated.diff.vendor_distance() as f64,
            });
        }
    }
    Clustering { clusters }
}

fn recompute_derived<'a, F>(cluster: &mut Cluster, info_of: &F)
where
    F: Fn(&str) -> &'a MachineInfo,
{
    let mut label = ItemSet::new();
    let mut total = 0usize;
    for m in &cluster.members {
        let info = info_of(m);
        label.extend(info.diff.all_items());
        total += info.diff.vendor_distance();
    }
    cluster.label = label;
    cluster.vendor_distance = if cluster.members.is_empty() {
        0.0
    } else {
        total as f64 / cluster.members.len() as f64
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ClusterEngine;
    use mirage_fingerprint::{DiffSet, Item};

    fn machine(id: &str, parsed: &[&str], content: &[&str]) -> MachineInfo {
        let mut diff = DiffSet::empty(id);
        diff.parsed = parsed.iter().map(|s| Item::new([*s])).collect();
        diff.content = content.iter().map(|s| Item::new([*s])).collect();
        MachineInfo::new(diff)
    }

    fn setup() -> (Clustering, BTreeMap<String, MachineInfo>) {
        let infos = vec![
            machine("a", &["x"], &[]),
            machine("b", &["x"], &[]),
            machine("c", &["y"], &[]),
        ];
        let clustering = ClusterEngine::new(1).cluster(&infos);
        let map = infos.into_iter().map(|i| (i.id().to_string(), i)).collect();
        (clustering, map)
    }

    #[test]
    fn machine_moves_to_matching_cluster() {
        let (clustering, machines) = setup();
        assert_eq!(clustering.len(), 2);
        // Machine b's environment changes to match c.
        let updated = machine("b", &["y"], &[]);
        let next = recluster_one(&clustering, &machines, updated, 1);
        next.validate_partition().unwrap();
        assert_eq!(next.len(), 2);
        let c_cluster = next.cluster_of("c").unwrap();
        assert!(c_cluster.contains("b"));
        assert!(!next.cluster_of("a").unwrap().contains("b"));
    }

    #[test]
    fn unique_environment_founds_singleton() {
        let (clustering, machines) = setup();
        let updated = machine("b", &["z"], &[]);
        let next = recluster_one(&clustering, &machines, updated, 1);
        next.validate_partition().unwrap();
        assert_eq!(next.len(), 3);
        let b_cluster = next.cluster_of("b").unwrap();
        assert_eq!(b_cluster.members, vec!["b"]);
        // The fresh cluster received an unused id.
        let ids: std::collections::BTreeSet<usize> = next.clusters.iter().map(|c| c.id.0).collect();
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn emptied_cluster_disappears() {
        let (clustering, machines) = setup();
        // c (a singleton) changes to match the {a, b} cluster.
        let updated = machine("c", &["x"], &[]);
        let next = recluster_one(&clustering, &machines, updated, 1);
        next.validate_partition().unwrap();
        assert_eq!(next.len(), 1);
        assert_eq!(next.clusters[0].members, vec!["a", "b", "c"]);
    }

    #[test]
    fn diameter_blocks_adoption() {
        let infos = vec![machine("a", &[], &["c1"]), machine("b", &[], &["c1"])];
        let clustering = ClusterEngine::new(0).cluster(&infos);
        assert_eq!(clustering.len(), 1);
        let machines: BTreeMap<String, MachineInfo> =
            infos.into_iter().map(|i| (i.id().to_string(), i)).collect();
        // Same parsed diff but content now differs: at d = 0 the
        // machine cannot rejoin and must found a singleton.
        let updated = machine("b", &[], &["c2"]);
        let next = recluster_one(&clustering, &machines, updated, 0);
        assert_eq!(next.len(), 2);
    }

    #[test]
    fn derived_fields_stay_consistent() {
        let (clustering, machines) = setup();
        let updated = machine("b", &["y"], &["extra"]);
        let mut with_updated = machines.clone();
        with_updated.insert("b".into(), updated.clone());
        let next = recluster_one(&clustering, &machines, updated, 5);
        let cluster = next.cluster_of("b").unwrap();
        // Label is the union of member items.
        assert!(cluster.label.contains(&Item::new(["y"])));
        assert!(cluster.label.contains(&Item::new(["extra"])));
        // Vendor distance is the member mean: c has 1 item, b has 2.
        assert!((cluster.vendor_distance - 1.5).abs() < 1e-9);
    }

    #[test]
    fn no_change_is_stable() {
        let (clustering, machines) = setup();
        let same = machines["a"].clone();
        let next = recluster_one(&clustering, &machines, same, 1);
        next.validate_partition().unwrap();
        assert_eq!(next.len(), clustering.len());
        assert!(next.cluster_of("a").unwrap().contains("b"));
    }
}
