//! Crate-private scoped-thread fan-out shared by the parallel hot paths.
//!
//! Both the QT distance-matrix fill ([`crate::qt`]) and the drift
//! engine's candidate scans ([`crate::drift`]) follow the same std-only
//! pattern: partition independent work items into per-thread buckets,
//! run each bucket on a `std::thread::scope` worker, and rely on the
//! items themselves (disjoint `&mut` slots) for output. Because every
//! item is processed exactly once and writes only through its own
//! exclusive reference, the result is bit-identical to the sequential
//! loop regardless of thread count or scheduling.

/// Runs `work` over every item of every bucket, one scoped thread per
/// non-empty bucket (sequentially when at most one bucket has work).
///
/// Callers are responsible for balancing the buckets; items carry any
/// `&mut` output slots they need, which keeps the closure `Fn` (shared)
/// while the writes stay exclusive.
pub(crate) fn fan_out<T: Send, F: Fn(T) + Sync>(buckets: Vec<Vec<T>>, work: &F) {
    let mut live: Vec<Vec<T>> = buckets.into_iter().filter(|b| !b.is_empty()).collect();
    if live.len() <= 1 {
        for item in live.pop().unwrap_or_default() {
            work(item);
        }
        return;
    }
    std::thread::scope(|scope| {
        for bucket in live {
            scope.spawn(move || {
                for item in bucket {
                    work(item);
                }
            });
        }
    });
}

/// Number of worker threads to use for `n` independent work items, given
/// the crate's parallelism threshold: 1 below the threshold (thread
/// spawns would dominate), otherwise `available_parallelism` capped at
/// `n`.
pub(crate) fn worker_count(n: usize, threshold: usize, allow_parallel: bool) -> usize {
    if !allow_parallel || n < threshold {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fan_out_processes_every_item_once() {
        let mut out = vec![0u32; 10];
        let items: Vec<(u32, &mut u32)> = (0u32..).zip(out.iter_mut()).collect();
        let mut buckets: Vec<Vec<(u32, &mut u32)>> = (0..3).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            buckets[i % 3].push(item);
        }
        let calls = AtomicUsize::new(0);
        fan_out(buckets, &|(i, slot): (u32, &mut u32)| {
            *slot = i * i;
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        let want: Vec<u32> = (0u32..10).map(|i| i * i).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn single_bucket_runs_sequentially() {
        let mut out = vec![0u32; 4];
        let bucket: Vec<(u32, &mut u32)> = (1u32..).zip(out.iter_mut()).collect();
        fan_out(vec![bucket, Vec::new()], &|(i, slot): (u32, &mut u32)| {
            *slot = i;
        });
        assert_eq!(out, vec![1, 2, 3, 4]);
        fan_out::<u32, _>(Vec::new(), &|_| panic!("no items"));
    }

    #[test]
    fn worker_count_respects_threshold() {
        assert_eq!(worker_count(10, 64, true), 1);
        assert_eq!(worker_count(10, 64, false), 1);
        assert_eq!(worker_count(0, 0, false), 1);
        let w = worker_count(1000, 64, true);
        assert!((1..=1000).contains(&w));
    }
}
