//! Batch drift engine: incremental re-clustering for churning fleets.
//!
//! Between upgrade rounds machines drift — packages are installed and
//! removed, configs are edited, app sets change. Re-running the full
//! quadratic pipeline per round does not scale, and the one-shot
//! [`crate::incremental::reference`] plane pays O(fleet) per move: a
//! fresh [`ItemPool`] each call, a full cluster-vector clone, and a
//! scan of every cluster's every member. [`DriftEngine`] keeps the
//! fleet resident on the dense interned plane instead:
//!
//! * a **persistent [`ItemPool`]** plus a cached [`LoweredDiff`] per
//!   machine (content items for the distance kernel, all items for
//!   label refcounting) — only the drifted machine is re-lowered, via
//!   [`ItemPool::lower_into`] so even that reuses its buffers;
//! * **per-cluster incremental aggregates** — member count, label
//!   union refcounts (dropping a member decrements ids instead of
//!   rebuilding the union), vendor-distance sum, and opt-in QT-style
//!   pairwise sum/max cohesion aggregates — so adopting or removing a
//!   member is O(changed items), never O(members × items);
//! * **environment bucketing** — clusters are pre-bucketed by a hash
//!   of their shared (parsed diff, app set); a candidate scan touches
//!   only exact-matching buckets, skipping incompatible clusters
//!   without visiting a single member (the reference plane's per-member
//!   parsed check short-circuits on the first member, so the kernel
//!   distance-eval counts still agree exactly);
//! * **scoped-thread candidate scans** — when one delta must test many
//!   candidate members, per-cluster scans fan out over
//!   `std::thread::scope` like the QT distance matrix; each cluster's
//!   scan stays sequential with the same short-circuit, so results
//!   *and* `cluster.drift_dist_evals` are bit-identical to the
//!   sequential path.
//!
//! [`DriftEngine::recluster_batch`] applies a [`MachineDelta`] stream
//! in order with move semantics identical to
//! [`crate::incremental::reference::recluster_one`] — seeded property
//! tests drive random drift streams through both planes and assert
//! bit-identical clusterings (membership, order, ids, labels, derived
//! fields) and identical `cluster.drift_*` counters.
//!
//! # Aggregate invariants
//!
//! For every cluster: `vendor_sum` equals the sum of members'
//! [`DiffSet::vendor_distance`] (the exported mean divides by the
//! member count with the exact arithmetic of the reference plane);
//! `label_refs[id]` counts the members whose diff contains the interned
//! item `id`, and the materialised `label` set holds exactly the ids
//! with positive refcounts. With cohesion enabled, `pair_sum` is the
//! exact sum of intra-cluster pairwise kernel distances (maintained by
//! adding the adopted member's scanned edges and subtracting the
//! removed member's recomputed row — counted in
//! `cluster.drift_aggregate_evals`), and `pair_max` is an upper bound
//! on the pairwise maximum, exact while a cluster only grows (removals
//! may leave it loose, like any non-invertible max).
//!
//! [`DiffSet::vendor_distance`]: mirage_fingerprint::DiffSet::vendor_distance

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};

use mirage_fingerprint::{Item, ItemPool, ItemSet, LoweredDiff};
use mirage_telemetry::Telemetry;

use crate::cluster::{Cluster, ClusterId, Clustering, MachineInfo};

/// A candidate scan fans out over scoped threads once the candidate
/// clusters hold at least this many members in total; smaller scans
/// stay sequential (thread spawns would dominate).
const PARALLEL_SCAN_THRESHOLD: usize = 4096;

/// One machine's environment change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineDelta {
    /// The drifting machine's id.
    pub machine: String,
    /// What changed.
    pub op: DriftOp,
}

/// An environment drift operation, applied to a machine's clustering
/// input ([`MachineInfo`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriftOp {
    /// A package install: adds parsed and content diff items.
    Install {
        /// Parser-produced items the install adds to the diff set.
        parsed: Vec<Item>,
        /// Content-based items the install adds to the diff set.
        content: Vec<Item>,
    },
    /// A package uninstall: removes parsed and content diff items.
    Uninstall {
        /// Parser-produced items the uninstall removes.
        parsed: Vec<Item>,
        /// Content-based items the uninstall removes.
        content: Vec<Item>,
    },
    /// A configuration edit: content-only item churn (removals apply
    /// before additions).
    ConfigEdit {
        /// Content items the edit adds.
        add: Vec<Item>,
        /// Content items the edit removes (before `add` applies).
        remove: Vec<Item>,
    },
    /// An overlapping-application set change (removals apply before
    /// additions).
    Apps {
        /// Applications to add to the overlapping set.
        add: Vec<String>,
        /// Applications to remove (before `add` applies).
        remove: Vec<String>,
    },
}

impl DriftOp {
    /// Applies the operation to a machine's clustering input, returning
    /// the post-drift input. Pure: both planes call this, so a delta
    /// means exactly the same thing to the engine and the reference.
    pub fn apply(&self, info: &MachineInfo) -> MachineInfo {
        let mut next = info.clone();
        match self {
            DriftOp::Install { parsed, content } => {
                next.diff.parsed.extend(parsed.iter().cloned());
                next.diff.content.extend(content.iter().cloned());
            }
            DriftOp::Uninstall { parsed, content } => {
                for item in parsed {
                    next.diff.parsed.remove(item);
                }
                for item in content {
                    next.diff.content.remove(item);
                }
            }
            DriftOp::ConfigEdit { add, remove } => {
                for item in remove {
                    next.diff.content.remove(item);
                }
                next.diff.content.extend(add.iter().cloned());
            }
            DriftOp::Apps { add, remove } => {
                for app in remove {
                    next.overlapping_apps.remove(app);
                }
                next.overlapping_apps.extend(add.iter().cloned());
            }
        }
        next
    }
}

/// Drift counters for one batch (or one reference loop), mirrored into
/// telemetry as `cluster.drift_*`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DriftStats {
    /// Deltas that changed their machine's input (= adoptions + singletons).
    pub applied: u64,
    /// Deltas whose application left the input unchanged (fast-pathed:
    /// no removal, no scan, no aggregate touch).
    pub noops: u64,
    /// Applied deltas after which the machine's cluster id changed.
    pub moves: u64,
    /// Applied deltas where an existing cluster adopted the machine.
    pub adoptions: u64,
    /// Applied deltas where the machine founded a singleton cluster.
    pub singletons: u64,
    /// Kernel distance evaluations spent in candidate scans (one per
    /// member visited; identical across planes and parallelism).
    pub dist_evals: u64,
    /// Kernel distance evaluations spent maintaining cohesion
    /// aggregates on removal (engine-only; zero unless
    /// [`DriftEngine::with_cohesion`] is enabled).
    pub aggregate_evals: u64,
}

/// Publishes the `cluster.drift_*` counters for `stats` (only non-zero
/// values, so a no-op batch leaves the registry untouched). Both planes
/// go through this function, which is what makes the counter surface
/// part of the equivalence property.
pub(crate) fn publish_drift_counters(telemetry: &Telemetry, stats: &DriftStats) {
    for (name, value) in [
        ("cluster.drift_moves", stats.moves),
        ("cluster.drift_adoptions", stats.adoptions),
        ("cluster.drift_singletons", stats.singletons),
        ("cluster.drift_dist_evals", stats.dist_evals),
        ("cluster.drift_noops", stats.noops),
        ("cluster.drift_aggregate_evals", stats.aggregate_evals),
    ] {
        if value > 0 {
            telemetry.counter(name, value);
        }
    }
}

/// Hash of a cluster's shared environment key (parsed diff + app set);
/// collisions are tolerated — buckets are exact-verified before any
/// member is touched.
fn env_hash(parsed: &ItemSet, apps: &BTreeSet<String>) -> u64 {
    let mut h = DefaultHasher::new();
    parsed.len().hash(&mut h);
    for item in parsed {
        item.hash(&mut h);
    }
    apps.len().hash(&mut h);
    for app in apps {
        app.hash(&mut h);
    }
    h.finish()
}

/// Builds a derived-consistent [`Clustering`] from pre-grouped machines
/// (group *i* becomes cluster id *i*), plus the flattened machine list.
///
/// Derived fields use exactly the engine/reference arithmetic (sorted
/// members, label = union of member items, app set of the first member,
/// vendor distance = integer sum over `f64` member count), so the
/// result always passes [`DriftEngine::new`]'s consistency validation.
/// The caller is responsible for groups being environment-uniform and
/// within the diameter — synthetic fleets for benches and scale tests
/// are built this way without paying for a full QT run.
pub fn clustering_from_groups(groups: &[Vec<MachineInfo>]) -> (Clustering, Vec<MachineInfo>) {
    let mut clusters = Vec::with_capacity(groups.len());
    let mut machines = Vec::new();
    for (i, group) in groups.iter().enumerate() {
        assert!(!group.is_empty(), "group {i} is empty");
        let mut members: Vec<String> = group.iter().map(|m| m.id().to_string()).collect();
        members.sort();
        let label: ItemSet = group
            .iter()
            .flat_map(|m| m.diff.all_items().into_iter())
            .collect();
        let vendor_distance = group
            .iter()
            .map(|m| m.diff.vendor_distance())
            .sum::<usize>() as f64
            / group.len() as f64;
        clusters.push(Cluster {
            id: ClusterId(i),
            members,
            label,
            app_set: group[0].overlapping_apps.clone(),
            vendor_distance,
        });
        machines.extend(group.iter().cloned());
    }
    (Clustering { clusters }, machines)
}

/// Per-machine resident state.
#[derive(Debug)]
struct MachineState {
    info: MachineInfo,
    /// Content items lowered against the engine pool (distance kernel).
    lowered: LoweredDiff,
    /// All diff items lowered against the engine pool (label refcounts).
    label: LoweredDiff,
    /// Cached `diff.vendor_distance()`.
    vendor: usize,
    /// Owning cluster slot.
    slot: u32,
}

/// Per-cluster resident state with incremental aggregates.
#[derive(Debug)]
struct ClusterState {
    id: ClusterId,
    /// Creation sequence; `order` is always ascending in `seq`, so
    /// comparing seqs equals comparing positions in the output vector
    /// (the reference plane's adoption tie-break).
    seq: u64,
    env_hash: u64,
    /// Member machine ids, sorted.
    members: Vec<String>,
    /// The parsed diff shared by every member (phase-1 invariant).
    parsed: ItemSet,
    /// The app set shared by every member (split invariant).
    app_set: BTreeSet<String>,
    /// Materialised label (union of member items), kept in sync with
    /// `label_refs`.
    label: ItemSet,
    /// Interned item id → number of members carrying it.
    label_refs: HashMap<u32, u32>,
    /// Sum of members' vendor distances.
    vendor_sum: usize,
    /// Cohesion: exact sum of intra-cluster pairwise distances.
    pair_sum: u64,
    /// Cohesion: upper bound on the intra-cluster pairwise maximum
    /// (exact while the cluster only grows).
    pair_max: u32,
}

/// Cohesion aggregates of one cluster (see [`DriftEngine::with_cohesion`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cohesion {
    /// Exact sum of pairwise intra-cluster kernel distances.
    pub pair_sum: u64,
    /// Upper bound on the pairwise maximum (exact under growth-only
    /// histories; removals may leave it loose).
    pub pair_max_bound: u32,
    /// Number of member pairs (`n·(n−1)/2`).
    pub pairs: u64,
}

impl Cohesion {
    /// Mean intra-cluster pairwise distance (0 for singletons).
    pub fn mean(&self) -> f64 {
        if self.pairs == 0 {
            0.0
        } else {
            self.pair_sum as f64 / self.pairs as f64
        }
    }
}

/// Result of scanning one candidate cluster.
struct Scan {
    compatible: bool,
    sum: u64,
    max: u32,
    evals: u64,
}

/// The batch drift engine (see the module docs).
///
/// # Examples
///
/// ```
/// use mirage_cluster::{ClusterEngine, DriftEngine, DriftOp, MachineDelta, MachineInfo};
/// use mirage_fingerprint::{DiffSet, Item};
///
/// let machine = |id: &str, content: &[&str]| {
///     let mut diff = DiffSet::empty(id);
///     diff.content = content.iter().map(|s| Item::new([*s])).collect();
///     MachineInfo::new(diff)
/// };
/// let fleet = vec![machine("a", &["w"]), machine("b", &["w"]), machine("c", &["z", "y"])];
/// let clustering = ClusterEngine::new(1).cluster(&fleet);
/// let mut engine = DriftEngine::new(&clustering, &fleet, 1);
/// // b's config drifts next to c: it moves cluster.
/// let stats = engine.recluster_batch(&[MachineDelta {
///     machine: "b".into(),
///     op: DriftOp::ConfigEdit {
///         add: vec![Item::new(["z"]), Item::new(["y"])],
///         remove: vec![Item::new(["w"])],
///     },
/// }]);
/// assert_eq!(stats.moves, 1);
/// assert!(engine.clustering().cluster_of("c").unwrap().contains("b"));
/// ```
#[derive(Debug)]
pub struct DriftEngine {
    diameter: usize,
    telemetry: Telemetry,
    allow_parallel: bool,
    cohesion: bool,
    pool: ItemPool,
    machines: HashMap<String, MachineState>,
    /// Slot-addressed clusters (`None` = free slot).
    slots: Vec<Option<ClusterState>>,
    free: Vec<u32>,
    /// Active slots in output order (ascending `seq`).
    order: Vec<u32>,
    /// Environment-hash → active slots (unordered within a bucket).
    buckets: HashMap<u64, Vec<u32>>,
    next_seq: u64,
}

impl DriftEngine {
    /// Builds an engine resident over `clustering` and its machine
    /// inputs, lowering every machine onto a fresh persistent pool.
    ///
    /// # Panics
    ///
    /// Panics if the inputs are not a derived-consistent clustering:
    /// `machines` must hold exactly the clustering's members (each in
    /// exactly one cluster, members sorted), every cluster must be
    /// environment-uniform (shared parsed diff and app set), and each
    /// cluster's label and vendor distance must equal the values derived
    /// from its members — anything [`crate::ClusterEngine`],
    /// [`clustering_from_groups`], or the reference plane produces.
    pub fn new(clustering: &Clustering, machines: &[MachineInfo], diameter: usize) -> Self {
        let mut infos: HashMap<String, MachineInfo> = HashMap::with_capacity(machines.len());
        for m in machines {
            if infos.insert(m.id().to_string(), m.clone()).is_some() {
                panic!("duplicate machine {} in inputs", m.id());
            }
        }
        let mut engine = DriftEngine {
            diameter,
            telemetry: Telemetry::noop(),
            allow_parallel: true,
            cohesion: false,
            pool: ItemPool::new(),
            machines: HashMap::with_capacity(machines.len()),
            slots: Vec::with_capacity(clustering.len()),
            free: Vec::new(),
            order: Vec::with_capacity(clustering.len()),
            buckets: HashMap::new(),
            next_seq: 0,
        };
        for cluster in &clustering.clusters {
            engine.insert_resident_cluster(cluster, &mut infos);
        }
        if let Some(id) = infos.keys().next() {
            panic!("machine {id} is not a member of any cluster");
        }
        engine
    }

    /// Attaches a telemetry handle; [`DriftEngine::recluster_batch`]
    /// publishes per-batch `cluster.drift_*` counters through it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables (or disables) cohesion aggregate maintenance.
    ///
    /// Enabling computes every cluster's exact pairwise sum/max once —
    /// quadratic per cluster, fanned over scoped threads — after which
    /// adoption updates are free (the scanned edges are reused) and each
    /// removal costs one recomputed row, counted in
    /// `cluster.drift_aggregate_evals`. Cohesion never affects the
    /// clustering itself; it is observability ([`DriftEngine::cohesion`]).
    pub fn with_cohesion(mut self, on: bool) -> Self {
        self.cohesion = on;
        if on {
            self.recompute_cohesion_all();
        }
        self
    }

    /// Disables (or re-enables) the scoped-thread candidate scan,
    /// regardless of size. Exists so tests can assert the parallel and
    /// sequential paths produce bit-identical clusterings and counters;
    /// prefer the auto-selecting default elsewhere.
    #[doc(hidden)]
    pub fn with_parallel(mut self, on: bool) -> Self {
        self.allow_parallel = on;
        self
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Returns `true` if the engine holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of resident machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// The resident clustering input of `machine`, if resident.
    pub fn machine_info(&self, machine: &str) -> Option<&MachineInfo> {
        self.machines.get(machine).map(|s| &s.info)
    }

    /// Cohesion aggregates of the cluster with id `id` (`None` if no
    /// such cluster; meaningful only with
    /// [`DriftEngine::with_cohesion`] enabled).
    pub fn cohesion(&self, id: ClusterId) -> Option<Cohesion> {
        self.order.iter().find_map(|&s| {
            let c = self.slots[s as usize].as_ref().expect("active slot");
            (c.id == id).then(|| {
                let n = c.members.len() as u64;
                Cohesion {
                    pair_sum: c.pair_sum,
                    pair_max_bound: c.pair_max,
                    pairs: n * (n - 1) / 2,
                }
            })
        })
    }

    /// Applies a delta stream in order and returns the batch counters
    /// (also published to telemetry as `cluster.drift_*`).
    ///
    /// Semantics per delta are exactly the reference plane's
    /// remove → scan → adopt-or-found step; deltas that do not change
    /// their machine's input are skipped without touching any aggregate
    /// (`dist_evals` stays 0 for an all-no-op batch). Processing is
    /// sequential across deltas — a delta sees every earlier delta's
    /// placement — while each delta's candidate scan may fan out over
    /// scoped threads.
    ///
    /// # Panics
    ///
    /// Panics if a delta names a machine the engine does not hold.
    pub fn recluster_batch(&mut self, deltas: &[MachineDelta]) -> DriftStats {
        let _span = self.telemetry.span("cluster.drift_batch");
        let mut stats = DriftStats::default();
        for delta in deltas {
            self.step(delta, &mut stats);
        }
        publish_drift_counters(&self.telemetry, &stats);
        stats
    }

    /// Materialises the current [`Clustering`] (same order, ids, and
    /// derived fields as the reference plane).
    pub fn clustering(&self) -> Clustering {
        let clusters = self
            .order
            .iter()
            .map(|&s| {
                let c = self.slots[s as usize].as_ref().expect("active slot");
                Cluster {
                    id: c.id,
                    members: c.members.clone(),
                    label: c.label.clone(),
                    app_set: c.app_set.clone(),
                    vendor_distance: c.vendor_sum as f64 / c.members.len() as f64,
                }
            })
            .collect();
        Clustering { clusters }
    }

    // ----- construction ---------------------------------------------------

    fn insert_resident_cluster(
        &mut self,
        cluster: &Cluster,
        infos: &mut HashMap<String, MachineInfo>,
    ) {
        let id = cluster.id;
        assert!(!cluster.members.is_empty(), "cluster {id} is empty");
        assert!(
            cluster.members.windows(2).all(|w| w[0] < w[1]),
            "cluster {id} members are not sorted"
        );
        let slot = self.slots.len() as u32;
        let mut label_refs: HashMap<u32, u32> = HashMap::new();
        let mut vendor_sum = 0usize;
        let mut env: Option<(ItemSet, BTreeSet<String>)> = None;
        for member in &cluster.members {
            let info = infos.remove(member).unwrap_or_else(|| {
                panic!("machine {member} missing from inputs (or in two clusters)")
            });
            let lowered = self.pool.lower(&info.diff.content);
            let label = self.pool.lower(&info.diff.all_items());
            for &iid in label.ids() {
                *label_refs.entry(iid).or_insert(0) += 1;
            }
            let vendor = info.diff.vendor_distance();
            vendor_sum += vendor;
            match &env {
                Some((parsed, app_set)) => assert!(
                    info.diff.parsed == *parsed && info.overlapping_apps == *app_set,
                    "cluster {id} is not environment-uniform (member {member})"
                ),
                None => env = Some((info.diff.parsed.clone(), info.overlapping_apps.clone())),
            }
            self.machines.insert(
                member.clone(),
                MachineState {
                    info,
                    lowered,
                    label,
                    vendor,
                    slot,
                },
            );
        }
        let (parsed, app_set) = env.expect("cluster has members");
        let label: ItemSet = label_refs
            .keys()
            .map(|&iid| self.pool.item(iid).expect("interned id").clone())
            .collect();
        assert!(
            label == cluster.label,
            "cluster {id} label is not the union of its members' items"
        );
        let derived_vendor = vendor_sum as f64 / cluster.members.len() as f64;
        assert!(
            derived_vendor.to_bits() == cluster.vendor_distance.to_bits(),
            "cluster {id} vendor distance {} differs from derived {derived_vendor}",
            cluster.vendor_distance
        );
        let env = env_hash(&parsed, &app_set);
        self.slots.push(Some(ClusterState {
            id,
            seq: self.next_seq,
            env_hash: env,
            members: cluster.members.clone(),
            parsed,
            app_set,
            label,
            label_refs,
            vendor_sum,
            pair_sum: 0,
            pair_max: 0,
        }));
        self.next_seq += 1;
        self.order.push(slot);
        self.buckets.entry(env).or_default().push(slot);
    }

    fn recompute_cohesion_all(&mut self) {
        let machines = &self.machines;
        let total_pairs: usize = self
            .slots
            .iter()
            .flatten()
            .map(|c| c.members.len() * c.members.len().saturating_sub(1) / 2)
            .sum();
        let active: Vec<&mut ClusterState> = self.slots.iter_mut().flatten().collect();
        let threads = crate::par::worker_count(total_pairs, PARALLEL_SCAN_THRESHOLD, true)
            .min(active.len().max(1));
        let mut buckets: Vec<Vec<&mut ClusterState>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, c) in active.into_iter().enumerate() {
            buckets[i % threads].push(c);
        }
        crate::par::fan_out(buckets, &|c: &mut ClusterState| {
            let mut sum = 0u64;
            let mut max = 0u32;
            for (i, a) in c.members.iter().enumerate() {
                let la = &machines[a.as_str()].lowered;
                for b in &c.members[i + 1..] {
                    let d = machines[b.as_str()].lowered.distance(la) as u64;
                    sum += d;
                    max = max.max(d as u32);
                }
            }
            c.pair_sum = sum;
            c.pair_max = max;
        });
    }

    // ----- the per-delta step ---------------------------------------------

    fn step(&mut self, delta: &MachineDelta, stats: &mut DriftStats) {
        let state = self
            .machines
            .get(&delta.machine)
            .unwrap_or_else(|| panic!("machine {} missing from inputs", delta.machine));
        let next = delta.op.apply(&state.info);
        if next == state.info {
            stats.noops += 1;
            return;
        }
        stats.applied += 1;
        let old_slot = state.slot;
        let old_id = self.slots[old_slot as usize]
            .as_ref()
            .expect("active slot")
            .id;

        // 1. Remove from the old cluster using the *old* derived values.
        self.remove_member(old_slot, &delta.machine, stats);

        // 2. Refresh the machine's cached state (the only re-lowering
        // the delta pays for).
        {
            let state = self
                .machines
                .get_mut(&delta.machine)
                .expect("resident machine");
            state.info = next;
            state.vendor = state.info.diff.vendor_distance();
            self.pool
                .lower_into(&state.info.diff.content, &mut state.lowered);
            let all = state.info.diff.all_items();
            self.pool.lower_into(&all, &mut state.label);
        }

        // 3. Scan exact-matching buckets for the best compatible cluster.
        let (env, best) = self.scan_candidates(&delta.machine, stats);

        // 4. Adopt or found.
        let new_id = match best {
            Some((slot, sum, max)) => {
                stats.adoptions += 1;
                self.adopt(slot, &delta.machine, sum, max);
                self.slots[slot as usize].as_ref().expect("active slot").id
            }
            None => {
                stats.singletons += 1;
                self.found_singleton(&delta.machine, env)
            }
        };
        if new_id != old_id {
            stats.moves += 1;
        }
    }

    fn remove_member(&mut self, slot: u32, machine: &str, stats: &mut DriftStats) {
        let c = self.slots[slot as usize].as_mut().expect("active slot");
        let pos = c
            .members
            .binary_search_by(|m| m.as_str().cmp(machine))
            .expect("machine is a member of its own cluster");
        c.members.remove(pos);
        if c.members.is_empty() {
            // Emptied cluster: drop it without touching any aggregate.
            let env = c.env_hash;
            self.slots[slot as usize] = None;
            let opos = self
                .order
                .iter()
                .position(|&s| s == slot)
                .expect("active slot in order");
            self.order.remove(opos);
            let bucket = self.buckets.get_mut(&env).expect("bucketed slot");
            let bpos = bucket
                .iter()
                .position(|&s| s == slot)
                .expect("slot in its bucket");
            bucket.swap_remove(bpos);
            if bucket.is_empty() {
                self.buckets.remove(&env);
            }
            self.free.push(slot);
            return;
        }
        let mstate = &self.machines[machine];
        c.vendor_sum -= mstate.vendor;
        for &iid in mstate.label.ids() {
            let refs = c.label_refs.get_mut(&iid).expect("refcounted label id");
            *refs -= 1;
            if *refs == 0 {
                c.label_refs.remove(&iid);
                c.label.remove(self.pool.item(iid).expect("interned id"));
            }
        }
        if self.cohesion {
            // Subtract the removed member's row, recomputed from the
            // cached lowered diffs (its *old* content).
            let mut row = 0u64;
            for m in &c.members {
                row += self.machines[m.as_str()].lowered.distance(&mstate.lowered) as u64;
            }
            stats.aggregate_evals += c.members.len() as u64;
            c.pair_sum -= row;
            // `pair_max` stays an upper bound; max is not invertible.
        }
    }

    /// Returns the environment hash of the (post-delta) machine and the
    /// best compatible cluster as `(slot, edge sum, edge max)`.
    fn scan_candidates(
        &self,
        machine: &str,
        stats: &mut DriftStats,
    ) -> (u64, Option<(u32, u64, u32)>) {
        let mstate = &self.machines[machine];
        let env = env_hash(&mstate.info.diff.parsed, &mstate.info.overlapping_apps);
        let Some(bucket) = self.buckets.get(&env) else {
            return (env, None);
        };
        // Exact-verify the bucket (hash collisions must not admit a
        // cluster the reference's per-member checks would reject), then
        // order candidates by seq = output order, the adoption tie-break.
        let mut cands: Vec<u32> = bucket
            .iter()
            .copied()
            .filter(|&s| {
                let c = self.slots[s as usize].as_ref().expect("active slot");
                c.parsed == mstate.info.diff.parsed && c.app_set == mstate.info.overlapping_apps
            })
            .collect();
        cands.sort_unstable_by_key(|&s| self.slots[s as usize].as_ref().expect("active slot").seq);
        if cands.is_empty() {
            return (env, None);
        }

        let member_count = |s: u32| {
            self.slots[s as usize]
                .as_ref()
                .expect("active slot")
                .members
                .len()
        };
        let total: usize = cands.iter().map(|&s| member_count(s)).sum();
        let threads = crate::par::worker_count(total, PARALLEL_SCAN_THRESHOLD, self.allow_parallel)
            .min(cands.len());
        let mut results: Vec<Option<Scan>> = (0..cands.len()).map(|_| None).collect();
        if threads <= 1 {
            for (&s, out) in cands.iter().zip(results.iter_mut()) {
                *out = Some(self.scan_one(s, &mstate.lowered));
            }
        } else {
            // Largest candidates first, round-robin: balances the per-
            // thread member totals. Each per-cluster scan stays
            // sequential with the same short-circuit, so the eval counts
            // are independent of the assignment.
            let mut items: Vec<(u32, &mut Option<Scan>)> =
                cands.iter().copied().zip(results.iter_mut()).collect();
            items.sort_by_key(|&(s, _)| std::cmp::Reverse(member_count(s)));
            let mut buckets: Vec<Vec<(u32, &mut Option<Scan>)>> =
                (0..threads).map(|_| Vec::new()).collect();
            for (i, item) in items.into_iter().enumerate() {
                buckets[i % threads].push(item);
            }
            crate::par::fan_out(buckets, &|(s, out): (u32, &mut Option<Scan>)| {
                *out = Some(self.scan_one(s, &mstate.lowered));
            });
        }

        // Fold: first strict minimum mean in seq order wins, exactly the
        // reference plane's `mean < best` over its cluster vector.
        let mut best: Option<(f64, u32, u64, u32)> = None;
        for (&s, result) in cands.iter().zip(results.iter()) {
            let scan = result.as_ref().expect("scanned candidate");
            stats.dist_evals += scan.evals;
            if !scan.compatible {
                continue;
            }
            let mean = scan.sum as f64 / member_count(s) as f64;
            if best.map(|(b, ..)| mean < b).unwrap_or(true) {
                best = Some((mean, s, scan.sum, scan.max));
            }
        }
        (env, best.map(|(_, s, sum, max)| (s, sum, max)))
    }

    /// Scans one candidate cluster's members in order, stopping at the
    /// first member past the diameter (mirrors the reference scan, eval
    /// for eval).
    fn scan_one(&self, slot: u32, updated: &LoweredDiff) -> Scan {
        let c = self.slots[slot as usize].as_ref().expect("active slot");
        let mut sum = 0u64;
        let mut max = 0u32;
        let mut evals = 0u64;
        for m in &c.members {
            let d = self.machines[m.as_str()].lowered.distance(updated);
            evals += 1;
            if d > self.diameter {
                return Scan {
                    compatible: false,
                    sum: 0,
                    max: 0,
                    evals,
                };
            }
            sum += d as u64;
            max = max.max(d as u32);
        }
        Scan {
            compatible: true,
            sum,
            max,
            evals,
        }
    }

    fn adopt(&mut self, slot: u32, machine: &str, edge_sum: u64, edge_max: u32) {
        let mstate = self.machines.get_mut(machine).expect("resident machine");
        mstate.slot = slot;
        let c = self.slots[slot as usize].as_mut().expect("active slot");
        let pos = c
            .members
            .binary_search_by(|m| m.as_str().cmp(machine))
            .expect_err("machine cannot already be a member");
        c.members.insert(pos, machine.to_string());
        c.vendor_sum += mstate.vendor;
        for &iid in mstate.label.ids() {
            let refs = c.label_refs.entry(iid).or_insert(0);
            *refs += 1;
            if *refs == 1 {
                c.label
                    .insert(self.pool.item(iid).expect("interned id").clone());
            }
        }
        if self.cohesion {
            // The adoption edges are exactly the scanned distances.
            c.pair_sum += edge_sum;
            c.pair_max = c.pair_max.max(edge_max);
        }
    }

    fn found_singleton(&mut self, machine: &str, env: u64) -> ClusterId {
        let next_id = self
            .order
            .iter()
            .map(|&s| self.slots[s as usize].as_ref().expect("active slot").id.0 + 1)
            .max()
            .unwrap_or(0);
        let mstate = self.machines.get_mut(machine).expect("resident machine");
        let state = ClusterState {
            id: ClusterId(next_id),
            seq: self.next_seq,
            env_hash: env,
            members: vec![machine.to_string()],
            parsed: mstate.info.diff.parsed.clone(),
            app_set: mstate.info.overlapping_apps.clone(),
            label: mstate.info.diff.all_items(),
            label_refs: mstate.label.ids().iter().map(|&iid| (iid, 1)).collect(),
            vendor_sum: mstate.vendor,
            pair_sum: 0,
            pair_max: 0,
        };
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(state);
                s
            }
            None => {
                self.slots.push(Some(state));
                (self.slots.len() - 1) as u32
            }
        };
        mstate.slot = slot;
        self.order.push(slot);
        self.buckets.entry(env).or_default().push(slot);
        ClusterId(next_id)
    }

    // ----- validation -----------------------------------------------------

    /// Exhaustively re-derives every invariant from first principles —
    /// partition, environment uniformity, bucket/order/slot consistency,
    /// label refcounts, vendor sums, and (when enabled) cohesion
    /// aggregates. O(fleet + Σ members²); for tests and debugging.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen_slots = std::collections::HashSet::new();
        let mut prev_seq: Option<u64> = None;
        let mut member_total = 0usize;
        for &s in &self.order {
            if !seen_slots.insert(s) {
                return Err(format!("slot {s} appears twice in order"));
            }
            let Some(c) = self.slots.get(s as usize).and_then(|c| c.as_ref()) else {
                return Err(format!("order references inactive slot {s}"));
            };
            if let Some(p) = prev_seq {
                if c.seq <= p {
                    return Err(format!("order is not ascending in seq at slot {s}"));
                }
            }
            prev_seq = Some(c.seq);
            if c.members.is_empty() {
                return Err(format!("cluster {} is empty", c.id));
            }
            if !c.members.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("cluster {} members are not sorted", c.id));
            }
            if env_hash(&c.parsed, &c.app_set) != c.env_hash {
                return Err(format!("cluster {} has a stale env hash", c.id));
            }
            match self.buckets.get(&c.env_hash) {
                Some(b) if b.iter().filter(|&&x| x == s).count() == 1 => {}
                _ => return Err(format!("cluster {} missing from its bucket", c.id)),
            }
            let mut refs: HashMap<u32, u32> = HashMap::new();
            let mut vendor_sum = 0usize;
            for m in &c.members {
                member_total += 1;
                let Some(ms) = self.machines.get(m) else {
                    return Err(format!("member {m} has no machine state"));
                };
                if ms.slot != s {
                    return Err(format!("member {m} points at slot {} not {s}", ms.slot));
                }
                if ms.info.diff.parsed != c.parsed || ms.info.overlapping_apps != c.app_set {
                    return Err(format!("cluster {} not environment-uniform at {m}", c.id));
                }
                if ms.vendor != ms.info.diff.vendor_distance() {
                    return Err(format!("member {m} has a stale vendor distance"));
                }
                for &iid in ms.label.ids() {
                    *refs.entry(iid).or_insert(0) += 1;
                }
                vendor_sum += ms.vendor;
            }
            if refs != c.label_refs {
                return Err(format!("cluster {} label refcounts out of sync", c.id));
            }
            let label: ItemSet = refs
                .keys()
                .map(|&iid| self.pool.item(iid).expect("interned id").clone())
                .collect();
            if label != c.label {
                return Err(format!("cluster {} label out of sync", c.id));
            }
            if vendor_sum != c.vendor_sum {
                return Err(format!("cluster {} vendor sum out of sync", c.id));
            }
            if self.cohesion {
                let mut sum = 0u64;
                let mut max = 0u32;
                for (i, a) in c.members.iter().enumerate() {
                    let la = &self.machines[a.as_str()].lowered;
                    for b in &c.members[i + 1..] {
                        let d = self.machines[b.as_str()].lowered.distance(la);
                        if d > self.diameter {
                            return Err(format!("cluster {} violates the diameter", c.id));
                        }
                        sum += d as u64;
                        max = max.max(d as u32);
                    }
                }
                if sum != c.pair_sum {
                    return Err(format!("cluster {} pair sum out of sync", c.id));
                }
                if max > c.pair_max {
                    return Err(format!("cluster {} pair max bound violated", c.id));
                }
            }
        }
        let active = self.slots.iter().flatten().count();
        if active != self.order.len() {
            return Err(format!(
                "{} active slots but {} ordered",
                active,
                self.order.len()
            ));
        }
        if member_total != self.machines.len() {
            return Err(format!(
                "{member_total} members but {} machine states",
                self.machines.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use super::*;
    use crate::engine::ClusterEngine;
    use crate::incremental::drift_reference;
    use mirage_fingerprint::DiffSet;
    use mirage_telemetry::Registry;

    fn machine(id: &str, parsed: &[&str], content: &[&str]) -> MachineInfo {
        let mut diff = DiffSet::empty(id);
        diff.parsed = parsed.iter().map(|s| Item::new([*s])).collect();
        diff.content = content.iter().map(|s| Item::new([*s])).collect();
        MachineInfo::new(diff)
    }

    fn items(names: &[&str]) -> Vec<Item> {
        names.iter().map(|s| Item::new([*s])).collect()
    }

    fn info_map(machines: &[MachineInfo]) -> BTreeMap<String, MachineInfo> {
        machines
            .iter()
            .map(|m| (m.id().to_string(), m.clone()))
            .collect()
    }

    /// Runs `deltas` through both planes with fresh registries and
    /// asserts bit-identical clusterings, stats, and published
    /// `cluster.drift_*` counters; returns the stats.
    fn assert_planes_agree(
        clustering: &Clustering,
        machines: &[MachineInfo],
        deltas: &[MachineDelta],
        diameter: usize,
    ) -> DriftStats {
        let ref_registry = Arc::new(Registry::new(64));
        let mut map = info_map(machines);
        let (ref_clustering, ref_stats) = drift_reference(
            clustering,
            &mut map,
            deltas,
            diameter,
            &Telemetry::from_registry(Arc::clone(&ref_registry)),
        );

        let eng_registry = Arc::new(Registry::new(64));
        let mut engine = DriftEngine::new(clustering, machines, diameter)
            .with_telemetry(Telemetry::from_registry(Arc::clone(&eng_registry)));
        let eng_stats = engine.recluster_batch(deltas);
        engine.validate().unwrap();

        assert_eq!(engine.clustering(), ref_clustering);
        assert_eq!(eng_stats, ref_stats);
        let drift_counters = |reg: &Registry| -> BTreeMap<String, u64> {
            reg.snapshot()
                .counters
                .into_iter()
                .filter(|(k, _)| k.starts_with("cluster.drift_"))
                .collect()
        };
        assert_eq!(drift_counters(&eng_registry), drift_counters(&ref_registry));
        eng_stats
    }

    #[test]
    fn batch_matches_reference_hand_case() {
        let fleet = vec![
            machine("a", &["x"], &[]),
            machine("b", &["x"], &[]),
            machine("c", &["y"], &[]),
        ];
        let clustering = ClusterEngine::new(1).cluster(&fleet);
        let deltas = vec![MachineDelta {
            machine: "b".into(),
            op: DriftOp::Install {
                parsed: items(&["y"]),
                content: vec![],
            },
        }];
        let stats = assert_planes_agree(&clustering, &fleet, &deltas, 1);
        // b's parsed becomes {x, y}: matches neither environment.
        assert_eq!(stats.applied, 1);
        assert_eq!(stats.singletons, 1);
        assert_eq!(stats.moves, 1);
        assert_eq!(stats.dist_evals, 0);
    }

    #[test]
    fn adoption_counts_one_eval_per_member() {
        let fleet = vec![
            machine("a", &["x"], &["w"]),
            machine("b", &["x"], &["w"]),
            machine("c", &["y"], &["w"]),
            machine("d", &["y"], &["w", "v"]),
        ];
        let clustering = ClusterEngine::new(2).cluster(&fleet);
        assert_eq!(clustering.len(), 2);
        // b moves to the y environment (via the empty one): the {c, d}
        // scan costs exactly one eval per member, and adoption reuses
        // the scanned sum.
        let deltas = vec![
            MachineDelta {
                machine: "b".into(),
                op: DriftOp::Uninstall {
                    parsed: items(&["x"]),
                    content: vec![],
                },
            },
            MachineDelta {
                machine: "b".into(),
                op: DriftOp::Install {
                    parsed: items(&["y"]),
                    content: vec![],
                },
            },
        ];
        let stats = assert_planes_agree(&clustering, &fleet, &deltas, 2);
        assert_eq!(stats.applied, 2);
        // Step 1 ({} env): singleton, 0 evals. Step 2 ({y} env): scans
        // {c, d} = 2 evals and adopts.
        assert_eq!(stats.singletons, 1);
        assert_eq!(stats.adoptions, 1);
        assert_eq!(stats.dist_evals, 2);
        assert_eq!(stats.moves, 2);
    }

    #[test]
    fn noop_batch_touches_nothing() {
        let fleet = vec![
            machine("a", &["x"], &["w"]),
            machine("b", &["x"], &["w", "v"]),
        ];
        let clustering = ClusterEngine::new(2).cluster(&fleet);
        let registry = Arc::new(Registry::new(64));
        let mut engine = DriftEngine::new(&clustering, &fleet, 2)
            .with_cohesion(true)
            .with_telemetry(Telemetry::from_registry(Arc::clone(&registry)));
        let before = engine.cohesion(clustering.clusters[0].id).unwrap();
        let deltas = vec![
            MachineDelta {
                machine: "a".into(),
                op: DriftOp::ConfigEdit {
                    add: vec![],
                    remove: vec![],
                },
            },
            MachineDelta {
                machine: "b".into(),
                // Uninstalling an absent item changes nothing.
                op: DriftOp::Uninstall {
                    parsed: items(&["absent"]),
                    content: vec![],
                },
            },
            MachineDelta {
                machine: "a".into(),
                // Installing an already-present content item.
                op: DriftOp::Install {
                    parsed: vec![],
                    content: items(&["w"]),
                },
            },
        ];
        let stats = engine.recluster_batch(&deltas);
        assert_eq!(
            stats,
            DriftStats {
                noops: 3,
                ..DriftStats::default()
            }
        );
        // The fast path must not touch aggregates or the kernel.
        assert_eq!(stats.dist_evals, 0);
        assert_eq!(engine.cohesion(clustering.clusters[0].id).unwrap(), before);
        assert_eq!(engine.clustering(), clustering);
        engine.validate().unwrap();
        let snap = registry.snapshot();
        assert!(!snap.counters.contains_key("cluster.drift_dist_evals"));
        assert!(!snap.counters.contains_key("cluster.drift_moves"));
        assert_eq!(snap.counters["cluster.drift_noops"], 3);
    }

    #[test]
    fn two_machines_swap_clusters_in_one_batch() {
        let fleet = vec![
            machine("a", &["p"], &[]),
            machine("b", &["q"], &[]),
            machine("c", &["p"], &[]),
            machine("d", &["q"], &[]),
        ];
        let clustering = ClusterEngine::new(1).cluster(&fleet);
        assert_eq!(clustering.len(), 2);
        let deltas = vec![
            MachineDelta {
                machine: "a".into(),
                op: DriftOp::Uninstall {
                    parsed: items(&["p"]),
                    content: vec![],
                },
            },
            MachineDelta {
                machine: "a".into(),
                op: DriftOp::Install {
                    parsed: items(&["q"]),
                    content: vec![],
                },
            },
            MachineDelta {
                machine: "b".into(),
                op: DriftOp::Uninstall {
                    parsed: items(&["q"]),
                    content: vec![],
                },
            },
            MachineDelta {
                machine: "b".into(),
                op: DriftOp::Install {
                    parsed: items(&["p"]),
                    content: vec![],
                },
            },
        ];
        let stats = assert_planes_agree(&clustering, &fleet, &deltas, 1);
        assert_eq!(stats.applied, 4);
        // Each machine detours through the empty environment (singleton)
        // before landing in the other cluster.
        assert_eq!(stats.adoptions, 2);
        assert_eq!(stats.singletons, 2);
    }

    #[test]
    fn emptied_cluster_id_refounded_in_same_batch() {
        let fleet = vec![
            machine("a", &["p"], &[]),
            machine("b", &["p"], &[]),
            machine("c", &["q"], &[]),
        ];
        let clustering = ClusterEngine::new(1).cluster(&fleet);
        assert_eq!(clustering.len(), 2);
        let max_id = clustering.clusters.iter().map(|c| c.id.0).max().unwrap();
        // c's singleton cluster empties; the same numeric id is re-minted
        // for c's new singleton within the same step.
        let deltas = vec![MachineDelta {
            machine: "c".into(),
            op: DriftOp::Install {
                parsed: items(&["r"]),
                content: vec![],
            },
        }];
        let stats = assert_planes_agree(&clustering, &fleet, &deltas, 1);
        assert_eq!(stats.singletons, 1);
        // The id was dropped and refounded, so the machine "moved" to a
        // cluster with the same numeric id: no id change, no move.
        assert_eq!(stats.moves, 0);
        let mut engine = DriftEngine::new(&clustering, &fleet, 1);
        engine.recluster_batch(&deltas);
        let after = engine.clustering();
        assert_eq!(after.len(), 2);
        assert_eq!(after.clusters.iter().map(|c| c.id.0).max().unwrap(), max_id);
        assert!(after
            .clusters
            .iter()
            .any(|c| c.id.0 == max_id && c.members == ["c"]));
    }

    #[test]
    fn cohesion_is_exact_under_growth_and_removal() {
        let fleet = vec![
            machine("a", &["p"], &["w"]),
            machine("b", &["p"], &["w", "v"]),
            machine("c", &["p"], &["w", "u"]),
            machine("d", &["q"], &["w"]),
        ];
        let clustering = ClusterEngine::new(2).cluster(&fleet);
        let mut engine = DriftEngine::new(&clustering, &fleet, 2).with_cohesion(true);
        let abc = engine.clustering().cluster_of("a").unwrap().id;
        // d(a,b)=1, d(a,c)=1, d(b,c)=2.
        let coh = engine.cohesion(abc).unwrap();
        assert_eq!((coh.pair_sum, coh.pair_max_bound, coh.pairs), (4, 2, 3));
        assert_eq!(coh.mean(), 4.0 / 3.0);

        // d joins via the empty environment (its singleton empties and
        // is dropped each step — no aggregate work): scanned edges
        // d(d,a)=0, d(d,b)=1, d(d,c)=1.
        let stats = engine.recluster_batch(&[
            MachineDelta {
                machine: "d".into(),
                op: DriftOp::Uninstall {
                    parsed: items(&["q"]),
                    content: vec![],
                },
            },
            MachineDelta {
                machine: "d".into(),
                op: DriftOp::Install {
                    parsed: items(&["p"]),
                    content: vec![],
                },
            },
        ]);
        assert_eq!(stats.singletons, 1);
        assert_eq!(stats.adoptions, 1);
        assert_eq!(stats.aggregate_evals, 0); // growth reuses the scan
        let coh = engine.cohesion(abc).unwrap();
        assert_eq!((coh.pair_sum, coh.pair_max_bound, coh.pairs), (6, 2, 6));

        // b leaves: its row d(b,a)+d(b,c)+d(b,d) = 1+2+1 is recomputed
        // and subtracted (3 aggregate evals).
        let stats = engine.recluster_batch(&[MachineDelta {
            machine: "b".into(),
            op: DriftOp::Install {
                parsed: items(&["r"]),
                content: vec![],
            },
        }]);
        assert_eq!(stats.singletons, 1);
        assert_eq!(stats.aggregate_evals, 3);
        let coh = engine.cohesion(abc).unwrap();
        assert_eq!((coh.pair_sum, coh.pairs), (2, 3));
        assert!(coh.pair_max_bound >= 1);
        engine.validate().unwrap();
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_sequential() {
        // Two same-environment clusters big enough to cross the fan-out
        // threshold (4096 candidate members) in one scan.
        let group = |tag: &str, n: usize, content: &[&str]| -> Vec<MachineInfo> {
            (0..n)
                .map(|i| machine(&format!("{tag}{i:05}"), &["p"], content))
                .collect()
        };
        let groups = vec![group("a", 2100, &["x"]), group("b", 2100, &["y"])];
        let (clustering, fleet) = clustering_from_groups(&groups);
        let delta = vec![MachineDelta {
            machine: "a00000".into(),
            op: DriftOp::ConfigEdit {
                add: items(&["y"]),
                remove: items(&["x"]),
            },
        }];

        let run = |parallel: bool| {
            let mut engine = DriftEngine::new(&clustering, &fleet, 0).with_parallel(parallel);
            let stats = engine.recluster_batch(&delta);
            engine.validate().unwrap();
            (engine.clustering(), stats)
        };
        let (par_clustering, par_stats) = run(true);
        let (seq_clustering, seq_stats) = run(false);
        assert_eq!(par_clustering, seq_clustering);
        assert_eq!(par_stats, seq_stats);
        // Old cluster (2099 members left) short-circuits on its first
        // member; the new cluster is scanned in full.
        assert_eq!(par_stats.dist_evals, 1 + 2100);
        assert_eq!(par_stats.adoptions, 1);
        assert_eq!(
            assert_planes_agree(&clustering, &fleet, &delta, 0),
            par_stats
        );
    }

    #[test]
    fn clustering_from_groups_is_engine_consistent() {
        let groups = vec![
            vec![machine("m1", &["p"], &["x"]), machine("m0", &["p"], &["x"])],
            vec![machine("m2", &["q"], &[])],
        ];
        let (clustering, fleet) = clustering_from_groups(&groups);
        assert_eq!(clustering.clusters[0].members, ["m0", "m1"]);
        clustering.validate_partition().unwrap();
        let engine = DriftEngine::new(&clustering, &fleet, 1);
        engine.validate().unwrap();
        assert_eq!(engine.clustering(), clustering);
    }

    #[test]
    #[should_panic(expected = "label is not the union")]
    fn construction_rejects_stale_label() {
        let fleet = vec![machine("a", &["p"], &["x"])];
        let mut clustering = ClusterEngine::new(1).cluster(&fleet);
        clustering.clusters[0].label.insert(Item::new(["phantom"]));
        DriftEngine::new(&clustering, &fleet, 1);
    }

    #[test]
    #[should_panic(expected = "missing from inputs")]
    fn construction_rejects_missing_machine() {
        let fleet = vec![machine("a", &["p"], &[]), machine("b", &["p"], &[])];
        let clustering = ClusterEngine::new(1).cluster(&fleet);
        DriftEngine::new(&clustering, &fleet[..1], 1);
    }

    #[test]
    #[should_panic(expected = "not a member of any cluster")]
    fn construction_rejects_extra_machine() {
        let fleet = vec![machine("a", &["p"], &[])];
        let clustering = ClusterEngine::new(1).cluster(&fleet);
        let extra = vec![fleet[0].clone(), machine("ghost", &["p"], &[])];
        DriftEngine::new(&clustering, &extra, 1);
    }

    #[test]
    #[should_panic(expected = "vendor distance")]
    fn construction_rejects_stale_vendor_distance() {
        let fleet = vec![machine("a", &["p"], &["x", "y"])];
        let mut clustering = ClusterEngine::new(1).cluster(&fleet);
        clustering.clusters[0].vendor_distance += 1.0;
        DriftEngine::new(&clustering, &fleet, 1);
    }

    #[test]
    fn batch_panics_on_unknown_machine() {
        let fleet = vec![machine("a", &["p"], &[])];
        let clustering = ClusterEngine::new(1).cluster(&fleet);
        let mut engine = DriftEngine::new(&clustering, &fleet, 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.recluster_batch(&[MachineDelta {
                machine: "ghost".into(),
                op: DriftOp::ConfigEdit {
                    add: vec![],
                    remove: vec![],
                },
            }])
        }));
        assert!(result.is_err());
    }
}
