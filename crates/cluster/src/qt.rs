//! Phase 2: deterministic QT-style diameter-bounded clustering.
//!
//! Content-based fingerprints carry no semantic information, so equality
//! grouping would shatter machines over irrelevant byte differences.
//! Instead, machines within one original cluster are merged greedily:
//! each step performs the merge that minimises the average inter-machine
//! distance of the merged cluster, subject to the merged cluster's
//! *diameter* (maximum pairwise distance) not exceeding the
//! vendor-defined bound `d`. The paper adapts the Quality Threshold (QT)
//! algorithm of Heyer et al. and rejects k-means for its
//! non-determinism; this implementation breaks all ties on a canonical
//! member-id key, making it fully deterministic *and* invariant under
//! input permutation.
//!
//! # Performance
//!
//! The paper concedes phase 2 is quadratic in the size of each original
//! cluster (§3.2.3); at fleet scale the constant factor decides whether
//! that is tolerable. The hot path here is built in three layers:
//!
//! 1. **Interned distances** — every content item is interned to a
//!    `u32` through an [`ItemPool`]; pairwise distances are sorted-merge
//!    counts over integer slices ([`LoweredDiff::distance`]), with no
//!    string comparisons or `BTreeSet` walks.
//! 2. **Parallel distance matrix** — the O(n²) pairwise matrix is
//!    filled with `std::thread::scope` over round-robin row chunks
//!    (std-only) once the input is large enough to amortise thread
//!    spawns. The result is bit-identical to the sequential fill and
//!    `cluster.distance_evals` stays exact (upper triangle only).
//! 3. **Incremental merge aggregates** — instead of recomputing each
//!    candidate merge's (sum, max, pairs) from scratch every greedy
//!    iteration (O(k²·m²)), per-pair aggregates are maintained
//!    Lance–Williams-style: `sum(A∪B,C) = sum(A,C) + sum(B,C)` and
//!    `max(A∪B,C) = max(max(A,C), max(B,C))`, so one iteration is a
//!    scan over cached candidate averages (O(k²) comparisons, O(k)
//!    aggregate updates). The canonical tie-break key (sorted member
//!    ids) is maintained incrementally by merging sorted id lists, and
//!    is only materialised when two candidates tie on average distance.
//!
//! The original naive merge loop survives as
//! [`qt_cluster_indices_reference`]; seeded property tests assert the
//! fast path is bit-identical to it across random populations,
//! diameters, and input permutations.

use mirage_fingerprint::{ItemPool, LoweredDiff};
use mirage_telemetry::Telemetry;

use crate::cluster::MachineInfo;

/// Populations at least this large use the threaded matrix fill;
/// smaller ones stay sequential (thread spawns would dominate).
const PARALLEL_THRESHOLD: usize = 64;

/// Clusters `machines` with diameter bound `diameter`.
///
/// Distance is the Manhattan distance over content-based diff items.
/// Returns groups of indexes into `machines`, each sorted, in
/// deterministic order. `diameter = 0` merges only machines with
/// identical content items.
pub fn qt_cluster_indices(machines: &[&MachineInfo], diameter: usize) -> Vec<Vec<usize>> {
    qt_cluster_indices_instrumented(machines, diameter, &Telemetry::noop())
}

/// [`qt_cluster_indices`] with instrumentation attached.
///
/// Records the `cluster.distance_evals` counter (pairwise fingerprint
/// distance computations) and one `cluster.qt_merges` count per greedy
/// merge iteration. The clustering result is identical to the
/// uninstrumented call, and identical whether the distance matrix was
/// filled sequentially or in parallel.
pub fn qt_cluster_indices_instrumented(
    machines: &[&MachineInfo],
    diameter: usize,
    telemetry: &Telemetry,
) -> Vec<Vec<usize>> {
    qt_cluster_indices_inner(machines, diameter, telemetry, true)
}

/// [`qt_cluster_indices_instrumented`] with the parallel matrix fill
/// disabled, regardless of population size.
///
/// Exists so tests can assert the parallel and sequential paths produce
/// bit-identical clusterings and telemetry; prefer the auto-selecting
/// entry points elsewhere.
#[doc(hidden)]
pub fn qt_cluster_indices_sequential(
    machines: &[&MachineInfo],
    diameter: usize,
    telemetry: &Telemetry,
) -> Vec<Vec<usize>> {
    qt_cluster_indices_inner(machines, diameter, telemetry, false)
}

fn qt_cluster_indices_inner(
    machines: &[&MachineInfo],
    diameter: usize,
    telemetry: &Telemetry,
    allow_parallel: bool,
) -> Vec<Vec<usize>> {
    let n = machines.len();
    if n == 0 {
        return Vec::new();
    }

    // Layer 1: lower every content diff onto interned u32 ids.
    let mut pool = ItemPool::new();
    let lowered: Vec<LoweredDiff> = machines
        .iter()
        .map(|m| pool.lower(&m.diff.content))
        .collect();

    // Layer 2: pairwise distance matrix (symmetric, zero diagonal).
    let dist = distance_matrix(&lowered, allow_parallel);
    if n > 1 {
        telemetry.counter("cluster.distance_evals", (n * (n - 1) / 2) as u64);
    }

    // Layer 3: greedy QT merging over incremental aggregates.
    merge_loop(machines, diameter, dist, telemetry)
}

/// Fills the full symmetric distance matrix from lowered diffs.
///
/// Only the upper triangle is computed (n·(n−1)/2 kernel calls — the
/// exact number `cluster.distance_evals` reports); the lower triangle is
/// mirrored afterwards. With `allow_parallel` and a large enough input,
/// rows are distributed round-robin over `available_parallelism`
/// scoped threads; round-robin balances the shrinking triangle rows.
// The mirror pass writes both (i, j) and (j, i); that symmetric double
// indexing has no iterator form, hence the range loops.
#[allow(clippy::needless_range_loop)]
fn distance_matrix(lowered: &[LoweredDiff], allow_parallel: bool) -> Vec<Vec<u32>> {
    let n = lowered.len();
    let mut rows: Vec<Vec<u32>> = (0..n).map(|_| vec![0u32; n]).collect();
    let threads = crate::par::worker_count(n, PARALLEL_THRESHOLD, allow_parallel);
    let fill_row = |i: usize, row: &mut [u32]| {
        for (j, slot) in row.iter_mut().enumerate().skip(i + 1) {
            *slot = lowered[i].distance(&lowered[j]) as u32;
        }
    };
    if threads <= 1 {
        for (i, row) in rows.iter_mut().enumerate() {
            fill_row(i, row);
        }
    } else {
        let mut buckets: Vec<Vec<(usize, &mut Vec<u32>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (i, row) in rows.iter_mut().enumerate() {
            buckets[i % threads].push((i, row));
        }
        crate::par::fan_out(buckets, &|(i, row): (usize, &mut Vec<u32>)| {
            fill_row(i, row)
        });
    }
    // Mirror the upper triangle; values are identical either way, so
    // the threaded fill cannot change the clustering.
    for i in 0..n {
        for j in (i + 1)..n {
            rows[j][i] = rows[i][j];
        }
    }
    rows
}

/// Greedy QT merge loop over incrementally maintained aggregates.
///
/// State per active cluster slot: sorted member indices, sorted
/// member-id tie-break key, intra-cluster distance sum and max. State
/// per slot pair: cross sum/max of member distances plus the cached
/// candidate average (`f64::INFINITY` when the merged diameter would
/// exceed the bound). A merge updates only the surviving slot's row and
/// column; every other candidate is untouched, so each iteration costs
/// one O(k²) comparison scan instead of O(k²·m²) recomputation.
// The paired cross-sum/cross-max/candidate matrices are written at both
// (a, b) and (b, a); that symmetric double indexing has no iterator form,
// hence the range loops.
#[allow(clippy::needless_range_loop)]
fn merge_loop(
    machines: &[&MachineInfo],
    diameter: usize,
    dist: Vec<Vec<u32>>,
    telemetry: &Telemetry,
) -> Vec<Vec<usize>> {
    let n = machines.len();
    // Per-slot state (slots are compacted with swap_remove on merge;
    // slot order never affects the result because candidate selection
    // is canonical on (average, member-id key)).
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut keys: Vec<Vec<&str>> = (0..n).map(|i| vec![machines[i].id()]).collect();
    let mut intra_sum: Vec<u64> = vec![0; n];
    let mut intra_max: Vec<u32> = vec![0; n];
    let mut sizes: Vec<usize> = vec![1; n];
    // Per-pair aggregates (full symmetric matrices, zero diagonal).
    let mut cross_max: Vec<Vec<u32>> = dist.clone();
    let mut cross_sum: Vec<Vec<u64>> = dist
        .into_iter()
        .map(|row| row.into_iter().map(u64::from).collect())
        .collect();
    // Cached candidate average for each pair; infinity = infeasible.
    let mut cand: Vec<Vec<f64>> = vec![vec![f64::INFINITY; n]; n];

    // Exactly the naive implementation's arithmetic: sum/pairs in f64
    // over the merged cluster's full pair set, so averages (and thus tie
    // structure) are bit-identical to [`qt_cluster_indices_reference`].
    let candidate_avg = |a: usize,
                         b: usize,
                         intra_sum: &[u64],
                         intra_max: &[u32],
                         sizes: &[usize],
                         cross_sum: &[Vec<u64>],
                         cross_max: &[Vec<u32>]|
     -> f64 {
        let max_d = cross_max[a][b].max(intra_max[a]).max(intra_max[b]);
        if max_d as usize > diameter {
            return f64::INFINITY;
        }
        let sum = intra_sum[a] + intra_sum[b] + cross_sum[a][b];
        let merged = sizes[a] + sizes[b];
        let pairs = merged * (merged - 1) / 2;
        if pairs == 0 {
            0.0
        } else {
            sum as f64 / pairs as f64
        }
    };

    for a in 0..n {
        for b in (a + 1)..n {
            let avg = candidate_avg(a, b, &intra_sum, &intra_max, &sizes, &cross_sum, &cross_max);
            cand[a][b] = avg;
            cand[b][a] = avg;
        }
    }

    let mut k = n;
    while k > 1 {
        // Select the candidate minimising (average, canonical member-id
        // key). Distinct pairs always have distinct keys (clusters are
        // disjoint), so the minimum is unique and independent of slot
        // iteration order.
        let mut best: Option<(f64, usize, usize)> = None;
        let mut best_key: Option<Vec<&str>> = None;
        for a in 0..k {
            for (off, &avg) in cand[a][(a + 1)..k].iter().enumerate() {
                let b = a + 1 + off;
                if avg.is_infinite() {
                    continue;
                }
                match best {
                    None => {
                        best = Some((avg, a, b));
                        best_key = None;
                    }
                    Some((b_avg, b_a, b_b)) => {
                        if avg < b_avg {
                            best = Some((avg, a, b));
                            best_key = None;
                        } else if avg == b_avg {
                            // Materialise keys only on a genuine tie.
                            let key = merge_sorted(&keys[a], &keys[b]);
                            let cur = best_key
                                .get_or_insert_with(|| merge_sorted(&keys[b_a], &keys[b_b]));
                            if key < *cur {
                                best = Some((avg, a, b));
                                best_key = Some(key);
                            }
                        }
                    }
                }
            }
        }
        let Some((_, a, b)) = best else { break };
        telemetry.counter("cluster.qt_merges", 1);

        // Merge slot b into slot a: Lance–Williams aggregate updates.
        intra_max[a] = intra_max[a].max(intra_max[b]).max(cross_max[a][b]);
        intra_sum[a] = intra_sum[a] + intra_sum[b] + cross_sum[a][b];
        sizes[a] += sizes[b];
        let members_b = std::mem::take(&mut members[b]);
        members[a].extend(members_b);
        members[a].sort_unstable();
        let keys_b = std::mem::take(&mut keys[b]);
        keys[a] = merge_sorted(&keys[a], &keys_b);
        for c in 0..k {
            if c == a || c == b {
                continue;
            }
            let sum = cross_sum[a][c] + cross_sum[b][c];
            cross_sum[a][c] = sum;
            cross_sum[c][a] = sum;
            let max = cross_max[a][c].max(cross_max[b][c]);
            cross_max[a][c] = max;
            cross_max[c][a] = max;
        }

        // Compact slot b out of every slot-indexed structure. swap_remove
        // relocates the last slot into b consistently across rows and
        // columns; relocated pairs keep their cached candidates.
        members.swap_remove(b);
        keys.swap_remove(b);
        intra_sum.swap_remove(b);
        intra_max.swap_remove(b);
        sizes.swap_remove(b);
        cross_sum.swap_remove(b);
        cross_max.swap_remove(b);
        cand.swap_remove(b);
        for row in cross_sum.iter_mut() {
            row.swap_remove(b);
        }
        for row in cross_max.iter_mut() {
            row.swap_remove(b);
        }
        for row in cand.iter_mut() {
            row.swap_remove(b);
        }
        k -= 1;

        // Only candidates involving the merged slot changed.
        for c in 0..k {
            if c == a {
                continue;
            }
            let avg = candidate_avg(a, c, &intra_sum, &intra_max, &sizes, &cross_sum, &cross_max);
            cand[a][c] = avg;
            cand[c][a] = avg;
        }
    }

    members.sort();
    members
}

/// Merges two sorted string-slice lists into one sorted list.
fn merge_sorted<'a>(a: &[&'a str], b: &[&'a str]) -> Vec<&'a str> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The original naive QT merge loop, retained as the reference
/// implementation the fast path is property-tested against.
///
/// Recomputes every candidate merge's statistics from scratch each
/// iteration (O(k²·m²) per merge) using [`DiffSet::content_distance`]
/// over `BTreeSet<Item>` — slow, but independently simple enough to
/// trust. Seeded property tests assert
/// [`qt_cluster_indices`] is bit-identical to this across random fleets,
/// diameters, and input permutations; do not use it outside tests and
/// benchmarks.
///
/// [`DiffSet::content_distance`]: mirage_fingerprint::DiffSet::content_distance
pub fn qt_cluster_indices_reference(machines: &[&MachineInfo], diameter: usize) -> Vec<Vec<usize>> {
    let n = machines.len();
    let mut dist = vec![vec![0usize; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = machines[i].diff.content_distance(&machines[j].diff);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }

    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    loop {
        // Select the merge minimising (average distance, canonical member
        // ids). The canonical tie-break makes the algorithm invariant
        // under input permutation, not merely deterministic.
        let mut best: Option<(f64, Vec<&str>, usize, usize)> = None;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let merged: Vec<usize> = clusters[a]
                    .iter()
                    .chain(clusters[b].iter())
                    .copied()
                    .collect();
                let mut max_d = 0usize;
                let mut sum = 0usize;
                let mut pairs = 0usize;
                for (x, &i) in merged.iter().enumerate() {
                    for &j in &merged[x + 1..] {
                        max_d = max_d.max(dist[i][j]);
                        sum += dist[i][j];
                        pairs += 1;
                    }
                }
                if max_d > diameter {
                    continue;
                }
                let avg = if pairs == 0 {
                    0.0
                } else {
                    sum as f64 / pairs as f64
                };
                let mut key: Vec<&str> = merged.iter().map(|&i| machines[i].id()).collect();
                key.sort_unstable();
                let better = match &best {
                    None => true,
                    Some((b_avg, b_key, _, _)) => avg < *b_avg || (avg == *b_avg && key < *b_key),
                };
                if better {
                    best = Some((avg, key, a, b));
                }
            }
        }
        match best {
            Some((_, _, a, b)) => {
                let merged_b = clusters.remove(b);
                clusters[a].extend(merged_b);
                clusters[a].sort_unstable();
            }
            None => break,
        }
    }
    clusters.sort();
    clusters
}

/// Like [`qt_cluster_indices`], returning machine references.
pub fn qt_cluster<'a>(machines: &[&'a MachineInfo], diameter: usize) -> Vec<Vec<&'a MachineInfo>> {
    qt_cluster_instrumented(machines, diameter, &Telemetry::noop())
}

/// Like [`qt_cluster_indices_instrumented`], returning machine
/// references.
pub fn qt_cluster_instrumented<'a>(
    machines: &[&'a MachineInfo],
    diameter: usize,
    telemetry: &Telemetry,
) -> Vec<Vec<&'a MachineInfo>> {
    qt_cluster_indices_instrumented(machines, diameter, telemetry)
        .into_iter()
        .map(|group| group.into_iter().map(|i| machines[i]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_fingerprint::{DiffSet, Item};

    /// A machine whose content diff is the given set of single-segment
    /// items; distance between machines = symmetric difference size.
    fn machine(id: &str, content: &[&str]) -> MachineInfo {
        let mut diff = DiffSet::empty(id);
        diff.content = content.iter().map(|s| Item::new([*s])).collect();
        MachineInfo::new(diff)
    }

    fn ids(groups: &[Vec<&MachineInfo>]) -> Vec<Vec<String>> {
        groups
            .iter()
            .map(|g| g.iter().map(|m| m.id().to_string()).collect())
            .collect()
    }

    #[test]
    fn zero_diameter_merges_only_identical() {
        let a = machine("a", &["x"]);
        let b = machine("b", &["x"]);
        let c = machine("c", &["y"]);
        let groups = qt_cluster(&[&a, &b, &c], 0);
        assert_eq!(ids(&groups), vec![vec!["a", "b"], vec!["c"]]);
    }

    #[test]
    fn diameter_bounds_merging() {
        // a={}, b={x}, c={x,y}: d(a,b)=1, d(b,c)=1, d(a,c)=2.
        let a = machine("a", &[]);
        let b = machine("b", &["x"]);
        let c = machine("c", &["x", "y"]);
        // d=1: merging all three would give diameter 2 → two clusters.
        let groups = qt_cluster(&[&a, &b, &c], 1);
        assert_eq!(groups.len(), 2);
        // d=2: everything merges.
        let groups = qt_cluster(&[&a, &b, &c], 2);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn closest_pairs_merge_first() {
        // Two tight pairs far apart: {a,b} at distance 0, {c,d} at 2,
        // cross distances large.
        let a = machine("a", &["p"]);
        let b = machine("b", &["p"]);
        let c = machine("c", &["q", "r", "s"]);
        let d = machine("d", &["q", "r", "t"]);
        let groups = qt_cluster(&[&a, &b, &c, &d], 2);
        assert_eq!(ids(&groups), vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn deterministic_regardless_of_tie_structure() {
        // Three mutually equidistant machines (pairwise distance 2).
        let a = machine("a", &["x"]);
        let b = machine("b", &["y"]);
        let c = machine("c", &["z"]);
        let g1 = ids(&qt_cluster(&[&a, &b, &c], 2));
        let g2 = ids(&qt_cluster(&[&a, &b, &c], 2));
        assert_eq!(g1, g2);
        // All merge (diameter 2 allows it).
        assert_eq!(g1.len(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(qt_cluster(&[], 3).is_empty());
        let a = machine("a", &["x"]);
        let groups = qt_cluster(&[&a], 3);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 1);
    }

    #[test]
    fn large_diameter_merges_everything() {
        let ms: Vec<MachineInfo> = (0..10)
            .map(|i| machine(&format!("m{i}"), &[&format!("item{i}")]))
            .collect();
        let refs: Vec<&MachineInfo> = ms.iter().collect();
        let groups = qt_cluster(&refs, 100);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 10);
    }

    #[test]
    fn all_identical_machines_merge_at_zero_diameter() {
        let ms: Vec<MachineInfo> = (0..6)
            .map(|i| machine(&format!("m{i}"), &["same", "items"]))
            .collect();
        let refs: Vec<&MachineInfo> = ms.iter().collect();
        let groups = qt_cluster_indices(&refs, 0);
        assert_eq!(groups, vec![vec![0, 1, 2, 3, 4, 5]]);
        assert_eq!(groups, qt_cluster_indices_reference(&refs, 0));
    }

    #[test]
    fn empty_diff_sets_cluster_together() {
        let ms: Vec<MachineInfo> = (0..4).map(|i| machine(&format!("m{i}"), &[])).collect();
        let refs: Vec<&MachineInfo> = ms.iter().collect();
        for d in [0usize, 3] {
            assert_eq!(qt_cluster_indices(&refs, d), vec![vec![0, 1, 2, 3]]);
        }
    }

    #[test]
    fn matches_reference_on_handcrafted_fleet() {
        let ms = [
            machine("a", &[]),
            machine("b", &["x"]),
            machine("c", &["x", "y"]),
            machine("d", &["y"]),
            machine("e", &["p", "q"]),
            machine("f", &["p"]),
        ];
        let refs: Vec<&MachineInfo> = ms.iter().collect();
        for d in 0..=4 {
            assert_eq!(
                qt_cluster_indices(&refs, d),
                qt_cluster_indices_reference(&refs, d),
                "diameter {d}"
            );
        }
    }

    #[test]
    fn parallel_threshold_path_matches_sequential() {
        // Population large enough to trip PARALLEL_THRESHOLD.
        let ms: Vec<MachineInfo> = (0..(PARALLEL_THRESHOLD + 16))
            .map(|i| {
                machine(
                    &format!("m{i:03}"),
                    &[&format!("g{}", i % 7), &format!("n{}", i % 3)],
                )
            })
            .collect();
        let refs: Vec<&MachineInfo> = ms.iter().collect();
        for d in [0usize, 2, 4] {
            let fast = qt_cluster_indices(&refs, d);
            let seq = qt_cluster_indices_sequential(&refs, d, &Telemetry::noop());
            assert_eq!(fast, seq, "diameter {d}");
            assert_eq!(fast, qt_cluster_indices_reference(&refs, d), "diameter {d}");
        }
    }

    #[test]
    fn merge_sorted_merges() {
        assert_eq!(
            merge_sorted(&["a", "c"], &["b", "d"]),
            vec!["a", "b", "c", "d"]
        );
        assert_eq!(merge_sorted(&[], &["x"]), vec!["x"]);
        assert_eq!(merge_sorted(&["x"], &[]), vec!["x"]);
    }
}
