//! Phase 2: deterministic QT-style diameter-bounded clustering.
//!
//! Content-based fingerprints carry no semantic information, so equality
//! grouping would shatter machines over irrelevant byte differences.
//! Instead, machines within one original cluster are merged greedily:
//! each step performs the merge that minimises the average inter-machine
//! distance of the merged cluster, subject to the merged cluster's
//! *diameter* (maximum pairwise distance) not exceeding the
//! vendor-defined bound `d`. The paper adapts the Quality Threshold (QT)
//! algorithm of Heyer et al. and rejects k-means for its
//! non-determinism; this implementation breaks all ties on input order,
//! making it fully deterministic.

use mirage_telemetry::Telemetry;

use crate::cluster::MachineInfo;

/// Clusters `machines` with diameter bound `diameter`.
///
/// Distance is the Manhattan distance over content-based diff items.
/// Returns groups of indexes into `machines`, each sorted, in
/// deterministic order. `diameter = 0` merges only machines with
/// identical content items.
pub fn qt_cluster_indices(machines: &[&MachineInfo], diameter: usize) -> Vec<Vec<usize>> {
    qt_cluster_indices_instrumented(machines, diameter, &Telemetry::noop())
}

/// [`qt_cluster_indices`] with instrumentation attached.
///
/// Records the `cluster.distance_evals` counter (pairwise fingerprint
/// distance computations) and one `cluster.qt_merges` count per greedy
/// merge iteration. The clustering result is identical to the
/// uninstrumented call.
pub fn qt_cluster_indices_instrumented(
    machines: &[&MachineInfo],
    diameter: usize,
    telemetry: &Telemetry,
) -> Vec<Vec<usize>> {
    let n = machines.len();
    // Pairwise distance matrix (symmetric, zero diagonal).
    let mut dist = vec![vec![0usize; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = machines[i].diff.content_distance(&machines[j].diff);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    if n > 1 {
        telemetry.counter("cluster.distance_evals", (n * (n - 1) / 2) as u64);
    }

    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    loop {
        // Select the merge minimising (average distance, canonical member
        // ids). The canonical tie-break makes the algorithm invariant
        // under input permutation, not merely deterministic.
        let mut best: Option<(f64, Vec<&str>, usize, usize)> = None;
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let merged: Vec<usize> = clusters[a]
                    .iter()
                    .chain(clusters[b].iter())
                    .copied()
                    .collect();
                let mut max_d = 0usize;
                let mut sum = 0usize;
                let mut pairs = 0usize;
                for (x, &i) in merged.iter().enumerate() {
                    for &j in &merged[x + 1..] {
                        max_d = max_d.max(dist[i][j]);
                        sum += dist[i][j];
                        pairs += 1;
                    }
                }
                if max_d > diameter {
                    continue;
                }
                let avg = if pairs == 0 {
                    0.0
                } else {
                    sum as f64 / pairs as f64
                };
                let mut key: Vec<&str> = merged.iter().map(|&i| machines[i].id()).collect();
                key.sort_unstable();
                let better = match &best {
                    None => true,
                    Some((b_avg, b_key, _, _)) => avg < *b_avg || (avg == *b_avg && key < *b_key),
                };
                if better {
                    best = Some((avg, key, a, b));
                }
            }
        }
        match best {
            Some((_, _, a, b)) => {
                telemetry.counter("cluster.qt_merges", 1);
                let merged_b = clusters.remove(b);
                clusters[a].extend(merged_b);
                clusters[a].sort_unstable();
            }
            None => break,
        }
    }
    clusters.sort();
    clusters
}

/// Like [`qt_cluster_indices`], returning machine references.
pub fn qt_cluster<'a>(machines: &[&'a MachineInfo], diameter: usize) -> Vec<Vec<&'a MachineInfo>> {
    qt_cluster_instrumented(machines, diameter, &Telemetry::noop())
}

/// Like [`qt_cluster_indices_instrumented`], returning machine
/// references.
pub fn qt_cluster_instrumented<'a>(
    machines: &[&'a MachineInfo],
    diameter: usize,
    telemetry: &Telemetry,
) -> Vec<Vec<&'a MachineInfo>> {
    qt_cluster_indices_instrumented(machines, diameter, telemetry)
        .into_iter()
        .map(|group| group.into_iter().map(|i| machines[i]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_fingerprint::{DiffSet, Item};

    /// A machine whose content diff is the given set of single-segment
    /// items; distance between machines = symmetric difference size.
    fn machine(id: &str, content: &[&str]) -> MachineInfo {
        let mut diff = DiffSet::empty(id);
        diff.content = content.iter().map(|s| Item::new([*s])).collect();
        MachineInfo::new(diff)
    }

    fn ids(groups: &[Vec<&MachineInfo>]) -> Vec<Vec<String>> {
        groups
            .iter()
            .map(|g| g.iter().map(|m| m.id().to_string()).collect())
            .collect()
    }

    #[test]
    fn zero_diameter_merges_only_identical() {
        let a = machine("a", &["x"]);
        let b = machine("b", &["x"]);
        let c = machine("c", &["y"]);
        let groups = qt_cluster(&[&a, &b, &c], 0);
        assert_eq!(ids(&groups), vec![vec!["a", "b"], vec!["c"]]);
    }

    #[test]
    fn diameter_bounds_merging() {
        // a={}, b={x}, c={x,y}: d(a,b)=1, d(b,c)=1, d(a,c)=2.
        let a = machine("a", &[]);
        let b = machine("b", &["x"]);
        let c = machine("c", &["x", "y"]);
        // d=1: merging all three would give diameter 2 → two clusters.
        let groups = qt_cluster(&[&a, &b, &c], 1);
        assert_eq!(groups.len(), 2);
        // d=2: everything merges.
        let groups = qt_cluster(&[&a, &b, &c], 2);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 3);
    }

    #[test]
    fn closest_pairs_merge_first() {
        // Two tight pairs far apart: {a,b} at distance 0, {c,d} at 2,
        // cross distances large.
        let a = machine("a", &["p"]);
        let b = machine("b", &["p"]);
        let c = machine("c", &["q", "r", "s"]);
        let d = machine("d", &["q", "r", "t"]);
        let groups = qt_cluster(&[&a, &b, &c, &d], 2);
        assert_eq!(ids(&groups), vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn deterministic_regardless_of_tie_structure() {
        // Three mutually equidistant machines (pairwise distance 2).
        let a = machine("a", &["x"]);
        let b = machine("b", &["y"]);
        let c = machine("c", &["z"]);
        let g1 = ids(&qt_cluster(&[&a, &b, &c], 2));
        let g2 = ids(&qt_cluster(&[&a, &b, &c], 2));
        assert_eq!(g1, g2);
        // All merge (diameter 2 allows it).
        assert_eq!(g1.len(), 1);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(qt_cluster(&[], 3).is_empty());
        let a = machine("a", &["x"]);
        let groups = qt_cluster(&[&a], 3);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 1);
    }

    #[test]
    fn large_diameter_merges_everything() {
        let ms: Vec<MachineInfo> = (0..10)
            .map(|i| machine(&format!("m{i}"), &[&format!("item{i}")]))
            .collect();
        let refs: Vec<&MachineInfo> = ms.iter().collect();
        let groups = qt_cluster(&refs, 100);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 10);
    }
}
