//! Clustering data model.

use std::collections::BTreeSet;
use std::fmt;

use mirage_fingerprint::{DiffSet, ItemSet};

/// Identifier of a cluster within one clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub usize);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Per-machine clustering input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineInfo {
    /// The machine's diff set against the vendor reference.
    pub diff: DiffSet,
    /// Installed applications whose environmental resources overlap the
    /// application being upgraded (drives the app-overlap split).
    pub overlapping_apps: BTreeSet<String>,
}

impl MachineInfo {
    /// Creates clustering input with no overlapping applications.
    pub fn new(diff: DiffSet) -> Self {
        MachineInfo {
            diff,
            overlapping_apps: BTreeSet::new(),
        }
    }

    /// Adds an overlapping application.
    pub fn with_app(mut self, app: impl Into<String>) -> Self {
        self.overlapping_apps.insert(app.into());
        self
    }

    /// The machine identifier.
    pub fn id(&self) -> &str {
        &self.diff.machine
    }
}

/// One cluster of deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Cluster identifier.
    pub id: ClusterId,
    /// Member machine ids, sorted.
    pub members: Vec<String>,
    /// The cluster label: the union of members' differing items.
    pub label: ItemSet,
    /// The overlapping-application set shared by all members.
    pub app_set: BTreeSet<String>,
    /// Mean vendor distance of the members (item count).
    pub vendor_distance: f64,
}

impl Cluster {
    /// Number of member machines.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cluster has no members (never produced by
    /// the engine; useful for tests).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Returns `true` if `machine` belongs to this cluster.
    pub fn contains(&self, machine: &str) -> bool {
        self.members.iter().any(|m| m == machine)
    }
}

/// A complete clustering of a machine population.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Clustering {
    /// Clusters, in deterministic order.
    pub clusters: Vec<Cluster>,
}

impl Clustering {
    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` if there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Finds the cluster containing `machine`.
    pub fn cluster_of(&self, machine: &str) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.contains(machine))
    }

    /// Total number of machines across clusters.
    pub fn machine_count(&self) -> usize {
        self.clusters.iter().map(Cluster::len).sum()
    }

    /// Clusters sorted by ascending vendor distance (the Balanced
    /// protocol's deployment order); ties break on cluster id.
    pub fn by_vendor_distance(&self) -> Vec<&Cluster> {
        let mut v: Vec<&Cluster> = self.clusters.iter().collect();
        v.sort_by(|a, b| {
            a.vendor_distance
                .partial_cmp(&b.vendor_distance)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        v
    }

    /// Verifies the partition property: every machine in exactly one
    /// cluster. Returns the machine ids if valid.
    pub fn validate_partition(&self) -> Result<BTreeSet<String>, String> {
        let mut seen = BTreeSet::new();
        for c in &self.clusters {
            if c.is_empty() {
                return Err(format!("cluster {} is empty", c.id));
            }
            for m in &c.members {
                if !seen.insert(m.clone()) {
                    return Err(format!("machine {m} appears in multiple clusters"));
                }
            }
        }
        Ok(seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_fingerprint::Item;

    fn cluster(id: usize, members: &[&str], dist: f64) -> Cluster {
        Cluster {
            id: ClusterId(id),
            members: members.iter().map(|s| s.to_string()).collect(),
            label: [Item::new(["x"])].into_iter().collect(),
            app_set: BTreeSet::new(),
            vendor_distance: dist,
        }
    }

    #[test]
    fn clustering_lookup_and_counts() {
        let clustering = Clustering {
            clusters: vec![cluster(0, &["a", "b"], 2.0), cluster(1, &["c"], 1.0)],
        };
        assert_eq!(clustering.len(), 2);
        assert_eq!(clustering.machine_count(), 3);
        assert_eq!(clustering.cluster_of("b").unwrap().id, ClusterId(0));
        assert!(clustering.cluster_of("z").is_none());
        let ordered = clustering.by_vendor_distance();
        assert_eq!(ordered[0].id, ClusterId(1));
    }

    #[test]
    fn partition_validation() {
        let good = Clustering {
            clusters: vec![cluster(0, &["a"], 0.0), cluster(1, &["b"], 0.0)],
        };
        assert_eq!(good.validate_partition().unwrap().len(), 2);
        let dup = Clustering {
            clusters: vec![cluster(0, &["a"], 0.0), cluster(1, &["a"], 0.0)],
        };
        assert!(dup.validate_partition().is_err());
        let empty = Clustering {
            clusters: vec![cluster(0, &[], 0.0)],
        };
        assert!(empty.validate_partition().is_err());
    }

    #[test]
    fn machine_info_builder() {
        let info = MachineInfo::new(DiffSet::empty("m1")).with_app("php");
        assert_eq!(info.id(), "m1");
        assert!(info.overlapping_apps.contains("php"));
    }
}
