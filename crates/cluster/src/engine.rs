//! The full clustering pipeline.

use std::collections::BTreeSet;

use mirage_fingerprint::{ImportanceFilter, ItemSet};
use mirage_telemetry::Telemetry;

use crate::cluster::{Cluster, ClusterId, Clustering, MachineInfo};
use crate::phase1::original_clusters;
use crate::qt::qt_cluster_instrumented;
use crate::split::split_by_app_set;

/// Configuration and entry point for clustering a machine population.
///
/// # Examples
///
/// ```
/// use mirage_cluster::{ClusterEngine, MachineInfo};
/// use mirage_fingerprint::{DiffSet, Item};
///
/// let mut a = DiffSet::empty("a");
/// let b = DiffSet::empty("b");
/// a.parsed.insert(Item::new(["/lib/libc.so", "lib", "2.4", "ff"]));
/// let machines = vec![MachineInfo::new(a), MachineInfo::new(b)];
/// let clustering = ClusterEngine::new(3).cluster(&machines);
/// assert_eq!(clustering.len(), 2); // different parsed diffs → separate
/// ```
#[derive(Debug, Clone)]
pub struct ClusterEngine {
    /// Phase-2 diameter bound `d`.
    pub diameter: usize,
    /// Vendor importance filter applied to diff sets before clustering.
    pub importance: ImportanceFilter,
    /// Telemetry handle (no-op by default).
    pub telemetry: Telemetry,
}

impl ClusterEngine {
    /// Creates an engine with the given diameter and no importance filter.
    pub fn new(diameter: usize) -> Self {
        ClusterEngine {
            diameter,
            importance: ImportanceFilter::new(),
            telemetry: Telemetry::noop(),
        }
    }

    /// Sets the importance filter.
    pub fn with_importance(mut self, filter: ImportanceFilter) -> Self {
        self.importance = filter;
        self
    }

    /// Attaches a telemetry handle timing each pipeline phase and
    /// counting distance evaluations and QT merges.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Runs the full pipeline: importance filtering → phase 1 → phase 2 →
    /// app-overlap split → labelling.
    pub fn cluster(&self, machines: &[MachineInfo]) -> Clustering {
        let _pipeline = self.telemetry.span("cluster.pipeline");
        self.telemetry
            .counter("cluster.machines_in", machines.len() as u64);

        // Apply the vendor's importance directives up front. An identity
        // filter is short-circuited entirely: the pipeline then borrows
        // the caller's machines instead of copying every diff set and
        // overlapping-app set (the common no-directives case used to
        // clone the whole population). The `cluster.importance_filtered`
        // counter is only emitted when the copying branch runs, which is
        // what the engine tests assert on.
        let filtered: Option<Vec<MachineInfo>> = {
            let _span = self.telemetry.span("importance");
            if self.importance.is_identity() {
                None
            } else {
                self.telemetry
                    .counter("cluster.importance_filtered", machines.len() as u64);
                Some(
                    machines
                        .iter()
                        .map(|m| MachineInfo {
                            diff: self.importance.apply(&m.diff),
                            overlapping_apps: m.overlapping_apps.clone(),
                        })
                        .collect(),
                )
            }
        };
        let refs: Vec<&MachineInfo> = match &filtered {
            Some(filtered) => filtered.iter().collect(),
            None => machines.iter().collect(),
        };

        let originals = {
            let _span = self.telemetry.span("phase1");
            original_clusters(&refs)
        };

        let mut final_groups: Vec<Vec<&MachineInfo>> = Vec::new();
        {
            let _span = self.telemetry.span("phase2");
            for original in originals {
                for sub in qt_cluster_instrumented(&original, self.diameter, &self.telemetry) {
                    for split in split_by_app_set(&sub) {
                        final_groups.push(split);
                    }
                }
            }
        }

        let _span = self.telemetry.span("label");
        self.telemetry
            .counter("cluster.clusters_out", final_groups.len() as u64);
        let clusters = final_groups
            .into_iter()
            .enumerate()
            .map(|(i, group)| {
                let mut members: Vec<String> = group.iter().map(|m| m.id().to_string()).collect();
                members.sort();
                let label: ItemSet = group
                    .iter()
                    .flat_map(|m| m.diff.all_items().into_iter())
                    .collect();
                let app_set: BTreeSet<String> = group
                    .first()
                    .map(|m| m.overlapping_apps.clone())
                    .unwrap_or_default();
                let vendor_distance = if group.is_empty() {
                    0.0
                } else {
                    group
                        .iter()
                        .map(|m| m.diff.vendor_distance())
                        .sum::<usize>() as f64
                        / group.len() as f64
                };
                Cluster {
                    id: ClusterId(i),
                    members,
                    label,
                    app_set,
                    vendor_distance,
                }
            })
            .collect();
        Clustering { clusters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_fingerprint::{DiffSet, Item};

    fn machine(id: &str, parsed: &[&str], content: &[&str], apps: &[&str]) -> MachineInfo {
        let mut diff = DiffSet::empty(id);
        diff.parsed = parsed.iter().map(|s| Item::new([*s])).collect();
        diff.content = content.iter().map(|s| Item::new([*s])).collect();
        let mut info = MachineInfo::new(diff);
        info.overlapping_apps = apps.iter().map(|s| s.to_string()).collect();
        info
    }

    #[test]
    fn pipeline_composes_phases() {
        let machines = vec![
            machine("base1", &[], &[], &[]),
            machine("base2", &[], &[], &[]),
            machine("cfg", &[], &["my.cnf-chunk"], &[]),
            machine("libc", &["libc-2.4"], &[], &[]),
            machine("php", &[], &[], &["php"]),
        ];
        // Diameter 0: cfg splits from base; php splits by app set; libc by
        // phase 1.
        let clustering = ClusterEngine::new(0).cluster(&machines);
        assert_eq!(clustering.len(), 4);
        let base = clustering.cluster_of("base1").unwrap();
        assert!(base.contains("base2"));
        assert!(!base.contains("cfg"));
        assert!(!base.contains("php"));
        clustering.validate_partition().unwrap();

        // Diameter 1 merges cfg into base (distance 1), php still split.
        let clustering = ClusterEngine::new(1).cluster(&machines);
        assert_eq!(clustering.len(), 3);
        assert!(clustering.cluster_of("base1").unwrap().contains("cfg"));
    }

    #[test]
    fn importance_filter_merges_phase1_clusters() {
        let machines = vec![
            machine("a", &["libc-build-x"], &[], &[]),
            machine("b", &["libc-build-y"], &[], &[]),
        ];
        let separate = ClusterEngine::new(0).cluster(&machines);
        assert_eq!(separate.len(), 2);
        let merged = ClusterEngine::new(0)
            .with_importance(
                ImportanceFilter::new()
                    .drop_prefix(["libc-build-x"])
                    .drop_prefix(["libc-build-y"]),
            )
            .cluster(&machines);
        assert_eq!(merged.len(), 1);
    }

    #[test]
    fn labels_and_distances() {
        let machines = vec![
            machine("near", &[], &[], &[]),
            machine("far", &["p1", "p2"], &["c1"], &[]),
        ];
        let clustering = ClusterEngine::new(0).cluster(&machines);
        let near = clustering.cluster_of("near").unwrap();
        let far = clustering.cluster_of("far").unwrap();
        assert_eq!(near.vendor_distance, 0.0);
        assert_eq!(far.vendor_distance, 3.0);
        assert_eq!(far.label.len(), 3);
        let ordered = clustering.by_vendor_distance();
        assert_eq!(ordered[0].members, vec!["near"]);
    }

    #[test]
    fn identity_filter_skips_the_copying_pass() {
        use std::sync::Arc;

        use mirage_telemetry::{Registry, Telemetry};

        let machines = vec![
            machine("a", &["p"], &["c"], &["php"]),
            machine("b", &["p"], &[], &[]),
        ];

        // No directives: the filtering copy must not run (the counter
        // only exists inside the copying branch) and the clustering is
        // unchanged.
        let registry = Arc::new(Registry::new(64));
        let identity = ClusterEngine::new(1)
            .with_telemetry(Telemetry::from_registry(Arc::clone(&registry)))
            .cluster(&machines);
        let snap = registry.snapshot();
        assert!(!snap.counters.contains_key("cluster.importance_filtered"));
        // The importance span still brackets the (skipped) phase.
        assert_eq!(snap.spans["cluster.pipeline/importance"].count, 1);
        assert_eq!(identity, ClusterEngine::new(1).cluster(&machines));

        // A real directive takes the copying branch and counts every
        // machine exactly once.
        let registry = Arc::new(Registry::new(64));
        ClusterEngine::new(1)
            .with_importance(ImportanceFilter::new().drop_prefix(["p"]))
            .with_telemetry(Telemetry::from_registry(Arc::clone(&registry)))
            .cluster(&machines);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["cluster.importance_filtered"], 2);
    }

    #[test]
    fn empty_population() {
        let clustering = ClusterEngine::new(3).cluster(&[]);
        assert!(clustering.is_empty());
        assert_eq!(clustering.machine_count(), 0);
    }

    #[test]
    fn telemetry_records_phases_and_counters() {
        use std::sync::Arc;

        use mirage_telemetry::{Registry, Telemetry};

        let machines = vec![
            machine("base1", &[], &[], &[]),
            machine("base2", &[], &[], &[]),
            machine("cfg", &[], &["my.cnf-chunk"], &[]),
        ];
        let registry = Arc::new(Registry::new(64));
        let instrumented = ClusterEngine::new(1)
            .with_telemetry(Telemetry::from_registry(Arc::clone(&registry)))
            .cluster(&machines);
        // Instrumentation must not change the clustering.
        let plain = ClusterEngine::new(1).cluster(&machines);
        assert_eq!(instrumented.len(), plain.len());

        let snap = registry.snapshot();
        assert_eq!(snap.counters["cluster.machines_in"], 3);
        assert_eq!(
            snap.counters["cluster.clusters_out"],
            instrumented.len() as u64
        );
        // base1/base2/cfg form one phase-1 cluster: 3 pairwise distances.
        assert_eq!(snap.counters["cluster.distance_evals"], 3);
        assert!(snap.counters["cluster.qt_merges"] >= 1);
        // The engine had no importance directives, so the filtering copy
        // must have been skipped entirely.
        assert!(!snap.counters.contains_key("cluster.importance_filtered"));
        for span in [
            "cluster.pipeline",
            "cluster.pipeline/importance",
            "cluster.pipeline/phase1",
            "cluster.pipeline/phase2",
            "cluster.pipeline/label",
        ] {
            assert_eq!(snap.spans[span].count, 1, "missing span {span}");
        }
    }
}
