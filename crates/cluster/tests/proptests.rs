//! Randomised property tests for the clustering pipeline.
//!
//! Populations are generated with a seeded xorshift generator, so every
//! run exercises the same cases deterministically and offline.

use std::collections::BTreeSet;

use mirage_cluster::{ClusterEngine, MachineInfo};
use mirage_fingerprint::{DiffSet, Item};

/// Deterministic xorshift64 generator for test populations.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A machine with a random small parsed/content diff and an optional
/// overlapping-app marker. Parsed items come from `a..=d`, content
/// items from `w..=z`.
fn random_machine(rng: &mut Rng, id: usize) -> MachineInfo {
    let mut diff = DiffSet::empty(format!("m{id}"));
    let parsed_letters = ["a", "b", "c", "d"];
    let content_letters = ["w", "x", "y", "z"];
    for _ in 0..rng.below(4) {
        diff.parsed
            .insert(Item::new([parsed_letters[rng.below(4)]]));
    }
    for _ in 0..rng.below(4) {
        diff.content
            .insert(Item::new([content_letters[rng.below(4)]]));
    }
    let mut info = MachineInfo::new(diff);
    if rng.below(2) == 0 {
        info.overlapping_apps.insert("php".into());
    }
    info
}

fn population(rng: &mut Rng, n: usize) -> Vec<MachineInfo> {
    (0..n).map(|i| random_machine(rng, i)).collect()
}

/// Every machine lands in exactly one cluster.
#[test]
fn clustering_is_a_partition() {
    let mut rng = Rng::new(0xc1);
    for case in 0..48 {
        let machines = population(&mut rng, 12);
        let d = rng.below(6);
        let clustering = ClusterEngine::new(d).cluster(&machines);
        let seen = clustering.validate_partition().expect("partition");
        assert_eq!(seen.len(), machines.len(), "case {case}");
        assert_eq!(clustering.machine_count(), machines.len(), "case {case}");
    }
}

/// The diameter bound holds: no two members of a cluster are farther
/// apart (content distance) than `d`.
#[test]
fn diameter_bound_holds() {
    let mut rng = Rng::new(0xc2);
    for case in 0..48 {
        let machines = population(&mut rng, 10);
        let d = rng.below(6);
        let clustering = ClusterEngine::new(d).cluster(&machines);
        let by_id = |id: &str| machines.iter().find(|m| m.id() == id).unwrap();
        for c in &clustering.clusters {
            for a in &c.members {
                for b in &c.members {
                    let da = by_id(a);
                    let db = by_id(b);
                    assert!(
                        da.diff.content_distance(&db.diff) <= d,
                        "case {case}: {a} and {b} violate diameter {d}"
                    );
                }
            }
        }
    }
}

/// Members of one cluster share parsed diffs and app sets exactly.
#[test]
fn cluster_members_agree_on_parsed_and_apps() {
    let mut rng = Rng::new(0xc3);
    for case in 0..48 {
        let machines = population(&mut rng, 10);
        let d = rng.below(6);
        let clustering = ClusterEngine::new(d).cluster(&machines);
        let by_id = |id: &str| machines.iter().find(|m| m.id() == id).unwrap();
        for c in &clustering.clusters {
            let first = by_id(&c.members[0]);
            for m in &c.members[1..] {
                let other = by_id(m);
                assert_eq!(&first.diff.parsed, &other.diff.parsed, "case {case}");
                assert_eq!(
                    &first.overlapping_apps, &other.overlapping_apps,
                    "case {case}"
                );
            }
        }
    }
}

/// Clustering is invariant under input permutation (same member sets).
#[test]
fn deterministic_under_permutation() {
    let mut rng = Rng::new(0xc4);
    for case in 0..48 {
        let machines = population(&mut rng, 8);
        let d = rng.below(5);
        let a = ClusterEngine::new(d).cluster(&machines);
        let mut reversed = machines.clone();
        reversed.reverse();
        let b = ClusterEngine::new(d).cluster(&reversed);
        let sets = |c: &mirage_cluster::Clustering| -> BTreeSet<Vec<String>> {
            c.clusters.iter().map(|cl| cl.members.clone()).collect()
        };
        assert_eq!(sets(&a), sets(&b), "case {case}");
    }
}

/// Diameter 0 yields clusters of machines with identical diffs.
#[test]
fn zero_diameter_is_equality_grouping() {
    let mut rng = Rng::new(0xc5);
    for case in 0..48 {
        let machines = population(&mut rng, 10);
        let clustering = ClusterEngine::new(0).cluster(&machines);
        let by_id = |id: &str| machines.iter().find(|m| m.id() == id).unwrap();
        for c in &clustering.clusters {
            let first = by_id(&c.members[0]);
            for m in &c.members[1..] {
                let other = by_id(m);
                assert_eq!(&first.diff.content, &other.diff.content, "case {case}");
            }
        }
    }
}

/// With an unbounded diameter, phase 2 never splits an original
/// cluster: cluster count is determined by parsed diffs and app sets
/// alone.
#[test]
fn huge_diameter_collapses_phase2() {
    let mut rng = Rng::new(0xc6);
    for case in 0..48 {
        let machines = population(&mut rng, 10);
        let clustering = ClusterEngine::new(10_000).cluster(&machines);
        let mut keys = BTreeSet::new();
        for m in &machines {
            keys.insert((m.diff.parsed.clone(), m.overlapping_apps.clone()));
        }
        assert_eq!(clustering.len(), keys.len(), "case {case}");
    }
}

/// A permutation of `machines` driven by the seeded generator
/// (Fisher–Yates).
fn shuffled(rng: &mut Rng, machines: &[MachineInfo]) -> Vec<MachineInfo> {
    let mut out = machines.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.below(i + 1);
        out.swap(i, j);
    }
    out
}

/// The fast QT path (interned kernel + incremental merge aggregates +
/// parallel matrix) is bit-identical — same groups, same member order,
/// same group order — to the retained naive reference implementation,
/// across random fleets, diameters 0–8, and permuted input orders.
#[test]
fn qt_fast_path_matches_reference() {
    use mirage_cluster::{qt_cluster_indices, qt_cluster_indices_reference};

    let mut rng = Rng::new(0xd1);
    for case in 0..32 {
        let machines = population(&mut rng, 14);
        for variant in 0..3 {
            let input = if variant == 0 {
                machines.clone()
            } else {
                shuffled(&mut rng, &machines)
            };
            let refs: Vec<&MachineInfo> = input.iter().collect();
            for d in 0..=8usize {
                let fast = qt_cluster_indices(&refs, d);
                let naive = qt_cluster_indices_reference(&refs, d);
                assert_eq!(fast, naive, "case {case} variant {variant} diameter {d}");
            }
        }
    }
}

/// The full engine pipeline built on the fast QT path produces a
/// bit-identical `Clustering` — ids, members, labels, app sets, vendor
/// distances — to the same pipeline built on the reference QT loop.
#[test]
fn engine_matches_reference_pipeline_exactly() {
    use std::collections::BTreeSet as Set;

    use mirage_cluster::phase1::original_clusters;
    use mirage_cluster::qt_cluster_indices_reference;
    use mirage_cluster::split::split_by_app_set;
    use mirage_cluster::{Cluster, ClusterId, Clustering};
    use mirage_fingerprint::ItemSet;

    // Mirrors `ClusterEngine::cluster` with the reference QT loop.
    fn reference_clustering(machines: &[MachineInfo], diameter: usize) -> Clustering {
        let refs: Vec<&MachineInfo> = machines.iter().collect();
        let mut final_groups: Vec<Vec<&MachineInfo>> = Vec::new();
        for original in original_clusters(&refs) {
            for idx_group in qt_cluster_indices_reference(&original, diameter) {
                let sub: Vec<&MachineInfo> = idx_group.into_iter().map(|i| original[i]).collect();
                for split in split_by_app_set(&sub) {
                    final_groups.push(split);
                }
            }
        }
        let clusters = final_groups
            .into_iter()
            .enumerate()
            .map(|(i, group)| {
                let mut members: Vec<String> = group.iter().map(|m| m.id().to_string()).collect();
                members.sort();
                let label: ItemSet = group
                    .iter()
                    .flat_map(|m| m.diff.all_items().into_iter())
                    .collect();
                let app_set: Set<String> = group
                    .first()
                    .map(|m| m.overlapping_apps.clone())
                    .unwrap_or_default();
                let vendor_distance = if group.is_empty() {
                    0.0
                } else {
                    group
                        .iter()
                        .map(|m| m.diff.vendor_distance())
                        .sum::<usize>() as f64
                        / group.len() as f64
                };
                Cluster {
                    id: ClusterId(i),
                    members,
                    label,
                    app_set,
                    vendor_distance,
                }
            })
            .collect();
        Clustering { clusters }
    }

    let mut rng = Rng::new(0xd2);
    for case in 0..24 {
        let machines = population(&mut rng, 12);
        let permuted = shuffled(&mut rng, &machines);
        for d in 0..=6usize {
            for (name, input) in [("input order", &machines), ("permuted", &permuted)] {
                let fast = ClusterEngine::new(d).cluster(input);
                let reference = reference_clustering(input, d);
                assert_eq!(fast, reference, "case {case} {name} diameter {d}");
            }
        }
    }
}

/// Instrumented-vs-plain determinism for clustering (the sim crate's
/// pattern): on a population large enough to engage the parallel
/// distance matrix, the parallel/instrumented engine produces a
/// bit-identical `Clustering` to the plain engine, and the same
/// `cluster.qt_merges` count as the forced-sequential QT path.
#[test]
fn instrumented_parallel_clustering_is_bit_identical() {
    use std::sync::Arc;

    use mirage_cluster::qt::qt_cluster_indices_sequential;
    use mirage_telemetry::{Registry, Telemetry};

    let mut rng = Rng::new(0xd3);
    // One phase-1 group of 96 machines (> the parallel threshold): all
    // parsed diffs empty, content diffs random.
    let machines: Vec<MachineInfo> = (0..96)
        .map(|i| {
            let mut diff = mirage_fingerprint::DiffSet::empty(format!("m{i:03}"));
            let content_letters = ["u", "v", "w", "x", "y", "z"];
            for _ in 0..rng.below(5) {
                diff.content
                    .insert(Item::new([content_letters[rng.below(6)]]));
            }
            MachineInfo::new(diff)
        })
        .collect();

    for d in [0usize, 2, 4] {
        let registry = Arc::new(Registry::new(256));
        let instrumented = ClusterEngine::new(d)
            .with_telemetry(Telemetry::from_registry(Arc::clone(&registry)))
            .cluster(&machines);
        let plain = ClusterEngine::new(d).cluster(&machines);
        assert_eq!(
            instrumented, plain,
            "diameter {d} diverged under instrumentation"
        );
        let parallel_snap = registry.snapshot();

        // Forced-sequential QT over the same (single) phase-1 group.
        let refs: Vec<&MachineInfo> = machines.iter().collect();
        let seq_registry = Arc::new(Registry::new(256));
        let seq_groups = qt_cluster_indices_sequential(
            &refs,
            d,
            &Telemetry::from_registry(Arc::clone(&seq_registry)),
        );
        let seq_snap = seq_registry.snapshot();
        assert_eq!(
            parallel_snap.counters.get("cluster.qt_merges"),
            seq_snap.counters.get("cluster.qt_merges"),
            "diameter {d}: merge counts diverged between parallel and sequential"
        );
        assert_eq!(
            parallel_snap.counters.get("cluster.distance_evals"),
            seq_snap.counters.get("cluster.distance_evals"),
            "diameter {d}: distance telemetry diverged"
        );
        // And the sequential groups are the groups the engine labelled.
        let seq_ids: Vec<Vec<String>> = seq_groups
            .iter()
            .map(|g| g.iter().map(|&i| machines[i].id().to_string()).collect())
            .collect();
        let mut engine_ids: Vec<Vec<String>> = instrumented
            .clusters
            .iter()
            .map(|c| c.members.clone())
            .collect();
        engine_ids.sort();
        let mut seq_sorted = seq_ids.clone();
        seq_sorted.sort();
        assert_eq!(engine_ids, seq_sorted, "diameter {d}");
    }
}
