//! Property-based tests for the clustering pipeline.

use std::collections::BTreeSet;

use proptest::prelude::*;

use mirage_cluster::{ClusterEngine, MachineInfo};
use mirage_fingerprint::{DiffSet, Item};

/// Strategy: a machine with a random small parsed/content diff and an
/// optional overlapping-app marker.
fn machine_strategy(id: usize) -> impl Strategy<Value = MachineInfo> {
    (
        proptest::collection::btree_set("[a-d]", 0..4),
        proptest::collection::btree_set("[w-z]", 0..4),
        proptest::bool::ANY,
    )
        .prop_map(move |(parsed, content, has_php)| {
            let mut diff = DiffSet::empty(format!("m{id}"));
            diff.parsed = parsed.iter().map(|s| Item::new([s.as_str()])).collect();
            diff.content = content.iter().map(|s| Item::new([s.as_str()])).collect();
            let mut info = MachineInfo::new(diff);
            if has_php {
                info.overlapping_apps.insert("php".into());
            }
            info
        })
}

fn population(n: usize) -> impl Strategy<Value = Vec<MachineInfo>> {
    (0..n)
        .map(machine_strategy)
        .collect::<Vec<_>>()
        .prop_map(|v| v)
}

proptest! {
    /// Every machine lands in exactly one cluster.
    #[test]
    fn clustering_is_a_partition(machines in population(12), d in 0usize..6) {
        let clustering = ClusterEngine::new(d).cluster(&machines);
        let seen = clustering.validate_partition().expect("partition");
        prop_assert_eq!(seen.len(), machines.len());
        prop_assert_eq!(clustering.machine_count(), machines.len());
    }

    /// The diameter bound holds: no two members of a cluster are farther
    /// apart (content distance) than `d`.
    #[test]
    fn diameter_bound_holds(machines in population(10), d in 0usize..6) {
        let clustering = ClusterEngine::new(d).cluster(&machines);
        let by_id = |id: &str| machines.iter().find(|m| m.id() == id).unwrap();
        for c in &clustering.clusters {
            for a in &c.members {
                for b in &c.members {
                    let da = by_id(a);
                    let db = by_id(b);
                    prop_assert!(da.diff.content_distance(&db.diff) <= d);
                }
            }
        }
    }

    /// Members of one cluster share parsed diffs and app sets exactly.
    #[test]
    fn cluster_members_agree_on_parsed_and_apps(machines in population(10), d in 0usize..6) {
        let clustering = ClusterEngine::new(d).cluster(&machines);
        let by_id = |id: &str| machines.iter().find(|m| m.id() == id).unwrap();
        for c in &clustering.clusters {
            let first = by_id(&c.members[0]);
            for m in &c.members[1..] {
                let other = by_id(m);
                prop_assert_eq!(&first.diff.parsed, &other.diff.parsed);
                prop_assert_eq!(&first.overlapping_apps, &other.overlapping_apps);
            }
        }
    }

    /// Clustering is invariant under input permutation (same member sets).
    #[test]
    fn deterministic_under_permutation(machines in population(8), d in 0usize..5) {
        let a = ClusterEngine::new(d).cluster(&machines);
        let mut reversed = machines.clone();
        reversed.reverse();
        let b = ClusterEngine::new(d).cluster(&reversed);
        let sets = |c: &mirage_cluster::Clustering| -> BTreeSet<Vec<String>> {
            c.clusters.iter().map(|cl| cl.members.clone()).collect()
        };
        prop_assert_eq!(sets(&a), sets(&b));
    }

    /// Diameter 0 yields clusters of machines with identical diffs.
    #[test]
    fn zero_diameter_is_equality_grouping(machines in population(10)) {
        let clustering = ClusterEngine::new(0).cluster(&machines);
        let by_id = |id: &str| machines.iter().find(|m| m.id() == id).unwrap();
        for c in &clustering.clusters {
            let first = by_id(&c.members[0]);
            for m in &c.members[1..] {
                let other = by_id(m);
                prop_assert_eq!(&first.diff.content, &other.diff.content);
            }
        }
    }

    /// With an unbounded diameter, phase 2 never splits an original
    /// cluster: cluster count is determined by parsed diffs and app sets
    /// alone.
    #[test]
    fn huge_diameter_collapses_phase2(machines in population(10)) {
        let clustering = ClusterEngine::new(10_000).cluster(&machines);
        let mut keys = BTreeSet::new();
        for m in &machines {
            keys.insert((m.diff.parsed.clone(), m.overlapping_apps.clone()));
        }
        prop_assert_eq!(clustering.len(), keys.len());
    }
}
