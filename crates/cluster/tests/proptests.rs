//! Randomised property tests for the clustering pipeline.
//!
//! Populations are generated with a seeded xorshift generator, so every
//! run exercises the same cases deterministically and offline.

use std::collections::BTreeSet;

use mirage_cluster::{ClusterEngine, MachineInfo};
use mirage_fingerprint::{DiffSet, Item};

/// Deterministic xorshift64 generator for test populations.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A machine with a random small parsed/content diff and an optional
/// overlapping-app marker. Parsed items come from `a..=d`, content
/// items from `w..=z`.
fn random_machine(rng: &mut Rng, id: usize) -> MachineInfo {
    let mut diff = DiffSet::empty(format!("m{id}"));
    let parsed_letters = ["a", "b", "c", "d"];
    let content_letters = ["w", "x", "y", "z"];
    for _ in 0..rng.below(4) {
        diff.parsed
            .insert(Item::new([parsed_letters[rng.below(4)]]));
    }
    for _ in 0..rng.below(4) {
        diff.content
            .insert(Item::new([content_letters[rng.below(4)]]));
    }
    let mut info = MachineInfo::new(diff);
    if rng.below(2) == 0 {
        info.overlapping_apps.insert("php".into());
    }
    info
}

fn population(rng: &mut Rng, n: usize) -> Vec<MachineInfo> {
    (0..n).map(|i| random_machine(rng, i)).collect()
}

/// Every machine lands in exactly one cluster.
#[test]
fn clustering_is_a_partition() {
    let mut rng = Rng::new(0xc1);
    for case in 0..48 {
        let machines = population(&mut rng, 12);
        let d = rng.below(6);
        let clustering = ClusterEngine::new(d).cluster(&machines);
        let seen = clustering.validate_partition().expect("partition");
        assert_eq!(seen.len(), machines.len(), "case {case}");
        assert_eq!(clustering.machine_count(), machines.len(), "case {case}");
    }
}

/// The diameter bound holds: no two members of a cluster are farther
/// apart (content distance) than `d`.
#[test]
fn diameter_bound_holds() {
    let mut rng = Rng::new(0xc2);
    for case in 0..48 {
        let machines = population(&mut rng, 10);
        let d = rng.below(6);
        let clustering = ClusterEngine::new(d).cluster(&machines);
        let by_id = |id: &str| machines.iter().find(|m| m.id() == id).unwrap();
        for c in &clustering.clusters {
            for a in &c.members {
                for b in &c.members {
                    let da = by_id(a);
                    let db = by_id(b);
                    assert!(
                        da.diff.content_distance(&db.diff) <= d,
                        "case {case}: {a} and {b} violate diameter {d}"
                    );
                }
            }
        }
    }
}

/// Members of one cluster share parsed diffs and app sets exactly.
#[test]
fn cluster_members_agree_on_parsed_and_apps() {
    let mut rng = Rng::new(0xc3);
    for case in 0..48 {
        let machines = population(&mut rng, 10);
        let d = rng.below(6);
        let clustering = ClusterEngine::new(d).cluster(&machines);
        let by_id = |id: &str| machines.iter().find(|m| m.id() == id).unwrap();
        for c in &clustering.clusters {
            let first = by_id(&c.members[0]);
            for m in &c.members[1..] {
                let other = by_id(m);
                assert_eq!(&first.diff.parsed, &other.diff.parsed, "case {case}");
                assert_eq!(
                    &first.overlapping_apps, &other.overlapping_apps,
                    "case {case}"
                );
            }
        }
    }
}

/// Clustering is invariant under input permutation (same member sets).
#[test]
fn deterministic_under_permutation() {
    let mut rng = Rng::new(0xc4);
    for case in 0..48 {
        let machines = population(&mut rng, 8);
        let d = rng.below(5);
        let a = ClusterEngine::new(d).cluster(&machines);
        let mut reversed = machines.clone();
        reversed.reverse();
        let b = ClusterEngine::new(d).cluster(&reversed);
        let sets = |c: &mirage_cluster::Clustering| -> BTreeSet<Vec<String>> {
            c.clusters.iter().map(|cl| cl.members.clone()).collect()
        };
        assert_eq!(sets(&a), sets(&b), "case {case}");
    }
}

/// Diameter 0 yields clusters of machines with identical diffs.
#[test]
fn zero_diameter_is_equality_grouping() {
    let mut rng = Rng::new(0xc5);
    for case in 0..48 {
        let machines = population(&mut rng, 10);
        let clustering = ClusterEngine::new(0).cluster(&machines);
        let by_id = |id: &str| machines.iter().find(|m| m.id() == id).unwrap();
        for c in &clustering.clusters {
            let first = by_id(&c.members[0]);
            for m in &c.members[1..] {
                let other = by_id(m);
                assert_eq!(&first.diff.content, &other.diff.content, "case {case}");
            }
        }
    }
}

/// With an unbounded diameter, phase 2 never splits an original
/// cluster: cluster count is determined by parsed diffs and app sets
/// alone.
#[test]
fn huge_diameter_collapses_phase2() {
    let mut rng = Rng::new(0xc6);
    for case in 0..48 {
        let machines = population(&mut rng, 10);
        let clustering = ClusterEngine::new(10_000).cluster(&machines);
        let mut keys = BTreeSet::new();
        for m in &machines {
            keys.insert((m.diff.parsed.clone(), m.overlapping_apps.clone()));
        }
        assert_eq!(clustering.len(), keys.len(), "case {case}");
    }
}
