//! Randomised equivalence properties for the batch drift engine.
//!
//! The contract under test: [`DriftEngine::recluster_batch`] over the
//! dense interned plane is **bit-identical** to the retained reference
//! plane ([`drift_reference`] looping `recluster_one` over a fresh
//! pool and full clones) — same membership, same cluster order, same
//! ids, same labels, same derived fields, and the same published
//! `cluster.drift_*` counters — across seeded multi-batch streams of
//! install / uninstall / config-edit / app-set deltas.

use std::collections::BTreeMap;
use std::sync::Arc;

use mirage_cluster::{
    clustering_from_groups, drift_reference, ClusterEngine, DriftEngine, DriftOp, DriftStats,
    MachineDelta, MachineInfo,
};
use mirage_fingerprint::{DiffSet, Item};
use mirage_telemetry::{Registry, Telemetry};

/// Deterministic xorshift64 generator for test populations.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

const PARSED_LETTERS: [&str; 4] = ["a", "b", "c", "d"];
const CONTENT_LETTERS: [&str; 5] = ["v", "w", "x", "y", "z"];
const APPS: [&str; 3] = ["php", "mysql", "rails"];

fn random_machine(rng: &mut Rng, id: usize) -> MachineInfo {
    let mut diff = DiffSet::empty(format!("m{id:03}"));
    for _ in 0..rng.below(3) {
        diff.parsed
            .insert(Item::new([PARSED_LETTERS[rng.below(4)]]));
    }
    for _ in 0..rng.below(4) {
        diff.content
            .insert(Item::new([CONTENT_LETTERS[rng.below(5)]]));
    }
    let mut info = MachineInfo::new(diff);
    if rng.below(2) == 0 {
        info.overlapping_apps.insert(APPS[rng.below(2)].into());
    }
    info
}

/// A random drift op over the same small alphabets the populations use,
/// so moves, adoptions, refounds, and genuine no-ops all occur.
fn random_op(rng: &mut Rng) -> DriftOp {
    let pick_items = |rng: &mut Rng, letters: &[&str], max: usize| -> Vec<Item> {
        (0..rng.below(max + 1))
            .map(|_| Item::new([letters[rng.below(letters.len())]]))
            .collect()
    };
    match rng.below(4) {
        0 => DriftOp::Install {
            parsed: pick_items(rng, &PARSED_LETTERS, 2),
            content: pick_items(rng, &CONTENT_LETTERS, 2),
        },
        1 => DriftOp::Uninstall {
            parsed: pick_items(rng, &PARSED_LETTERS, 2),
            content: pick_items(rng, &CONTENT_LETTERS, 2),
        },
        2 => DriftOp::ConfigEdit {
            add: pick_items(rng, &CONTENT_LETTERS, 2),
            remove: pick_items(rng, &CONTENT_LETTERS, 2),
        },
        _ => {
            let pick_apps = |rng: &mut Rng, max: usize| -> Vec<String> {
                (0..rng.below(max + 1))
                    .map(|_| APPS[rng.below(APPS.len())].to_string())
                    .collect()
            };
            DriftOp::Apps {
                add: pick_apps(rng, 1),
                remove: pick_apps(rng, 1),
            }
        }
    }
}

fn random_batch(rng: &mut Rng, machines: &[MachineInfo], len: usize) -> Vec<MachineDelta> {
    (0..len)
        .map(|_| MachineDelta {
            machine: machines[rng.below(machines.len())].id().to_string(),
            op: random_op(rng),
        })
        .collect()
}

fn drift_counters(registry: &Registry) -> BTreeMap<String, u64> {
    registry
        .snapshot()
        .counters
        .into_iter()
        .filter(|(k, _)| k.starts_with("cluster.drift_"))
        .collect()
}

/// 24+ seeded multi-batch drift streams through both planes: after
/// every batch the engine's clustering (with cohesion off *and* on)
/// equals the reference's bit-for-bit, per-batch stats agree, internal
/// invariants re-derive, and the telemetry registries publish identical
/// `cluster.drift_*` counters.
#[test]
fn batch_engine_matches_reference_on_random_streams() {
    let mut rng = Rng::new(0xd7);
    for case in 0..24 {
        let machines: Vec<MachineInfo> = (0..12 + rng.below(8))
            .map(|i| random_machine(&mut rng, i))
            .collect();
        let diameter = rng.below(5);
        let clustering = ClusterEngine::new(diameter).cluster(&machines);

        let ref_registry = Arc::new(Registry::new(64));
        let ref_telemetry = Telemetry::from_registry(Arc::clone(&ref_registry));
        let mut ref_clustering = clustering.clone();
        let mut ref_machines: BTreeMap<String, MachineInfo> = machines
            .iter()
            .map(|m| (m.id().to_string(), m.clone()))
            .collect();

        let eng_registry = Arc::new(Registry::new(64));
        let mut engine = DriftEngine::new(&clustering, &machines, diameter)
            .with_telemetry(Telemetry::from_registry(Arc::clone(&eng_registry)));
        // The cohesion-maintaining engine must produce the same output:
        // aggregates are observability, never placement inputs.
        let mut cohesive = DriftEngine::new(&clustering, &machines, diameter).with_cohesion(true);

        let batches = 2 + rng.below(3);
        for batch_no in 0..batches {
            let len = 4 + rng.below(9);
            let batch = random_batch(&mut rng, &machines, len);
            let (next, ref_stats) = drift_reference(
                &ref_clustering,
                &mut ref_machines,
                &batch,
                diameter,
                &ref_telemetry,
            );
            ref_clustering = next;

            let eng_stats = engine.recluster_batch(&batch);
            let coh_stats = cohesive.recluster_batch(&batch);

            assert_eq!(
                engine.clustering(),
                ref_clustering,
                "case {case} batch {batch_no}: clustering diverged"
            );
            assert_eq!(
                eng_stats, ref_stats,
                "case {case} batch {batch_no}: stats diverged"
            );
            assert_eq!(
                cohesive.clustering(),
                ref_clustering,
                "case {case} batch {batch_no}: cohesion changed placement"
            );
            // Cohesion maintenance adds aggregate evals but must not
            // perturb any other counter.
            let strip = |s: DriftStats| DriftStats {
                aggregate_evals: 0,
                ..s
            };
            assert_eq!(
                strip(coh_stats),
                strip(ref_stats),
                "case {case} batch {batch_no}: cohesion perturbed counters"
            );
            engine.validate().unwrap_or_else(|e| {
                panic!("case {case} batch {batch_no}: engine invariant broken: {e}")
            });
            cohesive.validate().unwrap_or_else(|e| {
                panic!("case {case} batch {batch_no}: cohesive invariant broken: {e}")
            });
            ref_clustering
                .validate_partition()
                .unwrap_or_else(|e| panic!("case {case} batch {batch_no}: bad partition: {e}"));
        }
        assert_eq!(
            drift_counters(&eng_registry),
            drift_counters(&ref_registry),
            "case {case}: published drift counters diverged"
        );
    }
}

/// The machine map the reference plane carries forward agrees with the
/// engine's resident inputs after every stream (drift ops mean the same
/// thing to both planes).
#[test]
fn resident_machine_inputs_track_reference() {
    let mut rng = Rng::new(0xd8);
    for case in 0..8 {
        let machines: Vec<MachineInfo> = (0..10).map(|i| random_machine(&mut rng, i)).collect();
        let diameter = rng.below(4);
        let clustering = ClusterEngine::new(diameter).cluster(&machines);
        let mut engine = DriftEngine::new(&clustering, &machines, diameter);
        let mut ref_clustering = clustering.clone();
        let mut ref_machines: BTreeMap<String, MachineInfo> = machines
            .iter()
            .map(|m| (m.id().to_string(), m.clone()))
            .collect();
        let batch = random_batch(&mut rng, &machines, 16);
        let (next, _) = drift_reference(
            &ref_clustering,
            &mut ref_machines,
            &batch,
            diameter,
            &Telemetry::noop(),
        );
        ref_clustering = next;
        engine.recluster_batch(&batch);
        assert_eq!(engine.clustering(), ref_clustering, "case {case}");
        assert_eq!(engine.machine_count(), ref_machines.len());
        for (id, want) in &ref_machines {
            assert_eq!(
                engine.machine_info(id),
                Some(want),
                "case {case}: machine {id} inputs diverged"
            );
        }
    }
}

/// Million-machine drift: a power-law delta batch against a synthetic
/// 1M fleet re-clusters in bounded time with the partition and every
/// engine invariant intact. Run with `--ignored` (release scale job).
#[test]
#[ignore = "1M-machine scale run; release builds only"]
fn million_machine_fleet_absorbs_drift_batch() {
    // 500 environments x 4 content variants x 500 machines = 1M.
    const ENVS: usize = 500;
    const VARIANTS: usize = 4;
    const PER_CLUSTER: usize = 500;

    let mut groups: Vec<Vec<MachineInfo>> = Vec::with_capacity(ENVS * VARIANTS);
    for e in 0..ENVS {
        for v in 0..VARIANTS {
            groups.push(
                (0..PER_CLUSTER)
                    .map(|m| {
                        let mut diff = DiffSet::empty(format!("m-{e:03}-{v}-{m:03}"));
                        diff.parsed.insert(Item::new([format!("env{e}")]));
                        diff.content.insert(Item::new([format!("cfg{v}")]));
                        MachineInfo::new(diff)
                    })
                    .collect(),
            );
        }
    }
    let (clustering, fleet) = clustering_from_groups(&groups);
    assert_eq!(clustering.machine_count(), ENVS * VARIANTS * PER_CLUSTER);

    let mut engine = DriftEngine::new(&clustering, &fleet, 0);

    // Power-law drift: machine index ~ r^3 concentrates churn on the
    // low environments, like a hot config pushed to a subset of racks.
    let mut rng = Rng::new(0x1e6);
    let total = fleet.len();
    let deltas: Vec<MachineDelta> = (0..1000)
        .map(|_| {
            let r = rng.below(total);
            let skew = ((r as f64 / total as f64).powi(3) * total as f64) as usize;
            let machine = fleet[skew.min(total - 1)].id().to_string();
            let from = rng.below(VARIANTS);
            let to = (from + 1 + rng.below(VARIANTS - 1)) % VARIANTS;
            MachineDelta {
                machine,
                op: DriftOp::ConfigEdit {
                    add: vec![Item::new([format!("cfg{to}")])],
                    remove: vec![Item::new([format!("cfg{from}")])],
                },
            }
        })
        .collect();

    let started = std::time::Instant::now();
    let stats = engine.recluster_batch(&deltas);
    let elapsed = started.elapsed();

    assert_eq!(stats.applied + stats.noops, 1000);
    assert!(stats.moves > 0, "drift batch produced no moves");
    // A batch over 1M machines must stay interactive: the whole point
    // of the resident plane. Generous bound for shared CI hardware.
    assert!(
        elapsed.as_secs() < 60,
        "1k deltas took {elapsed:?} against 1M machines"
    );

    engine.validate().expect("engine invariants after 1M drift");
    let after = engine.clustering();
    after.validate_partition().expect("partition after drift");
    assert_eq!(after.machine_count(), total);
}
