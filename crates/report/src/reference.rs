//! The retained string-keyed Upgrade Report Repository.
//!
//! This is the pre-sharding implementation, preserved verbatim (modulo
//! module paths) as the live correctness baseline for the production
//! [`crate::Urr`], following the reference-plane convention established
//! by the clustering and simulator rebuilds: a single
//! `RwLock<Vec<Report>>`, string-keyed `BTreeMap` aggregation, and
//! full-scan queries. The seeded `urr_reference_equivalence` property
//! (in `tests/proptests.rs`) proves the sharded repository produces
//! identical [`UrrStats`] / [`FailureGroup`] / [`ReleaseSummary`]
//! results across random report streams, and `repro urr-perf` benches
//! the two side by side so the committed speedup figure is measured
//! against *this* code, not a stale constant.

use std::collections::BTreeMap;
use std::sync::RwLock;

use mirage_telemetry::json::Value;

use crate::codec::JsonError;
use crate::report::{Report, ReportOutcome};
use crate::urr::{FailureGroup, ReleaseSummary, UrrStats};

/// The string-keyed reference repository: thread-safe, queryable,
/// serialisable — and deliberately naive.
///
/// # Examples
///
/// ```
/// use mirage_report::{reference, Report, ReportImage};
/// let urr = reference::Urr::new();
/// urr.deposit(Report::success("m1", 0, "mysql", "5.0.27"));
/// urr.deposit(Report::failure(
///     "m2", 1, "mysql", "5.0.27", "php/crash", "crash", ReportImage::default(),
/// ));
/// assert_eq!(urr.stats().failures, 1);
/// assert_eq!(urr.failure_groups().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Urr {
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    reports: Vec<Report>,
    next_seq: u64,
}

impl Urr {
    /// Creates an empty repository.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposits a report, assigning its sequence number.
    ///
    /// Returns the assigned sequence number.
    pub fn deposit(&self, mut report: Report) -> u64 {
        let mut inner = self.inner.write().expect("urr poisoned");
        let seq = inner.next_seq;
        inner.next_seq += 1;
        report.seq = seq;
        inner.reports.push(report);
        seq
    }

    /// Returns a snapshot of all reports (in deposit order).
    pub fn all(&self) -> Vec<Report> {
        self.inner.read().expect("urr poisoned").reports.clone()
    }

    /// Returns the reports for one package version.
    pub fn for_version(&self, package: &str, version: &str) -> Vec<Report> {
        self.inner
            .read()
            .expect("urr poisoned")
            .reports
            .iter()
            .filter(|r| r.package == package && r.version == version)
            .cloned()
            .collect()
    }

    /// Returns the reports from one cluster.
    pub fn for_cluster(&self, cluster: usize) -> Vec<Report> {
        self.inner
            .read()
            .expect("urr poisoned")
            .reports
            .iter()
            .filter(|r| r.cluster == cluster)
            .cloned()
            .collect()
    }

    /// Groups failure reports by signature — the vendor's deduplicated
    /// problem list, in discovery order.
    pub fn failure_groups(&self) -> Vec<FailureGroup> {
        let inner = self.inner.read().expect("urr poisoned");
        let mut groups: BTreeMap<&str, FailureGroup> = BTreeMap::new();
        for r in &inner.reports {
            if let ReportOutcome::Failure { signature, .. } = &r.outcome {
                let group = groups
                    .entry(signature.as_str())
                    .or_insert_with(|| FailureGroup {
                        signature: signature.clone(),
                        count: 0,
                        machines: Vec::new(),
                        clusters: Vec::new(),
                        first_seen: r.seq,
                    });
                group.count += 1;
                group.first_seen = group.first_seen.min(r.seq);
                if !group.machines.contains(&r.machine) {
                    group.machines.push(r.machine.clone());
                }
                if !group.clusters.contains(&r.cluster) {
                    group.clusters.push(r.cluster);
                }
            }
        }
        let mut result: Vec<FailureGroup> = groups.into_values().collect();
        result.sort_by_key(|g| g.first_seen);
        result
    }

    /// Computes aggregate statistics.
    pub fn stats(&self) -> UrrStats {
        let inner = self.inner.read().expect("urr poisoned");
        let mut stats = UrrStats {
            total: inner.reports.len(),
            ..Default::default()
        };
        let mut signatures = std::collections::BTreeSet::new();
        for r in &inner.reports {
            match &r.outcome {
                ReportOutcome::Success => stats.successes += 1,
                ReportOutcome::Failure { signature, .. } => {
                    stats.failures += 1;
                    signatures.insert(signature.clone());
                }
            }
            if let Some(img) = &r.image {
                stats.image_bytes += img.byte_size();
            }
        }
        stats.distinct_failures = signatures.len();
        stats
    }

    /// Serialises the full repository to pretty-printed JSON (an array
    /// of report objects, in deposit order).
    pub fn to_json(&self) -> String {
        let inner = self.inner.read().expect("urr poisoned");
        Value::Arr(inner.reports.iter().map(Report::to_json).collect()).to_pretty()
    }

    /// Restores a repository from JSON produced by [`Urr::to_json`].
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        let parsed = Value::parse(json)?;
        let items = parsed
            .as_array()
            .ok_or_else(|| JsonError::Shape("expected an array of reports".into()))?;
        let reports = items
            .iter()
            .map(Report::from_json)
            .collect::<Result<Vec<Report>, JsonError>>()?;
        let next_seq = reports.iter().map(|r| r.seq + 1).max().unwrap_or(0);
        Ok(Urr {
            inner: RwLock::new(Inner { reports, next_seq }),
        })
    }

    /// Summarises outcomes per `(package, version)`, in first-seen order.
    ///
    /// A vendor watching a staged deployment reads this as the health of
    /// each release it has shipped: the original upgrade accumulating
    /// failures, the corrected releases accumulating successes.
    pub fn release_summaries(&self) -> Vec<ReleaseSummary> {
        let inner = self.inner.read().expect("urr poisoned");
        let mut order: Vec<(String, String)> = Vec::new();
        let mut map: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
        for r in &inner.reports {
            let key = (r.package.clone(), r.version.clone());
            if !map.contains_key(&key) {
                order.push(key.clone());
            }
            let entry = map.entry(key).or_insert((0, 0));
            match &r.outcome {
                ReportOutcome::Success => entry.0 += 1,
                ReportOutcome::Failure { .. } => entry.1 += 1,
            }
        }
        order
            .into_iter()
            .map(|(package, version)| {
                let (successes, failures) = map[&(package.clone(), version.clone())];
                ReleaseSummary {
                    package,
                    version,
                    successes,
                    failures,
                }
            })
            .collect()
    }

    /// The debugging front-loading profile: for each distinct failure,
    /// the fraction of all reports that had been deposited when it was
    /// *first* seen. Values near 0 mean the vendor learned about the
    /// problem early (FrontLoading's goal); values near 1 mean late.
    pub fn discovery_profile(&self) -> Vec<(String, f64)> {
        let total = self.inner.read().expect("urr poisoned").reports.len();
        if total == 0 {
            return Vec::new();
        }
        self.failure_groups()
            .into_iter()
            .map(|g| (g.signature, g.first_seen as f64 / total as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ReportImage;

    fn failure(machine: &str, cluster: usize, sig: &str) -> Report {
        Report::failure(
            machine,
            cluster,
            "mysql",
            "5.0.27",
            sig,
            "detail",
            ReportImage::new("digest", vec!["ctx".into()], vec![], vec![]),
        )
    }

    #[test]
    fn deposit_assigns_sequence() {
        let urr = Urr::new();
        assert_eq!(urr.deposit(Report::success("a", 0, "p", "1.0.0")), 0);
        assert_eq!(urr.deposit(Report::success("b", 0, "p", "1.0.0")), 1);
        let all = urr.all();
        assert_eq!(all[0].seq, 0);
        assert_eq!(all[1].seq, 1);
    }

    #[test]
    fn failure_groups_deduplicate() {
        let urr = Urr::new();
        urr.deposit(failure("m1", 0, "php/crash"));
        urr.deposit(failure("m2", 0, "php/crash"));
        urr.deposit(failure("m2", 0, "php/crash")); // same machine again
        urr.deposit(failure("m3", 1, "mycnf/fail"));
        urr.deposit(Report::success("m4", 2, "mysql", "5.0.27"));
        let groups = urr.failure_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].signature, "php/crash");
        assert_eq!(groups[0].count, 3);
        assert_eq!(groups[0].machines, vec!["m1", "m2"]);
        assert_eq!(groups[0].clusters, vec![0]);
        assert_eq!(groups[1].signature, "mycnf/fail");
    }

    #[test]
    fn queries_filter_correctly() {
        let urr = Urr::new();
        urr.deposit(Report::success("m1", 0, "mysql", "5.0.27"));
        urr.deposit(Report::success("m2", 1, "mysql", "5.0.28"));
        urr.deposit(Report::success("m3", 1, "firefox", "2.0.0"));
        assert_eq!(urr.for_version("mysql", "5.0.27").len(), 1);
        assert_eq!(urr.for_cluster(1).len(), 2);
    }

    #[test]
    fn stats_aggregate() {
        let urr = Urr::new();
        urr.deposit(Report::success("m1", 0, "p", "1.0.0"));
        urr.deposit(failure("m2", 0, "sig"));
        let stats = urr.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(stats.successes, 1);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.distinct_failures, 1);
        assert!(stats.image_bytes > 0);
    }

    #[test]
    fn json_roundtrip_preserves_sequence() {
        let urr = Urr::new();
        urr.deposit(Report::success("m1", 0, "p", "1.0.0"));
        urr.deposit(failure("m2", 1, "sig"));
        let json = urr.to_json();
        let restored = Urr::from_json(&json).unwrap();
        assert_eq!(restored.all(), urr.all());
        // New deposits continue the sequence.
        assert_eq!(restored.deposit(Report::success("m3", 0, "p", "1.0.0")), 2);
    }

    #[test]
    fn concurrent_deposits() {
        use std::sync::Arc;
        let urr = Arc::new(Urr::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let urr = Arc::clone(&urr);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        urr.deposit(Report::success(format!("m{i}-{j}"), i, "p", "1.0.0"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let all = urr.all();
        assert_eq!(all.len(), 400);
        // Sequence numbers are unique.
        let seqs: std::collections::BTreeSet<u64> = all.iter().map(|r| r.seq).collect();
        assert_eq!(seqs.len(), 400);
    }

    #[test]
    fn release_summaries_track_versions_in_order() {
        let urr = Urr::new();
        urr.deposit(Report::failure(
            "m1",
            0,
            "app",
            "2.0.0",
            "sig",
            "d",
            ReportImage::default(),
        ));
        urr.deposit(Report::success("m2", 0, "app", "2.0.0"));
        urr.deposit(Report::success("m1", 0, "app", "2.0.1"));
        urr.deposit(Report::success("m3", 1, "app", "2.0.1"));
        let summaries = urr.release_summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].version, "2.0.0");
        assert_eq!((summaries[0].successes, summaries[0].failures), (1, 1));
        assert_eq!(summaries[1].version, "2.0.1");
        assert_eq!((summaries[1].successes, summaries[1].failures), (2, 0));
    }

    #[test]
    fn discovery_profile_measures_front_loading() {
        let urr = Urr::new();
        // Early discovery: failure is the very first report.
        urr.deposit(Report::failure(
            "rep1",
            0,
            "app",
            "2.0.0",
            "early-problem",
            "d",
            ReportImage::default(),
        ));
        for i in 0..8 {
            urr.deposit(Report::success(format!("m{i}"), 0, "app", "2.0.0"));
        }
        // Late discovery: a second problem shows up at the end.
        urr.deposit(Report::failure(
            "m9",
            3,
            "app",
            "2.0.0",
            "late-problem",
            "d",
            ReportImage::default(),
        ));
        let profile = urr.discovery_profile();
        assert_eq!(profile.len(), 2);
        assert_eq!(profile[0].0, "early-problem");
        assert!(profile[0].1 < 0.1, "discovered at the very start");
        assert_eq!(profile[1].0, "late-problem");
        assert!(profile[1].1 > 0.8, "discovered at the very end");
    }

    #[test]
    fn empty_urr_analytics() {
        let urr = Urr::new();
        assert!(urr.release_summaries().is_empty());
        assert!(urr.discovery_profile().is_empty());
    }
}
