//! Structured problem reporting (paper §3.4).
//!
//! After user-machine testing determines the success or failure of an
//! upgrade, the result is deposited in an **Upgrade Report Repository
//! (URR)** the vendor can query. Each [`Report`] carries:
//!
//! 1. information about the cluster of deployment,
//! 2. a succinct success/failure result (the failure *signature*), and
//! 3. a [`ReportImage`] allowing the vendor to reproduce the problem —
//!    in the paper, the entire upgraded virtual-machine state plus the
//!    recorded inputs and outputs used during replay; here, a digest of
//!    the sandbox state and the replayed I/O.
//!
//! The URR deduplicates by failure signature, which addresses the survey
//! finding that vendors drown in repetitive, unstructured reports: a
//! vendor querying [`Urr::failure_groups`] sees each distinct problem
//! once, with the affected machine/cluster population attached.
//!
//! The repository is thread-safe (`std::sync::RwLock`) because reports
//! arrive concurrently from many user machines, and serialisable via
//! the workspace's dependency-free JSON module
//! ([`mirage_telemetry::json`]) because in deployment it would be
//! transferred or co-located with the vendor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod image;
pub mod report;
pub mod urr;

pub use codec::JsonError;
pub use image::ReportImage;
pub use report::{Report, ReportOutcome};
pub use urr::{FailureGroup, ReleaseSummary, Urr, UrrStats};
