//! Structured problem reporting (paper §3.4).
//!
//! After user-machine testing determines the success or failure of an
//! upgrade, the result is deposited in an **Upgrade Report Repository
//! (URR)** the vendor can query. Each [`Report`] carries:
//!
//! 1. information about the cluster of deployment,
//! 2. a succinct success/failure result (the failure *signature*), and
//! 3. a [`ReportImage`] allowing the vendor to reproduce the problem —
//!    in the paper, the entire upgraded virtual-machine state plus the
//!    recorded inputs and outputs used during replay; here, a digest of
//!    the sandbox state and the replayed I/O.
//!
//! The URR deduplicates by failure signature, which addresses the survey
//! finding that vendors drown in repetitive, unstructured reports: a
//! vendor querying [`Urr::failure_groups`] sees each distinct problem
//! once, with the affected machine/cluster population attached.
//!
//! # Architecture
//!
//! The repository is a *sharded, interned, incrementally-indexed*
//! subsystem designed to stay on during million-machine simulation
//! sweeps:
//!
//! * **Lock-striped shards.** Failure reports are routed to
//!   `next_pow2(threads)` shards by an FNV-1a hash of the failure
//!   signature, so every report for one signature lands in one shard
//!   and per-signature aggregation never crosses shard boundaries.
//! * **Dense interning.** Machine names, failure signatures, and
//!   `(package, version)` releases are interned to `u32` ids
//!   ([`MachineRef`], [`SigId`], [`ReleaseId`]) once at the boundary;
//!   the hot ingest path ([`Urr::deposit_interned_batch`]) moves only
//!   `Copy` records.
//! * **Word-packed sets.** Per-signature machine/cluster membership is
//!   deduplicated with packed bitsets plus `(seq, id)` order vectors,
//!   replacing the per-report `Vec<String>` accumulation of the
//!   original prototype.
//! * **Incremental inverted index.** Group, cluster, and release
//!   tallies are updated on ingest, so vendor queries (top-k failure
//!   groups, per-cluster failure rates, signature drill-downs,
//!   time-windowed first-seen scans) merge pre-aggregated state instead
//!   of re-scanning every report.
//!
//! The original string-keyed prototype is retained verbatim as
//! [`reference::Urr`]; a seeded property test proves both planes
//! produce identical [`UrrStats`] / [`FailureGroup`] results over
//! random report streams.
//!
//! The repository is thread-safe and serialisable via the workspace's
//! dependency-free JSON module ([`mirage_telemetry::json`]) because in
//! deployment it would be transferred or co-located with the vendor.
//!
//! # Durability and serving
//!
//! Two companion layers make the URR a deployable vendor service:
//!
//! * [`storage`] — a pluggable [`UrrStore`] backend ([`MemoryStore`],
//!   [`FsStore`]) behind [`DurableUrr`]: every deposit batch is
//!   journaled to a checksummed write-ahead log before it is applied,
//!   compacted snapshots are written periodically, and
//!   [`DurableUrr::recover`] rebuilds the exact live state after a
//!   crash — tolerating truncated, torn, and corrupt WAL tails.
//! * [`serve`] — [`Urr::snapshot`] freezes the query surfaces into an
//!   immutable [`UrrSnapshot`] that any number of reader threads can
//!   query lock-free while ingest continues, and
//!   [`UrrRequest`]/[`UrrResponse`] give those queries a framed wire
//!   protocol with hostile-input rejection ([`WireError`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod codec;
pub mod image;
pub mod reference;
pub mod report;
pub mod serve;
pub mod storage;
pub mod urr;

pub use codec::JsonError;
pub use image::ReportImage;
pub use report::{Report, ReportOutcome};
pub use serve::{UrrRequest, UrrResponse, UrrSnapshot};
pub use storage::{
    DurableConfig, DurableUrr, FsStore, MemoryStore, RecoveryReport, StoreError, UrrStore,
    WireError,
};
pub use urr::{
    ClusterFailureRate, FailureGroup, InternedOutcome, InternedReport, MachineRef, ReleaseId,
    ReleaseSummary, SigId, Urr, UrrStats,
};
