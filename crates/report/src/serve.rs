//! The vendor serving layer: frozen query views and a framed
//! request/response protocol.
//!
//! A vendor dashboard or staged-deployment controller polls the URR
//! far more often than it ingests, and it wants a *stable* view while
//! it reasons — a top-k list that reshuffles mid-page is worse than a
//! slightly stale one. [`Urr::snapshot`] freezes the repository's
//! query surfaces into an immutable [`UrrSnapshot`]; any number of
//! reader threads can share one behind an `Arc` and answer queries
//! lock-free while ingest continues on the live repository.
//!
//! [`UrrRequest`] / [`UrrResponse`] give the same queries a wire shape
//! using the storage layer's checksummed frame format, so a serving
//! process can answer remote vendors from a snapshot handle:
//! [`UrrSnapshot::serve`] takes an encoded request frame and returns an
//! encoded response frame, rejecting corrupt or hostile input with a
//! typed [`WireError`] instead of panicking.

use std::collections::HashMap;
use std::ops::Range;

use crate::storage::frame::{decode_frame, encode_frame, KIND_REQUEST, KIND_RESPONSE};
use crate::storage::wire::{
    get_string_list, put_len, put_str, put_string_list, put_u64, put_u8, Cursor, WireError,
};
use crate::urr::{ClusterFailureRate, FailureGroup, ReleaseSummary, Urr, UrrStats};

// ---------------------------------------------------------------------
// Frozen snapshot
// ---------------------------------------------------------------------

/// An immutable point-in-time view of a [`Urr`]'s query surfaces.
///
/// Built by [`Urr::snapshot`]. Every accessor mirrors the live method
/// of the same name and returns the same answer the live repository
/// would have given at freeze time; none of them take locks, so
/// snapshots are cheap to query from many threads at once.
#[derive(Debug, Clone, PartialEq)]
pub struct UrrSnapshot {
    as_of: u64,
    stats: UrrStats,
    /// Failure groups in discovery order (`first_seen` ascending).
    groups: Vec<FailureGroup>,
    /// Indices into `groups`, ordered by (count desc, first_seen asc).
    ranked: Vec<usize>,
    /// Signature name → index into `groups`.
    by_sig: HashMap<String, usize>,
    rates: Vec<ClusterFailureRate>,
    releases: Vec<ReleaseSummary>,
}

impl Urr {
    /// Freezes the repository's query surfaces into an immutable
    /// [`UrrSnapshot`]. Building the snapshot walks the stripes with
    /// the same locks the live queries take; once built, reading it
    /// takes none.
    pub fn snapshot(&self) -> UrrSnapshot {
        let as_of = self.next_seq();
        let stats = self.stats();
        let groups = self.failure_groups();
        let mut ranked: Vec<usize> = (0..groups.len()).collect();
        ranked.sort_by(|&a, &b| {
            groups[b]
                .count
                .cmp(&groups[a].count)
                .then(groups[a].first_seen.cmp(&groups[b].first_seen))
        });
        let by_sig = groups
            .iter()
            .enumerate()
            .map(|(i, g)| (g.signature.clone(), i))
            .collect();
        UrrSnapshot {
            as_of,
            stats,
            groups,
            ranked,
            by_sig,
            rates: self.cluster_failure_rates(),
            releases: self.release_summaries(),
        }
    }
}

impl UrrSnapshot {
    /// The sequence-number watermark: every report with `seq <
    /// as_of()` is reflected in this view.
    pub fn as_of(&self) -> u64 {
        self.as_of
    }

    /// Mirror of [`Urr::stats`].
    pub fn stats(&self) -> UrrStats {
        self.stats.clone()
    }

    /// Mirror of [`Urr::failure_groups`] (discovery order).
    pub fn failure_groups(&self) -> Vec<FailureGroup> {
        self.groups.clone()
    }

    /// Mirror of [`Urr::top_k_failure_groups`].
    pub fn top_k_failure_groups(&self, k: usize) -> Vec<FailureGroup> {
        self.ranked
            .iter()
            .take(k)
            .map(|&i| self.groups[i].clone())
            .collect()
    }

    /// Mirror of [`Urr::cluster_failure_rates`].
    pub fn cluster_failure_rates(&self) -> Vec<ClusterFailureRate> {
        self.rates.clone()
    }

    /// Mirror of [`Urr::machines_for_signature`].
    pub fn machines_for_signature(&self, signature: &str) -> Option<Vec<String>> {
        self.by_sig
            .get(signature)
            .map(|&i| self.groups[i].machines.clone())
    }

    /// Mirror of [`Urr::clusters_for_signature`].
    pub fn clusters_for_signature(&self, signature: &str) -> Option<Vec<usize>> {
        self.by_sig
            .get(signature)
            .map(|&i| self.groups[i].clusters.clone())
    }

    /// Mirror of [`Urr::first_seen_in`].
    pub fn first_seen_in(&self, window: Range<u64>) -> Vec<FailureGroup> {
        self.groups
            .iter()
            .filter(|g| window.contains(&g.first_seen))
            .cloned()
            .collect()
    }

    /// Mirror of [`Urr::release_summaries`].
    pub fn release_summaries(&self) -> Vec<ReleaseSummary> {
        self.releases.clone()
    }

    /// Answers one protocol request from the frozen view.
    pub fn answer(&self, request: &UrrRequest) -> UrrResponse {
        match request {
            UrrRequest::Stats => UrrResponse::Stats(self.stats()),
            UrrRequest::FailureGroups => UrrResponse::Groups(self.failure_groups()),
            UrrRequest::TopK(k) => {
                let k = usize::try_from(*k).unwrap_or(usize::MAX);
                UrrResponse::Groups(self.top_k_failure_groups(k))
            }
            UrrRequest::ClusterRates => UrrResponse::Rates(self.cluster_failure_rates()),
            UrrRequest::FirstSeenIn { start, end } => {
                UrrResponse::Groups(self.first_seen_in(*start..*end))
            }
            UrrRequest::MachinesForSignature { signature } => {
                UrrResponse::Machines(self.machines_for_signature(signature))
            }
            UrrRequest::ClustersForSignature { signature } => {
                UrrResponse::Clusters(self.clusters_for_signature(signature))
            }
            UrrRequest::ReleaseSummaries => UrrResponse::Releases(self.release_summaries()),
        }
    }

    /// Decodes one request frame, answers it, and encodes the response
    /// frame. Corrupt, truncated, or hostile request bytes yield a
    /// typed error, never a panic.
    pub fn serve(&self, request_frame: &[u8]) -> Result<Vec<u8>, WireError> {
        let request = UrrRequest::from_frame(request_frame)?;
        Ok(self.answer(&request).to_frame())
    }
}

// ---------------------------------------------------------------------
// Protocol: requests
// ---------------------------------------------------------------------

const REQ_STATS: u8 = 0;
const REQ_FAILURE_GROUPS: u8 = 1;
const REQ_TOP_K: u8 = 2;
const REQ_CLUSTER_RATES: u8 = 3;
const REQ_FIRST_SEEN_IN: u8 = 4;
const REQ_MACHINES_FOR_SIG: u8 = 5;
const REQ_CLUSTERS_FOR_SIG: u8 = 6;
const REQ_RELEASE_SUMMARIES: u8 = 7;

/// A vendor query against the URR serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrrRequest {
    /// Aggregate statistics ([`Urr::stats`]).
    Stats,
    /// All failure groups in discovery order ([`Urr::failure_groups`]).
    FailureGroups,
    /// The `k` largest failure groups ([`Urr::top_k_failure_groups`]).
    TopK(u64),
    /// Per-cluster tallies ([`Urr::cluster_failure_rates`]).
    ClusterRates,
    /// Groups first seen in `start..end`([`Urr::first_seen_in`]).
    FirstSeenIn {
        /// Window start (inclusive sequence number).
        start: u64,
        /// Window end (exclusive sequence number).
        end: u64,
    },
    /// Machines drill-down ([`Urr::machines_for_signature`]).
    MachinesForSignature {
        /// The failure signature to drill into.
        signature: String,
    },
    /// Clusters drill-down ([`Urr::clusters_for_signature`]).
    ClustersForSignature {
        /// The failure signature to drill into.
        signature: String,
    },
    /// Per-release tallies ([`Urr::release_summaries`]).
    ReleaseSummaries,
}

impl UrrRequest {
    /// Encodes this request as one checksummed frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            UrrRequest::Stats => put_u8(&mut payload, REQ_STATS),
            UrrRequest::FailureGroups => put_u8(&mut payload, REQ_FAILURE_GROUPS),
            UrrRequest::TopK(k) => {
                put_u8(&mut payload, REQ_TOP_K);
                put_u64(&mut payload, *k);
            }
            UrrRequest::ClusterRates => put_u8(&mut payload, REQ_CLUSTER_RATES),
            UrrRequest::FirstSeenIn { start, end } => {
                put_u8(&mut payload, REQ_FIRST_SEEN_IN);
                put_u64(&mut payload, *start);
                put_u64(&mut payload, *end);
            }
            UrrRequest::MachinesForSignature { signature } => {
                put_u8(&mut payload, REQ_MACHINES_FOR_SIG);
                put_str(&mut payload, signature);
            }
            UrrRequest::ClustersForSignature { signature } => {
                put_u8(&mut payload, REQ_CLUSTERS_FOR_SIG);
                put_str(&mut payload, signature);
            }
            UrrRequest::ReleaseSummaries => put_u8(&mut payload, REQ_RELEASE_SUMMARIES),
        }
        encode_frame(KIND_REQUEST, &payload)
    }

    /// Decodes one request frame, rejecting anything malformed.
    pub fn from_frame(bytes: &[u8]) -> Result<Self, WireError> {
        let (kind, payload) = decode_frame(bytes)?;
        if kind != KIND_REQUEST {
            return Err(WireError::BadTag {
                what: "request frame kind",
                tag: kind,
            });
        }
        let mut cur = Cursor::new(payload);
        let out = match cur.u8("request tag")? {
            REQ_STATS => UrrRequest::Stats,
            REQ_FAILURE_GROUPS => UrrRequest::FailureGroups,
            REQ_TOP_K => UrrRequest::TopK(cur.u64("top-k k")?),
            REQ_CLUSTER_RATES => UrrRequest::ClusterRates,
            REQ_FIRST_SEEN_IN => UrrRequest::FirstSeenIn {
                start: cur.u64("window start")?,
                end: cur.u64("window end")?,
            },
            REQ_MACHINES_FOR_SIG => UrrRequest::MachinesForSignature {
                signature: cur.str_("signature")?,
            },
            REQ_CLUSTERS_FOR_SIG => UrrRequest::ClustersForSignature {
                signature: cur.str_("signature")?,
            },
            REQ_RELEASE_SUMMARIES => UrrRequest::ReleaseSummaries,
            tag => {
                return Err(WireError::BadTag {
                    what: "request tag",
                    tag,
                })
            }
        };
        cur.finish("request")?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Protocol: responses
// ---------------------------------------------------------------------

const RESP_STATS: u8 = 0;
const RESP_GROUPS: u8 = 1;
const RESP_RATES: u8 = 2;
const RESP_MACHINES: u8 = 3;
const RESP_CLUSTERS: u8 = 4;
const RESP_RELEASES: u8 = 5;

/// The answer to a [`UrrRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrrResponse {
    /// Aggregate statistics.
    Stats(UrrStats),
    /// Failure groups (for `FailureGroups`, `TopK`, `FirstSeenIn`).
    Groups(Vec<FailureGroup>),
    /// Per-cluster tallies.
    Rates(Vec<ClusterFailureRate>),
    /// Machines drill-down; `None` when the signature is unknown.
    Machines(Option<Vec<String>>),
    /// Clusters drill-down; `None` when the signature is unknown.
    Clusters(Option<Vec<usize>>),
    /// Per-release tallies.
    Releases(Vec<ReleaseSummary>),
}

fn put_group(out: &mut Vec<u8>, g: &FailureGroup) {
    put_str(out, &g.signature);
    put_u64(out, g.count as u64);
    put_string_list(out, &g.machines);
    put_len(out, g.clusters.len());
    for &c in &g.clusters {
        put_u64(out, c as u64);
    }
    put_u64(out, g.first_seen);
}

fn get_group(cur: &mut Cursor<'_>) -> Result<FailureGroup, WireError> {
    let signature = cur.str_("group signature")?;
    let count = cur.u64_as_usize("group count")?;
    let machines = get_string_list(cur, "group machines")?;
    let n = cur.list_len(8, "group clusters")?;
    let mut clusters = Vec::with_capacity(n);
    for _ in 0..n {
        clusters.push(cur.u64_as_usize("group cluster")?);
    }
    let first_seen = cur.u64("group first_seen")?;
    Ok(FailureGroup {
        signature,
        count,
        machines,
        clusters,
        first_seen,
    })
}

fn put_groups(out: &mut Vec<u8>, groups: &[FailureGroup]) {
    put_len(out, groups.len());
    for g in groups {
        put_group(out, g);
    }
}

fn get_groups(cur: &mut Cursor<'_>) -> Result<Vec<FailureGroup>, WireError> {
    // A group is at least: 3 list lengths + count + first_seen (u64s).
    let n = cur.list_len(4 * 2 + 8 * 2, "groups")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_group(cur)?);
    }
    Ok(out)
}

impl UrrResponse {
    /// Encodes this response as one checksummed frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            UrrResponse::Stats(s) => {
                put_u8(&mut p, RESP_STATS);
                put_u64(&mut p, s.total as u64);
                put_u64(&mut p, s.successes as u64);
                put_u64(&mut p, s.failures as u64);
                put_u64(&mut p, s.distinct_failures as u64);
                put_u64(&mut p, s.image_bytes as u64);
            }
            UrrResponse::Groups(groups) => {
                put_u8(&mut p, RESP_GROUPS);
                put_groups(&mut p, groups);
            }
            UrrResponse::Rates(rates) => {
                put_u8(&mut p, RESP_RATES);
                put_len(&mut p, rates.len());
                for r in rates {
                    put_u64(&mut p, r.cluster as u64);
                    put_u64(&mut p, r.successes as u64);
                    put_u64(&mut p, r.failures as u64);
                }
            }
            UrrResponse::Machines(m) => {
                put_u8(&mut p, RESP_MACHINES);
                match m {
                    None => put_u8(&mut p, 0),
                    Some(list) => {
                        put_u8(&mut p, 1);
                        put_string_list(&mut p, list);
                    }
                }
            }
            UrrResponse::Clusters(c) => {
                put_u8(&mut p, RESP_CLUSTERS);
                match c {
                    None => put_u8(&mut p, 0),
                    Some(list) => {
                        put_u8(&mut p, 1);
                        put_len(&mut p, list.len());
                        for &c in list {
                            put_u64(&mut p, c as u64);
                        }
                    }
                }
            }
            UrrResponse::Releases(rels) => {
                put_u8(&mut p, RESP_RELEASES);
                put_len(&mut p, rels.len());
                for r in rels {
                    put_str(&mut p, &r.package);
                    put_str(&mut p, &r.version);
                    put_u64(&mut p, r.successes as u64);
                    put_u64(&mut p, r.failures as u64);
                }
            }
        }
        encode_frame(KIND_RESPONSE, &p)
    }

    /// Decodes one response frame, rejecting anything malformed.
    pub fn from_frame(bytes: &[u8]) -> Result<Self, WireError> {
        let (kind, payload) = decode_frame(bytes)?;
        if kind != KIND_RESPONSE {
            return Err(WireError::BadTag {
                what: "response frame kind",
                tag: kind,
            });
        }
        let mut cur = Cursor::new(payload);
        let out = match cur.u8("response tag")? {
            RESP_STATS => UrrResponse::Stats(UrrStats {
                total: cur.u64_as_usize("stats total")?,
                successes: cur.u64_as_usize("stats successes")?,
                failures: cur.u64_as_usize("stats failures")?,
                distinct_failures: cur.u64_as_usize("stats distinct")?,
                image_bytes: cur.u64_as_usize("stats image bytes")?,
            }),
            RESP_GROUPS => UrrResponse::Groups(get_groups(&mut cur)?),
            RESP_RATES => {
                let n = cur.list_len(24, "rates")?;
                let mut rates = Vec::with_capacity(n);
                for _ in 0..n {
                    rates.push(ClusterFailureRate {
                        cluster: cur.u64_as_usize("rate cluster")?,
                        successes: cur.u64_as_usize("rate successes")?,
                        failures: cur.u64_as_usize("rate failures")?,
                    });
                }
                UrrResponse::Rates(rates)
            }
            RESP_MACHINES => UrrResponse::Machines(match cur.u8("machines some-tag")? {
                0 => None,
                1 => Some(get_string_list(&mut cur, "machines")?),
                tag => {
                    return Err(WireError::BadTag {
                        what: "machines some-tag",
                        tag,
                    })
                }
            }),
            RESP_CLUSTERS => UrrResponse::Clusters(match cur.u8("clusters some-tag")? {
                0 => None,
                1 => {
                    let n = cur.list_len(8, "clusters")?;
                    let mut list = Vec::with_capacity(n);
                    for _ in 0..n {
                        list.push(cur.u64_as_usize("cluster id")?);
                    }
                    Some(list)
                }
                tag => {
                    return Err(WireError::BadTag {
                        what: "clusters some-tag",
                        tag,
                    })
                }
            }),
            RESP_RELEASES => {
                let n = cur.list_len(4 * 2 + 8 * 2, "releases")?;
                let mut rels = Vec::with_capacity(n);
                for _ in 0..n {
                    rels.push(ReleaseSummary {
                        package: cur.str_("release package")?,
                        version: cur.str_("release version")?,
                        successes: cur.u64_as_usize("release successes")?,
                        failures: cur.u64_as_usize("release failures")?,
                    });
                }
                UrrResponse::Releases(rels)
            }
            tag => {
                return Err(WireError::BadTag {
                    what: "response tag",
                    tag,
                })
            }
        };
        cur.finish("response")?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ReportImage;
    use crate::report::Report;

    fn populated() -> Urr {
        let urr = Urr::with_shards(4);
        urr.deposit(Report::success("m1", 0, "mysql", "5.0.27"));
        urr.deposit(Report::failure(
            "m2",
            1,
            "mysql",
            "5.0.27",
            "php/crash",
            "detail",
            ReportImage::default(),
        ));
        urr.deposit(Report::failure(
            "m3",
            2,
            "mysql",
            "5.0.27",
            "php/crash",
            "",
            ReportImage::default(),
        ));
        urr.deposit(Report::failure(
            "m2",
            1,
            "mysql",
            "5.0.28",
            "ssl/handshake",
            "",
            ReportImage::default(),
        ));
        urr
    }

    #[test]
    fn snapshot_mirrors_every_live_surface() {
        let urr = populated();
        let snap = urr.snapshot();
        assert_eq!(snap.as_of(), urr.next_seq());
        assert_eq!(snap.stats(), urr.stats());
        assert_eq!(snap.failure_groups(), urr.failure_groups());
        for k in 0..4 {
            assert_eq!(snap.top_k_failure_groups(k), urr.top_k_failure_groups(k));
        }
        assert_eq!(snap.cluster_failure_rates(), urr.cluster_failure_rates());
        assert_eq!(snap.release_summaries(), urr.release_summaries());
        assert_eq!(snap.first_seen_in(1..3), urr.first_seen_in(1..3));
        for sig in ["php/crash", "ssl/handshake", "nope"] {
            assert_eq!(
                snap.machines_for_signature(sig),
                urr.machines_for_signature(sig)
            );
            assert_eq!(
                snap.clusters_for_signature(sig),
                urr.clusters_for_signature(sig)
            );
        }
    }

    #[test]
    fn snapshot_is_frozen_while_ingest_continues() {
        let urr = populated();
        let snap = urr.snapshot();
        let before = snap.stats();
        urr.deposit(Report::success("m9", 0, "mysql", "5.0.28"));
        assert_eq!(snap.stats(), before, "snapshot unaffected by new deposits");
        assert_ne!(urr.stats(), before);
    }

    #[test]
    fn request_frames_roundtrip() {
        let requests = vec![
            UrrRequest::Stats,
            UrrRequest::FailureGroups,
            UrrRequest::TopK(7),
            UrrRequest::ClusterRates,
            UrrRequest::FirstSeenIn { start: 2, end: 9 },
            UrrRequest::MachinesForSignature {
                signature: "php/crash\u{1F4A5}\"\\".into(),
            },
            UrrRequest::ClustersForSignature {
                signature: String::new(),
            },
            UrrRequest::ReleaseSummaries,
        ];
        for req in requests {
            let frame = req.to_frame();
            assert_eq!(UrrRequest::from_frame(&frame).unwrap(), req);
        }
    }

    #[test]
    fn every_request_kind_serves_the_live_answer() {
        let urr = populated();
        let snap = urr.snapshot();
        let cases = vec![
            (UrrRequest::Stats, UrrResponse::Stats(urr.stats())),
            (
                UrrRequest::FailureGroups,
                UrrResponse::Groups(urr.failure_groups()),
            ),
            (
                UrrRequest::TopK(1),
                UrrResponse::Groups(urr.top_k_failure_groups(1)),
            ),
            (
                UrrRequest::ClusterRates,
                UrrResponse::Rates(urr.cluster_failure_rates()),
            ),
            (
                UrrRequest::FirstSeenIn { start: 0, end: 2 },
                UrrResponse::Groups(urr.first_seen_in(0..2)),
            ),
            (
                UrrRequest::MachinesForSignature {
                    signature: "php/crash".into(),
                },
                UrrResponse::Machines(urr.machines_for_signature("php/crash")),
            ),
            (
                UrrRequest::ClustersForSignature {
                    signature: "unknown".into(),
                },
                UrrResponse::Clusters(None),
            ),
            (
                UrrRequest::ReleaseSummaries,
                UrrResponse::Releases(urr.release_summaries()),
            ),
        ];
        for (req, want) in cases {
            let resp_frame = snap.serve(&req.to_frame()).unwrap();
            let resp = UrrResponse::from_frame(&resp_frame).unwrap();
            assert_eq!(resp, want, "request {req:?}");
            // And the response frame round-trips byte-identically.
            assert_eq!(resp.to_frame(), resp_frame);
        }
    }

    #[test]
    fn hostile_request_frames_are_rejected() {
        let snap = populated().snapshot();
        // Corrupt every byte of a valid frame in turn: serve must never
        // panic, and flipped-checksum/truncated shapes must error.
        let frame = UrrRequest::TopK(3).to_frame();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            let _ = snap.serve(&bad);
        }
        for len in 0..frame.len() {
            assert!(snap.serve(&frame[..len]).is_err(), "truncated at {len}");
        }
        // A response frame is not a request.
        let resp = UrrResponse::Machines(None).to_frame();
        assert!(snap.serve(&resp).is_err());
        // Unknown request tag.
        let bad = encode_frame(KIND_REQUEST, &[99]);
        assert!(snap.serve(&bad).is_err());
        // Trailing bytes after a valid request.
        let bad = encode_frame(KIND_REQUEST, &[REQ_STATS, 0xff]);
        assert!(snap.serve(&bad).is_err());
    }
}
