//! The sharded, interned Upgrade Report Repository.
//!
//! The paper's vendor leaves the repository **on** for the whole
//! deployment: every user machine deposits a structured report, and the
//! vendor keeps querying the deduplicated problem list while fixes are
//! debugged. That only works if ingest and query are cheap, so this
//! implementation follows the workspace's interned-data-plane
//! conventions:
//!
//! * **Lock-striped shards.** Reports live in `N = next_pow2(threads)`
//!   shards, each behind its own `Mutex`. Failure reports are routed by
//!   the *hash of their signature*, so every report for one failure
//!   lands in one shard and per-signature aggregation never crosses
//!   shard boundaries; success reports are spread by a machine-id hash.
//! * **Dense interning.** Machine names ([`MachineRef`], a `u32` in the
//!   same style as the deploy plane's `MachineId`), failure signatures
//!   ([`SigId`]), and `(package, version)` pairs ([`ReleaseId`]) are
//!   interned once; stored records are small `Copy`-ish structs of ids.
//! * **Word-packed sets.** Per-signature machine/cluster membership is
//!   a packed bitset plus a first-seen order list — deduplication is one
//!   bit test instead of the reference's `Vec<String>::contains` scan.
//! * **Incremental inverted index.** Every deposit updates the
//!   per-signature group aggregate, per-cluster tallies, and
//!   per-release tallies in place, so [`Urr::failure_groups`],
//!   [`Urr::top_k_failure_groups`], [`Urr::cluster_failure_rates`], and
//!   [`Urr::release_summaries`] are merges over pre-aggregated state,
//!   not scans over every report ever deposited.
//!
//! The batched ingest path ([`Urr::deposit_batch`], and the fully
//! interned [`Urr::deposit_interned_batch`] used by the simulator's
//! `with_urr` wiring) claims a contiguous sequence range with one
//! atomic add and takes each shard lock once per batch.
//!
//! The pre-sharding implementation survives under [`crate::reference`];
//! the seeded `urr_reference_equivalence` property proves both produce
//! identical query results on random report streams.
//!
//! # Ordering
//!
//! Sequence numbers are assigned by a global atomic counter, so under
//! *concurrent* ingest a shard may receive records out of sequence
//! order. All ordered query results (deposit-order snapshots,
//! first-seen lists) are therefore ordered by sequence number at query
//! time, which makes them deterministic for any single-threaded stream
//! and well-defined (sequence order, not arrival order) under
//! concurrency. Within a [`FailureGroup`], `machines`/`clusters` are
//! listed by the sequence number of the first report that introduced
//! them.

use std::collections::HashMap;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

use mirage_telemetry::json::Value;
use mirage_telemetry::Telemetry;

use crate::codec::JsonError;
use crate::image::ReportImage;
use crate::report::{Report, ReportOutcome};

/// Sentinel for "this record is a success" in the stored sig slot.
pub(crate) const NO_SIG: u32 = u32::MAX;
/// Sentinel for "no report seen yet" in first-seen fields.
pub(crate) const NEVER: u64 = u64::MAX;

// ---------------------------------------------------------------------
// Public id types
// ---------------------------------------------------------------------

/// A dense reporter-machine identifier: an index into the repository's
/// machine interner. Deliberately `u32` like the deploy plane's
/// `MachineId`, so simulator wiring can carry ids across the boundary
/// without widening.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MachineRef(pub u32);

impl MachineRef {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MachineRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rm#{}", self.0)
    }
}

/// A dense failure-signature identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SigId(pub u32);

impl SigId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig#{}", self.0)
    }
}

/// A dense `(package, version)` release identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ReleaseId(pub u32);

impl ReleaseId {
    /// The id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ReleaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rel#{}", self.0)
    }
}

// ---------------------------------------------------------------------
// Public result types (shared with `crate::reference`)
// ---------------------------------------------------------------------

/// A group of duplicate failure reports sharing one signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureGroup {
    /// The shared failure signature.
    pub signature: String,
    /// Number of reports with this signature.
    pub count: usize,
    /// Distinct machines that reported it.
    pub machines: Vec<String>,
    /// Distinct clusters that reported it.
    pub clusters: Vec<usize>,
    /// Sequence number of the first report (discovery order).
    pub first_seen: u64,
}

/// Aggregate repository statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UrrStats {
    /// Total reports deposited.
    pub total: usize,
    /// Success reports.
    pub successes: usize,
    /// Failure reports.
    pub failures: usize,
    /// Distinct failure signatures.
    pub distinct_failures: usize,
    /// Total bytes of report images stored.
    pub image_bytes: usize,
}

/// Per-release outcome summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReleaseSummary {
    /// Package name.
    pub package: String,
    /// Version string.
    pub version: String,
    /// Successful integrations reported.
    pub successes: usize,
    /// Failures reported.
    pub failures: usize,
}

/// Per-cluster failure tallies — the vendor's "which deployment stages
/// are hurting" view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterFailureRate {
    /// Cluster id.
    pub cluster: usize,
    /// Success reports from this cluster.
    pub successes: usize,
    /// Failure reports from this cluster.
    pub failures: usize,
}

impl ClusterFailureRate {
    /// Failures as a fraction of all reports from the cluster.
    pub fn rate(&self) -> f64 {
        let total = self.successes + self.failures;
        if total == 0 {
            0.0
        } else {
            self.failures as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------
// Interned ingest records
// ---------------------------------------------------------------------

/// The outcome of one pre-interned report record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InternedOutcome {
    /// The upgrade passed testing.
    Success,
    /// Testing failed with the interned signature.
    Failure(SigId),
}

/// One pre-interned report for the allocation-free batch ingest path.
///
/// Interned failure records carry no free-form detail or reproduction
/// image (the simulator's fault signatures are fully described by their
/// interned name); reconstructing such a record yields a failure report
/// with an empty detail string and no image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternedReport {
    /// Reporting machine.
    pub machine: MachineRef,
    /// The machine's cluster of deployment.
    pub cluster: u32,
    /// The tested release.
    pub release: ReleaseId,
    /// Test outcome.
    pub outcome: InternedOutcome,
}

// ---------------------------------------------------------------------
// Internal storage
// ---------------------------------------------------------------------

/// Heap payload a record only carries when it has one: failure detail
/// and/or a reproduction image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Payload {
    pub(crate) detail: String,
    pub(crate) image: Option<ReportImage>,
}

/// One stored report record: ids only, payload boxed out of line.
#[derive(Debug, Clone)]
pub(crate) struct Rec {
    pub(crate) machine: u32,
    pub(crate) cluster: u32,
    pub(crate) release: u32,
    pub(crate) seq: u64,
    /// [`NO_SIG`] for successes.
    pub(crate) sig: u32,
    pub(crate) payload: Option<Box<Payload>>,
}

/// A word-packed bitset over dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedSet {
    words: Vec<u64>,
}

impl PackedSet {
    /// Inserts `bit`; returns `true` if newly added.
    pub(crate) fn insert(&mut self, bit: u32) -> bool {
        let word = (bit / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << (bit % 64);
        if self.words[word] & mask != 0 {
            return false;
        }
        self.words[word] |= mask;
        true
    }
}

/// Incrementally maintained per-signature aggregate (the inverted
/// index entry for one failure signature, owned by its home shard).
#[derive(Debug, Clone)]
pub(crate) struct GroupSlot {
    pub(crate) count: usize,
    pub(crate) first_seen: u64,
    pub(crate) machines: PackedSet,
    /// `(seq of first report from the machine, machine)` in arrival
    /// order; sorted by seq at query time.
    pub(crate) machine_order: Vec<(u64, u32)>,
    pub(crate) clusters: PackedSet,
    pub(crate) cluster_order: Vec<(u64, u32)>,
}

impl Default for GroupSlot {
    fn default() -> Self {
        GroupSlot {
            count: 0,
            first_seen: NEVER,
            machines: PackedSet::default(),
            machine_order: Vec::new(),
            clusters: PackedSet::default(),
            cluster_order: Vec::new(),
        }
    }
}

/// Per-release incremental tallies.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReleaseSlot {
    pub(crate) successes: usize,
    pub(crate) failures: usize,
    pub(crate) first_seen: u64,
}

impl Default for ReleaseSlot {
    fn default() -> Self {
        ReleaseSlot {
            successes: 0,
            failures: 0,
            first_seen: NEVER,
        }
    }
}

/// One lock stripe of the repository.
#[derive(Debug, Default)]
pub(crate) struct Shard {
    pub(crate) recs: Vec<Rec>,
    /// Inverted index, indexed by [`SigId`]; only signatures whose hash
    /// routes to this shard have live entries.
    pub(crate) groups: Vec<GroupSlot>,
    /// Distinct signatures with at least one report in this shard.
    pub(crate) distinct: usize,
    /// Per-cluster `(successes, failures)`, indexed by cluster id.
    pub(crate) cluster_tallies: Vec<(usize, usize)>,
    /// Per-release tallies, indexed by [`ReleaseId`].
    pub(crate) release_tallies: Vec<ReleaseSlot>,
    pub(crate) successes: usize,
    pub(crate) failures: usize,
    pub(crate) image_bytes: usize,
}

impl Shard {
    pub(crate) fn insert(&mut self, rec: Rec) {
        if let Some(p) = &rec.payload {
            if let Some(img) = &p.image {
                self.image_bytes += img.byte_size();
            }
        }
        let cluster = rec.cluster as usize;
        if cluster >= self.cluster_tallies.len() {
            self.cluster_tallies.resize(cluster + 1, (0, 0));
        }
        let release = rec.release as usize;
        if release >= self.release_tallies.len() {
            self.release_tallies
                .resize(release + 1, ReleaseSlot::default());
        }
        let rel = &mut self.release_tallies[release];
        rel.first_seen = rel.first_seen.min(rec.seq);
        if rec.sig == NO_SIG {
            self.successes += 1;
            self.cluster_tallies[cluster].0 += 1;
            rel.successes += 1;
        } else {
            self.failures += 1;
            self.cluster_tallies[cluster].1 += 1;
            rel.failures += 1;
            let sig = rec.sig as usize;
            if sig >= self.groups.len() {
                self.groups.resize_with(sig + 1, GroupSlot::default);
            }
            let slot = &mut self.groups[sig];
            if slot.count == 0 {
                self.distinct += 1;
            }
            slot.count += 1;
            slot.first_seen = slot.first_seen.min(rec.seq);
            if slot.machines.insert(rec.machine) {
                slot.machine_order.push((rec.seq, rec.machine));
            }
            if slot.clusters.insert(rec.cluster) {
                slot.cluster_order.push((rec.seq, rec.cluster));
            }
        }
        self.recs.push(rec);
    }

    /// Inserts a slice of pre-interned records whose sequence numbers
    /// start at `start` — the single-stripe hot loop. Equivalent to
    /// calling [`Shard::insert`] per record, but the signature/release
    /// tables are sized once from the interner lengths (`sig_count`,
    /// `release_count` — every id in `recs` is below them by
    /// construction), the cluster-table growth branch is the only
    /// remaining per-record capacity check, and the payload branches are
    /// gone entirely (interned records carry none).
    fn insert_interned(
        &mut self,
        recs: &[InternedReport],
        start: u64,
        sig_count: usize,
        release_count: usize,
    ) {
        if recs.is_empty() {
            return;
        }
        self.recs.reserve(recs.len());
        if release_count > self.release_tallies.len() {
            self.release_tallies
                .resize(release_count, ReleaseSlot::default());
        }
        if sig_count > self.groups.len() {
            self.groups.resize_with(sig_count, GroupSlot::default);
        }
        let mut successes = 0usize;
        let mut failures = 0usize;
        for (i, r) in recs.iter().enumerate() {
            let seq = start + i as u64;
            let cluster = r.cluster as usize;
            if cluster >= self.cluster_tallies.len() {
                self.cluster_tallies.resize(cluster + 1, (0, 0));
            }
            let rel = &mut self.release_tallies[r.release.index()];
            rel.first_seen = rel.first_seen.min(seq);
            match r.outcome {
                InternedOutcome::Success => {
                    successes += 1;
                    self.cluster_tallies[cluster].0 += 1;
                    rel.successes += 1;
                }
                InternedOutcome::Failure(sig) => {
                    failures += 1;
                    self.cluster_tallies[cluster].1 += 1;
                    rel.failures += 1;
                    let slot = &mut self.groups[sig.index()];
                    if slot.count == 0 {
                        self.distinct += 1;
                    }
                    slot.count += 1;
                    slot.first_seen = slot.first_seen.min(seq);
                    if slot.machines.insert(r.machine.0) {
                        slot.machine_order.push((seq, r.machine.0));
                    }
                    if slot.clusters.insert(r.cluster) {
                        slot.cluster_order.push((seq, r.cluster));
                    }
                }
            }
        }
        self.successes += successes;
        self.failures += failures;
        // A second tight pass appends to the archive: the extend
        // vectorises without the tally loop's branches in the way.
        self.recs.extend(recs.iter().enumerate().map(|(i, r)| Rec {
            machine: r.machine.0,
            cluster: r.cluster,
            release: r.release.0,
            seq: start + i as u64,
            sig: match r.outcome {
                InternedOutcome::Success => NO_SIG,
                InternedOutcome::Failure(sig) => sig.0,
            },
            payload: None,
        }));
    }
}

/// A name ↔ dense-`u32` interner (read-mostly under `RwLock`).
#[derive(Debug, Default)]
pub(crate) struct Interner {
    pub(crate) names: Vec<String>,
    index: HashMap<String, u32>,
}

impl Interner {
    pub(crate) fn intern(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        i
    }

    pub(crate) fn get(&self, name: &str) -> Option<u32> {
        self.index.get(name).copied()
    }

    pub(crate) fn name(&self, i: u32) -> &str {
        &self.names[i as usize]
    }
}

/// Signature interner plus each signature's home shard.
#[derive(Debug, Default)]
pub(crate) struct SigInterner {
    pub(crate) inner: Interner,
    /// Home shard per signature (hash of the name, masked).
    pub(crate) shards: Vec<u32>,
}

/// `(package, version)` interner.
#[derive(Debug, Default)]
pub(crate) struct ReleaseInterner {
    pub(crate) pairs: Vec<(String, String)>,
    index: HashMap<(String, String), u32>,
}

impl ReleaseInterner {
    pub(crate) fn intern(&mut self, package: &str, version: &str) -> u32 {
        // Lookups allocate the key pair; this is the string boundary
        // path — the interned ingest path resolves a ReleaseId once.
        let key = (package.to_string(), version.to_string());
        if let Some(&i) = self.index.get(&key) {
            return i;
        }
        let i = u32::try_from(self.pairs.len()).expect("release interner overflow");
        self.pairs.push(key.clone());
        self.index.insert(key, i);
        i
    }

    pub(crate) fn get(&self, package: &str, version: &str) -> Option<u32> {
        self.index
            .get(&(package.to_string(), version.to_string()))
            .copied()
    }

    pub(crate) fn pair(&self, i: u32) -> (&str, &str) {
        let (p, v) = &self.pairs[i as usize];
        (p, v)
    }
}

/// FNV-1a over a signature name, for shard routing.
pub(crate) fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix-style integer finaliser, for machine-id shard routing.
pub(crate) fn mix_u32(x: u32) -> u64 {
    let mut z = u64::from(x).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Smallest power of two ≥ `n` (and ≥ 1).
fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

// ---------------------------------------------------------------------
// The repository
// ---------------------------------------------------------------------

/// The Upgrade Report Repository: sharded, interned, incrementally
/// indexed, thread-safe, and serialisable.
///
/// # Examples
///
/// ```
/// use mirage_report::{Report, ReportImage, Urr};
/// let urr = Urr::new();
/// urr.deposit(Report::success("m1", 0, "mysql", "5.0.27"));
/// urr.deposit(Report::failure(
///     "m2", 1, "mysql", "5.0.27", "php/crash", "crash", ReportImage::default(),
/// ));
/// assert_eq!(urr.stats().failures, 1);
/// assert_eq!(urr.failure_groups().len(), 1);
/// assert_eq!(urr.top_k_failure_groups(1)[0].signature, "php/crash");
/// ```
#[derive(Debug)]
pub struct Urr {
    pub(crate) shards: Box<[Mutex<Shard>]>,
    pub(crate) shard_mask: u64,
    pub(crate) seq: AtomicU64,
    pub(crate) machines: RwLock<Interner>,
    pub(crate) sigs: RwLock<SigInterner>,
    pub(crate) releases: RwLock<ReleaseInterner>,
    pub(crate) telemetry: Telemetry,
}

impl Default for Urr {
    fn default() -> Self {
        Self::new()
    }
}

impl Urr {
    /// Creates an empty repository with `next_pow2(available threads)`
    /// shards.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_shards(next_pow2(threads))
    }

    /// Creates an empty repository with an explicit shard count
    /// (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        let n = next_pow2(shards);
        Urr {
            shards: (0..n).map(|_| Mutex::new(Shard::default())).collect(),
            shard_mask: (n - 1) as u64,
            seq: AtomicU64::new(0),
            machines: RwLock::new(Interner::default()),
            sigs: RwLock::new(SigInterner::default()),
            releases: RwLock::new(ReleaseInterner::default()),
            telemetry: Telemetry::noop(),
        }
    }

    /// Attaches a telemetry handle recording `urr.*` counters: deposit
    /// and batch counts, batch-size and query-latency histograms, and
    /// shard-lock contention.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The next sequence number that will be assigned — equivalently,
    /// the number of sequence slots claimed so far. Serves as the
    /// repository's logical clock: the storage layer stamps WAL frames
    /// and snapshots with it, and [`crate::UrrSnapshot`] reports it as
    /// the frozen view's `as_of` watermark.
    pub fn next_seq(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    // -- interning ----------------------------------------------------

    /// Interns a reporter machine name.
    pub fn intern_machine(&self, name: &str) -> MachineRef {
        if let Some(i) = self.machines.read().expect("urr poisoned").get(name) {
            return MachineRef(i);
        }
        MachineRef(self.machines.write().expect("urr poisoned").intern(name))
    }

    /// Bulk-interns a fleet of machine names (one write lock for all).
    pub fn intern_machines<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> Vec<MachineRef> {
        let mut table = self.machines.write().expect("urr poisoned");
        names
            .into_iter()
            .map(|n| MachineRef(table.intern(n)))
            .collect()
    }

    /// Interns a failure signature (assigning its home shard).
    pub fn intern_signature(&self, name: &str) -> SigId {
        if let Some(i) = self.sigs.read().expect("urr poisoned").inner.get(name) {
            return SigId(i);
        }
        let mut sigs = self.sigs.write().expect("urr poisoned");
        let i = sigs.inner.intern(name);
        if i as usize >= sigs.shards.len() {
            debug_assert_eq!(i as usize, sigs.shards.len());
            sigs.shards.push((hash_name(name) & self.shard_mask) as u32);
        }
        SigId(i)
    }

    /// Interns a `(package, version)` release pair.
    pub fn intern_release(&self, package: &str, version: &str) -> ReleaseId {
        if let Some(i) = self
            .releases
            .read()
            .expect("urr poisoned")
            .get(package, version)
        {
            return ReleaseId(i);
        }
        ReleaseId(
            self.releases
                .write()
                .expect("urr poisoned")
                .intern(package, version),
        )
    }

    // -- ingest -------------------------------------------------------

    /// Deposits a report, assigning its sequence number.
    ///
    /// Returns the assigned sequence number. This is the string-boundary
    /// compatibility path; hot ingest should prefer
    /// [`Urr::deposit_batch`] or [`Urr::deposit_interned_batch`].
    pub fn deposit(&self, report: Report) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.insert_report(report, seq);
        self.telemetry.counter("urr.deposits", 1);
        seq
    }

    /// Deposits a batch of reports, claiming one contiguous sequence
    /// range with a single atomic add. Returns the range.
    pub fn deposit_batch(&self, reports: Vec<Report>) -> Range<u64> {
        let n = reports.len() as u64;
        let start = self.seq.fetch_add(n, Ordering::Relaxed);
        for (i, report) in reports.into_iter().enumerate() {
            self.insert_report(report, start + i as u64);
        }
        self.note_batch(n);
        start..start + n
    }

    /// Deposits a batch of pre-interned records: the allocation-free
    /// ingest path the simulator uses. Each shard lock is taken once
    /// per batch.
    pub fn deposit_interned_batch(&self, recs: &[InternedReport]) -> Range<u64> {
        let n = recs.len() as u64;
        let start = self.seq.fetch_add(n, Ordering::Relaxed);
        if self.shards.len() == 1 {
            // Single-stripe fast path: no routing, no regrouping buffer —
            // records go straight from the caller's slice into the shard.
            let sig_count = self.sigs.read().expect("urr poisoned").inner.names.len();
            let release_count = self.releases.read().expect("urr poisoned").pairs.len();
            self.lock_shard(0)
                .insert_interned(recs, start, sig_count, release_count);
            self.note_batch(n);
            return start..start + n;
        }
        let sigs = self.sigs.read().expect("urr poisoned");
        let cap = recs.len() / self.shards.len() + 1;
        let mut by_shard: Vec<Vec<Rec>> = (0..self.shards.len())
            .map(|_| Vec::with_capacity(cap))
            .collect();
        for (i, r) in recs.iter().enumerate() {
            let (sig, shard) = match r.outcome {
                InternedOutcome::Success => {
                    (NO_SIG, (mix_u32(r.machine.0) & self.shard_mask) as usize)
                }
                InternedOutcome::Failure(sig) => (sig.0, sigs.shards[sig.index()] as usize),
            };
            by_shard[shard].push(Rec {
                machine: r.machine.0,
                cluster: r.cluster,
                release: r.release.0,
                seq: start + i as u64,
                sig,
                payload: None,
            });
        }
        drop(sigs);
        for (shard, items) in by_shard.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let mut guard = self.lock_shard(shard);
            guard.recs.reserve(items.len());
            for rec in items {
                guard.insert(rec);
            }
        }
        self.note_batch(n);
        start..start + n
    }

    /// Locks one shard, counting contention (a failed `try_lock`) into
    /// `urr.shard_contention`.
    pub(crate) fn lock_shard(&self, shard: usize) -> std::sync::MutexGuard<'_, Shard> {
        match self.shards[shard].try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                self.telemetry.counter("urr.shard_contention", 1);
                self.shards[shard].lock().expect("urr poisoned")
            }
            Err(std::sync::TryLockError::Poisoned(_)) => panic!("urr poisoned"),
        }
    }

    pub(crate) fn note_batch(&self, n: u64) {
        self.telemetry.counter("urr.deposits", n);
        self.telemetry.counter("urr.deposit_batches", 1);
        self.telemetry.observe("urr.batch_size", n);
    }

    /// Interns one boundary report and inserts it under `seq`.
    fn insert_report(&self, report: Report, seq: u64) {
        let machine = self.intern_machine(&report.machine).0;
        let release = self.intern_release(&report.package, &report.version).0;
        let (sig, detail) = match report.outcome {
            ReportOutcome::Success => (NO_SIG, String::new()),
            ReportOutcome::Failure { signature, detail } => {
                (self.intern_signature(&signature).0, detail)
            }
        };
        let payload = if detail.is_empty() && report.image.is_none() {
            None
        } else {
            Some(Box::new(Payload {
                detail,
                image: report.image,
            }))
        };
        let shard = if sig == NO_SIG {
            (mix_u32(machine) & self.shard_mask) as usize
        } else {
            self.sigs.read().expect("urr poisoned").shards[sig as usize] as usize
        };
        self.lock_shard(shard).insert(Rec {
            machine,
            cluster: u32::try_from(report.cluster).expect("cluster id overflow"),
            release,
            seq,
            sig,
            payload,
        });
    }

    // -- queries ------------------------------------------------------

    /// Runs a query closure, recording `urr.queries` and (when
    /// telemetry is live) an `urr.query_ns` latency sample.
    fn query<T>(&self, f: impl FnOnce(&Self) -> T) -> T {
        self.telemetry.counter("urr.queries", 1);
        if self.telemetry.enabled() {
            let t0 = Instant::now();
            let out = f(self);
            self.telemetry
                .observe("urr.query_ns", t0.elapsed().as_nanos() as u64);
            out
        } else {
            f(self)
        }
    }

    /// Materialises one group slot into a [`FailureGroup`].
    fn materialize(&self, sig: u32, slot: &GroupSlot) -> FailureGroup {
        let machines = self.machines.read().expect("urr poisoned");
        let sigs = self.sigs.read().expect("urr poisoned");
        let mut machine_order = slot.machine_order.clone();
        machine_order.sort_unstable();
        let mut cluster_order = slot.cluster_order.clone();
        cluster_order.sort_unstable();
        FailureGroup {
            signature: sigs.inner.name(sig).to_string(),
            count: slot.count,
            machines: machine_order
                .into_iter()
                .map(|(_, m)| machines.name(m).to_string())
                .collect(),
            clusters: cluster_order.into_iter().map(|(_, c)| c as usize).collect(),
            first_seen: slot.first_seen,
        }
    }

    /// Groups failure reports by signature — the vendor's deduplicated
    /// problem list, ordered by discovery (first-seen sequence number).
    pub fn failure_groups(&self) -> Vec<FailureGroup> {
        self.query(|urr| {
            let mut out: Vec<FailureGroup> = Vec::new();
            for shard in urr.shards.iter() {
                let shard = shard.lock().expect("urr poisoned");
                for (sig, slot) in shard.groups.iter().enumerate() {
                    if slot.count > 0 {
                        out.push(urr.materialize(sig as u32, slot));
                    }
                }
            }
            out.sort_by_key(|g| g.first_seen);
            out
        })
    }

    /// The `k` largest failure groups, by report count (ties broken by
    /// earlier discovery). Only the winners are materialised.
    pub fn top_k_failure_groups(&self, k: usize) -> Vec<FailureGroup> {
        self.query(|urr| {
            // Pass 1: scalar (count, first_seen, shard, sig) per group.
            let mut keys: Vec<(usize, u64, usize, u32)> = Vec::new();
            for (si, shard) in urr.shards.iter().enumerate() {
                let shard = shard.lock().expect("urr poisoned");
                for (sig, slot) in shard.groups.iter().enumerate() {
                    if slot.count > 0 {
                        keys.push((slot.count, slot.first_seen, si, sig as u32));
                    }
                }
            }
            keys.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            keys.truncate(k);
            // Pass 2: materialise only the winners.
            keys.into_iter()
                .map(|(_, _, si, sig)| {
                    let shard = urr.shards[si].lock().expect("urr poisoned");
                    urr.materialize(sig, &shard.groups[sig as usize])
                })
                .collect()
        })
    }

    /// Per-cluster success/failure tallies, ordered by cluster id.
    /// Clusters that never reported are omitted.
    pub fn cluster_failure_rates(&self) -> Vec<ClusterFailureRate> {
        self.query(|urr| {
            let mut tallies: Vec<(usize, usize)> = Vec::new();
            for shard in urr.shards.iter() {
                let shard = shard.lock().expect("urr poisoned");
                if shard.cluster_tallies.len() > tallies.len() {
                    tallies.resize(shard.cluster_tallies.len(), (0, 0));
                }
                for (c, (s, f)) in shard.cluster_tallies.iter().enumerate() {
                    tallies[c].0 += s;
                    tallies[c].1 += f;
                }
            }
            tallies
                .into_iter()
                .enumerate()
                .filter(|(_, (s, f))| s + f > 0)
                .map(|(cluster, (successes, failures))| ClusterFailureRate {
                    cluster,
                    successes,
                    failures,
                })
                .collect()
        })
    }

    /// Drill-down: the distinct machines that reported `signature`, in
    /// first-report order. `None` if the signature was never reported.
    pub fn machines_for_signature(&self, signature: &str) -> Option<Vec<String>> {
        self.query(|urr| {
            let (sig, shard) = urr.sig_home(signature)?;
            let shard = urr.shards[shard].lock().expect("urr poisoned");
            let slot = shard.groups.get(sig as usize)?;
            if slot.count == 0 {
                return None;
            }
            let machines = urr.machines.read().expect("urr poisoned");
            let mut order = slot.machine_order.clone();
            order.sort_unstable();
            Some(
                order
                    .into_iter()
                    .map(|(_, m)| machines.name(m).to_string())
                    .collect(),
            )
        })
    }

    /// Drill-down: the distinct clusters that reported `signature`, in
    /// first-report order. `None` if the signature was never reported.
    pub fn clusters_for_signature(&self, signature: &str) -> Option<Vec<usize>> {
        self.query(|urr| {
            let (sig, shard) = urr.sig_home(signature)?;
            let shard = urr.shards[shard].lock().expect("urr poisoned");
            let slot = shard.groups.get(sig as usize)?;
            if slot.count == 0 {
                return None;
            }
            let mut order = slot.cluster_order.clone();
            order.sort_unstable();
            Some(order.into_iter().map(|(_, c)| c as usize).collect())
        })
    }

    /// Time-windowed discovery query over the sequence counter: the
    /// failure groups *first seen* in `window` (half-open), in
    /// discovery order. A vendor asks "what broke since I last looked"
    /// by windowing on its last-seen sequence number.
    pub fn first_seen_in(&self, window: Range<u64>) -> Vec<FailureGroup> {
        self.query(|urr| {
            let mut out: Vec<FailureGroup> = Vec::new();
            for shard in urr.shards.iter() {
                let shard = shard.lock().expect("urr poisoned");
                for (sig, slot) in shard.groups.iter().enumerate() {
                    if slot.count > 0 && window.contains(&slot.first_seen) {
                        out.push(urr.materialize(sig as u32, slot));
                    }
                }
            }
            out.sort_by_key(|g| g.first_seen);
            out
        })
    }

    /// Resolves a signature name to `(sig id, home shard)`.
    fn sig_home(&self, signature: &str) -> Option<(u32, usize)> {
        let sigs = self.sigs.read().expect("urr poisoned");
        let sig = sigs.inner.get(signature)?;
        Some((sig, sigs.shards[sig as usize] as usize))
    }

    /// Computes aggregate statistics (a merge of per-shard counters —
    /// no report scan).
    pub fn stats(&self) -> UrrStats {
        self.query(|urr| {
            let mut stats = UrrStats::default();
            for shard in urr.shards.iter() {
                let shard = shard.lock().expect("urr poisoned");
                stats.total += shard.recs.len();
                stats.successes += shard.successes;
                stats.failures += shard.failures;
                stats.distinct_failures += shard.distinct;
                stats.image_bytes += shard.image_bytes;
            }
            stats
        })
    }

    /// Summarises outcomes per `(package, version)`, in first-seen
    /// order.
    pub fn release_summaries(&self) -> Vec<ReleaseSummary> {
        self.query(|urr| {
            let mut slots: Vec<ReleaseSlot> = Vec::new();
            for shard in urr.shards.iter() {
                let shard = shard.lock().expect("urr poisoned");
                if shard.release_tallies.len() > slots.len() {
                    slots.resize(shard.release_tallies.len(), ReleaseSlot::default());
                }
                for (i, slot) in shard.release_tallies.iter().enumerate() {
                    slots[i].successes += slot.successes;
                    slots[i].failures += slot.failures;
                    slots[i].first_seen = slots[i].first_seen.min(slot.first_seen);
                }
            }
            let releases = urr.releases.read().expect("urr poisoned");
            let mut rows: Vec<(u64, ReleaseSummary)> = slots
                .into_iter()
                .enumerate()
                .filter(|(_, s)| s.successes + s.failures > 0)
                .map(|(i, s)| {
                    let (package, version) = releases.pair(i as u32);
                    (
                        s.first_seen,
                        ReleaseSummary {
                            package: package.to_string(),
                            version: version.to_string(),
                            successes: s.successes,
                            failures: s.failures,
                        },
                    )
                })
                .collect();
            rows.sort_by_key(|row| row.0);
            rows.into_iter().map(|(_, s)| s).collect()
        })
    }

    /// The debugging front-loading profile: for each distinct failure,
    /// the fraction of all reports that had been deposited when it was
    /// *first* seen.
    pub fn discovery_profile(&self) -> Vec<(String, f64)> {
        let total = self.stats().total;
        if total == 0 {
            return Vec::new();
        }
        self.failure_groups()
            .into_iter()
            .map(|g| (g.signature, g.first_seen as f64 / total as f64))
            .collect()
    }

    // -- snapshots ----------------------------------------------------

    /// Reconstructs one stored record as a boundary [`Report`].
    fn rec_to_report(
        rec: &Rec,
        machines: &Interner,
        sigs: &SigInterner,
        releases: &ReleaseInterner,
    ) -> Report {
        let (package, version) = releases.pair(rec.release);
        let (outcome, image) = if rec.sig == NO_SIG {
            (
                ReportOutcome::Success,
                rec.payload.as_ref().and_then(|p| p.image.clone()),
            )
        } else {
            let (detail, image) = match &rec.payload {
                Some(p) => (p.detail.clone(), p.image.clone()),
                None => (String::new(), None),
            };
            (
                ReportOutcome::Failure {
                    signature: sigs.inner.name(rec.sig).to_string(),
                    detail,
                },
                image,
            )
        };
        Report {
            machine: machines.name(rec.machine).to_string(),
            cluster: rec.cluster as usize,
            package: package.to_string(),
            version: version.to_string(),
            outcome,
            seq: rec.seq,
            image,
        }
    }

    /// Collects reports matching `keep` from every shard, ordered by
    /// sequence number (deposit order).
    fn collect(&self, keep: impl Fn(&Rec) -> bool) -> Vec<Report> {
        let machines = self.machines.read().expect("urr poisoned");
        let sigs = self.sigs.read().expect("urr poisoned");
        let releases = self.releases.read().expect("urr poisoned");
        let mut out: Vec<Report> = Vec::new();
        for shard in self.shards.iter() {
            let shard = shard.lock().expect("urr poisoned");
            for rec in shard.recs.iter().filter(|r| keep(r)) {
                out.push(Self::rec_to_report(rec, &machines, &sigs, &releases));
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Returns a snapshot of all reports (in deposit order).
    pub fn all(&self) -> Vec<Report> {
        self.query(|urr| urr.collect(|_| true))
    }

    /// Returns the reports for one package version.
    pub fn for_version(&self, package: &str, version: &str) -> Vec<Report> {
        self.query(|urr| {
            let Some(release) = urr
                .releases
                .read()
                .expect("urr poisoned")
                .get(package, version)
            else {
                return Vec::new();
            };
            urr.collect(|r| r.release == release)
        })
    }

    /// Returns the reports from one cluster.
    pub fn for_cluster(&self, cluster: usize) -> Vec<Report> {
        self.query(|urr| {
            let Ok(cluster) = u32::try_from(cluster) else {
                return Vec::new();
            };
            urr.collect(|r| r.cluster == cluster)
        })
    }

    /// Serialises the full repository to pretty-printed JSON (an array
    /// of report objects, in deposit order) — the same document format
    /// as [`crate::reference::Urr::to_json`].
    pub fn to_json(&self) -> String {
        Value::Arr(self.all().iter().map(Report::to_json).collect()).to_pretty()
    }

    /// Restores a repository from JSON produced by [`Urr::to_json`]
    /// (or the reference implementation). Stored sequence numbers are
    /// preserved; new deposits continue after the maximum.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        let parsed = Value::parse(json)?;
        let items = parsed
            .as_array()
            .ok_or_else(|| JsonError::Shape("expected an array of reports".into()))?;
        let urr = Urr::new();
        let mut next_seq = 0u64;
        for item in items {
            let report = Report::from_json(item)?;
            next_seq = next_seq.max(report.seq + 1);
            let seq = report.seq;
            urr.insert_report(report, seq);
        }
        urr.seq.store(next_seq, Ordering::Relaxed);
        Ok(urr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ReportImage;

    fn failure(machine: &str, cluster: usize, sig: &str) -> Report {
        Report::failure(
            machine,
            cluster,
            "mysql",
            "5.0.27",
            sig,
            "detail",
            ReportImage::new("digest", vec!["ctx".into()], vec![], vec![]),
        )
    }

    #[test]
    fn deposit_assigns_sequence() {
        let urr = Urr::new();
        assert_eq!(urr.deposit(Report::success("a", 0, "p", "1.0.0")), 0);
        assert_eq!(urr.deposit(Report::success("b", 0, "p", "1.0.0")), 1);
        let all = urr.all();
        assert_eq!(all[0].seq, 0);
        assert_eq!(all[1].seq, 1);
        assert_eq!(all[0].machine, "a");
    }

    #[test]
    fn failure_groups_deduplicate() {
        let urr = Urr::with_shards(4);
        urr.deposit(failure("m1", 0, "php/crash"));
        urr.deposit(failure("m2", 0, "php/crash"));
        urr.deposit(failure("m2", 0, "php/crash")); // same machine again
        urr.deposit(failure("m3", 1, "mycnf/fail"));
        urr.deposit(Report::success("m4", 2, "mysql", "5.0.27"));
        let groups = urr.failure_groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].signature, "php/crash");
        assert_eq!(groups[0].count, 3);
        assert_eq!(groups[0].machines, vec!["m1", "m2"]);
        assert_eq!(groups[0].clusters, vec![0]);
        assert_eq!(groups[1].signature, "mycnf/fail");
    }

    #[test]
    fn top_k_orders_by_count_then_discovery() {
        let urr = Urr::with_shards(4);
        urr.deposit(failure("m1", 0, "rare"));
        for i in 0..5 {
            urr.deposit(failure(&format!("p{i}"), 1, "prevalent"));
        }
        for i in 0..3 {
            urr.deposit(failure(&format!("q{i}"), 2, "medium"));
        }
        let top = urr.top_k_failure_groups(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].signature, "prevalent");
        assert_eq!(top[0].count, 5);
        assert_eq!(top[1].signature, "medium");
        // Ties by discovery order.
        urr.deposit(failure("x", 3, "tie-late"));
        urr.deposit(failure("y", 3, "tie-late"));
        urr.deposit(failure("z", 4, "tie-early"));
        let all = urr.top_k_failure_groups(10);
        assert_eq!(all.len(), 5);
        // A k beyond the group count returns everything.
        assert_eq!(urr.top_k_failure_groups(100).len(), 5);
    }

    #[test]
    fn cluster_failure_rates_tally() {
        let urr = Urr::with_shards(2);
        urr.deposit(Report::success("a", 0, "p", "1"));
        urr.deposit(Report::success("b", 0, "p", "1"));
        urr.deposit(failure("c", 0, "sig"));
        urr.deposit(failure("d", 2, "sig"));
        let rates = urr.cluster_failure_rates();
        assert_eq!(rates.len(), 2, "cluster 1 never reported");
        assert_eq!(rates[0].cluster, 0);
        assert_eq!((rates[0].successes, rates[0].failures), (2, 1));
        assert!((rates[0].rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(rates[1].cluster, 2);
        assert_eq!(rates[1].rate(), 1.0);
        let empty = ClusterFailureRate {
            cluster: 9,
            successes: 0,
            failures: 0,
        };
        assert_eq!(empty.rate(), 0.0);
    }

    #[test]
    fn signature_drilldowns() {
        let urr = Urr::with_shards(4);
        urr.deposit(failure("m2", 5, "sig-a"));
        urr.deposit(failure("m1", 3, "sig-a"));
        urr.deposit(failure("m2", 5, "sig-a"));
        assert_eq!(
            urr.machines_for_signature("sig-a").unwrap(),
            vec!["m2", "m1"],
            "first-report order"
        );
        assert_eq!(urr.clusters_for_signature("sig-a").unwrap(), vec![5, 3]);
        assert_eq!(urr.machines_for_signature("nope"), None);
        assert_eq!(urr.clusters_for_signature("nope"), None);
    }

    #[test]
    fn first_seen_window_queries() {
        let urr = Urr::with_shards(4);
        urr.deposit(failure("m0", 0, "early")); // seq 0
        urr.deposit(Report::success("m1", 0, "mysql", "5.0.27")); // seq 1
        urr.deposit(failure("m2", 0, "mid")); // seq 2
        urr.deposit(failure("m3", 0, "early")); // seq 3 (not first)
        urr.deposit(failure("m4", 0, "late")); // seq 4
        let names = |groups: Vec<FailureGroup>| {
            groups
                .into_iter()
                .map(|g| g.signature)
                .collect::<Vec<String>>()
        };
        assert_eq!(names(urr.first_seen_in(0..5)), vec!["early", "mid", "late"]);
        assert_eq!(names(urr.first_seen_in(1..4)), vec!["mid"]);
        assert_eq!(names(urr.first_seen_in(4..u64::MAX)), vec!["late"]);
        assert!(urr.first_seen_in(5..9).is_empty());
    }

    #[test]
    fn stats_aggregate() {
        let urr = Urr::new();
        urr.deposit(Report::success("m1", 0, "p", "1.0.0"));
        urr.deposit(failure("m2", 0, "sig"));
        let stats = urr.stats();
        assert_eq!(stats.total, 2);
        assert_eq!(stats.successes, 1);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.distinct_failures, 1);
        assert!(stats.image_bytes > 0);
    }

    #[test]
    fn queries_filter_correctly() {
        let urr = Urr::with_shards(2);
        urr.deposit(Report::success("m1", 0, "mysql", "5.0.27"));
        urr.deposit(Report::success("m2", 1, "mysql", "5.0.28"));
        urr.deposit(Report::success("m3", 1, "firefox", "2.0.0"));
        assert_eq!(urr.for_version("mysql", "5.0.27").len(), 1);
        assert_eq!(urr.for_version("mysql", "9.9.9").len(), 0);
        assert_eq!(urr.for_cluster(1).len(), 2);
        assert_eq!(urr.for_cluster(7).len(), 0);
    }

    #[test]
    fn json_roundtrip_preserves_sequence() {
        let urr = Urr::new();
        urr.deposit(Report::success("m1", 0, "p", "1.0.0"));
        urr.deposit(failure("m2", 1, "sig"));
        let json = urr.to_json();
        let restored = Urr::from_json(&json).unwrap();
        assert_eq!(restored.all(), urr.all());
        // New deposits continue the sequence.
        assert_eq!(restored.deposit(Report::success("m3", 0, "p", "1.0.0")), 2);
        // And the document round-trips through the reference too.
        let reference = crate::reference::Urr::from_json(&json).unwrap();
        assert_eq!(reference.all(), urr.all());
    }

    #[test]
    fn interned_batch_path() {
        let urr = Urr::with_shards(4);
        let machines = urr.intern_machines(["a", "b", "c"]);
        let rel = urr.intern_release("upgrade", "r0");
        let sig = urr.intern_signature("prob");
        let recs = [
            InternedReport {
                machine: machines[0],
                cluster: 0,
                release: rel,
                outcome: InternedOutcome::Success,
            },
            InternedReport {
                machine: machines[1],
                cluster: 1,
                release: rel,
                outcome: InternedOutcome::Failure(sig),
            },
            InternedReport {
                machine: machines[2],
                cluster: 1,
                release: rel,
                outcome: InternedOutcome::Failure(sig),
            },
        ];
        let range = urr.deposit_interned_batch(&recs);
        assert_eq!(range, 0..3);
        let stats = urr.stats();
        assert_eq!((stats.successes, stats.failures), (1, 2));
        let groups = urr.failure_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].machines, vec!["b", "c"]);
        assert_eq!(groups[0].clusters, vec![1]);
        assert_eq!(groups[0].first_seen, 1);
        // Reconstructed interned failures have empty detail, no image.
        let all = urr.all();
        assert_eq!(all.len(), 3);
        assert_eq!(all[1].outcome.signature(), Some("prob"));
        assert!(all[1].image.is_none());
        // Re-interning is idempotent.
        assert_eq!(urr.intern_machine("a"), machines[0]);
        assert_eq!(urr.intern_signature("prob"), sig);
        assert_eq!(urr.intern_release("upgrade", "r0"), rel);
    }

    #[test]
    fn deposit_batch_claims_contiguous_range() {
        let urr = Urr::new();
        let r1 = urr.deposit_batch(vec![
            Report::success("a", 0, "p", "1"),
            Report::success("b", 0, "p", "1"),
        ]);
        assert_eq!(r1, 0..2);
        let r2 = urr.deposit_batch(vec![failure("c", 0, "s")]);
        assert_eq!(r2, 2..3);
        assert_eq!(urr.stats().total, 3);
        assert!(urr.deposit_batch(Vec::new()).is_empty());
    }

    #[test]
    fn concurrent_deposits() {
        use std::sync::Arc;
        let urr = Arc::new(Urr::with_shards(8));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let urr = Arc::clone(&urr);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        urr.deposit(Report::success(format!("m{i}-{j}"), i, "p", "1.0.0"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let all = urr.all();
        assert_eq!(all.len(), 400);
        // Sequence numbers are unique and the snapshot is seq-ordered.
        let seqs: Vec<u64> = all.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(seqs.len(), 400);
    }

    #[test]
    fn telemetry_counters_record_ingest_and_queries() {
        use std::sync::Arc;

        use mirage_telemetry::Registry;

        let registry = Arc::new(Registry::new(64));
        let urr =
            Urr::with_shards(2).with_telemetry(Telemetry::from_registry(Arc::clone(&registry)));
        urr.deposit(Report::success("a", 0, "p", "1"));
        urr.deposit_batch(vec![failure("b", 0, "s"), failure("c", 1, "s")]);
        let _ = urr.failure_groups();
        let _ = urr.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["urr.deposits"], 3);
        assert_eq!(snap.counters["urr.deposit_batches"], 1);
        assert_eq!(snap.counters["urr.queries"], 2);
        assert_eq!(snap.histograms["urr.batch_size"].count, 1);
        assert_eq!(snap.histograms["urr.query_ns"].count, 2);
    }

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        assert_eq!(Urr::with_shards(1).shard_count(), 1);
        assert_eq!(Urr::with_shards(3).shard_count(), 4);
        assert_eq!(Urr::with_shards(8).shard_count(), 8);
        assert!(Urr::new().shard_count().is_power_of_two());
    }

    #[test]
    fn display_forms() {
        assert_eq!(MachineRef(7).to_string(), "rm#7");
        assert_eq!(SigId(2).to_string(), "sig#2");
        assert_eq!(ReleaseId(1).to_string(), "rel#1");
        assert_eq!(MachineRef(3).index(), 3);
        assert_eq!(SigId(3).index(), 3);
        assert_eq!(ReleaseId(3).index(), 3);
    }

    #[test]
    fn release_summaries_track_versions_in_order() {
        let urr = Urr::with_shards(4);
        urr.deposit(Report::failure(
            "m1",
            0,
            "app",
            "2.0.0",
            "sig",
            "d",
            ReportImage::default(),
        ));
        urr.deposit(Report::success("m2", 0, "app", "2.0.0"));
        urr.deposit(Report::success("m1", 0, "app", "2.0.1"));
        urr.deposit(Report::success("m3", 1, "app", "2.0.1"));
        let summaries = urr.release_summaries();
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].version, "2.0.0");
        assert_eq!((summaries[0].successes, summaries[0].failures), (1, 1));
        assert_eq!(summaries[1].version, "2.0.1");
        assert_eq!((summaries[1].successes, summaries[1].failures), (2, 0));
    }

    #[test]
    fn empty_urr_analytics() {
        let urr = Urr::new();
        assert!(urr.release_summaries().is_empty());
        assert!(urr.discovery_profile().is_empty());
        assert!(urr.failure_groups().is_empty());
        assert!(urr.top_k_failure_groups(5).is_empty());
        assert!(urr.cluster_failure_rates().is_empty());
        assert!(urr.all().is_empty());
        assert_eq!(urr.stats(), UrrStats::default());
    }
}
