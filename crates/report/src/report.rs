//! Report records.

use mirage_telemetry::json::Value;

use crate::codec::{field, shape, str_field, u64_field, JsonError};
use crate::image::ReportImage;

/// The succinct outcome of one upgrade test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportOutcome {
    /// The upgrade passed testing and was integrated.
    Success,
    /// Testing failed.
    Failure {
        /// The failure signature: application plus failure kind — what
        /// the vendor groups duplicate reports by.
        signature: String,
        /// Human-readable detail (the validator's failure description).
        detail: String,
    },
}

impl ReportOutcome {
    /// Returns `true` for a success.
    pub fn is_success(&self) -> bool {
        matches!(self, ReportOutcome::Success)
    }

    /// Returns the failure signature, if failed.
    pub fn signature(&self) -> Option<&str> {
        match self {
            ReportOutcome::Success => None,
            ReportOutcome::Failure { signature, .. } => Some(signature),
        }
    }

    /// Serialises the outcome as a tagged JSON object.
    pub fn to_json(&self) -> Value {
        match self {
            ReportOutcome::Success => Value::obj([("kind", Value::str("success"))]),
            ReportOutcome::Failure { signature, detail } => Value::obj([
                ("kind", Value::str("failure")),
                ("signature", Value::str(signature.clone())),
                ("detail", Value::str(detail.clone())),
            ]),
        }
    }

    /// Restores an outcome from its tagged JSON form.
    pub fn from_json(v: &Value) -> Result<Self, JsonError> {
        match str_field(v, "kind")?.as_str() {
            "success" => Ok(ReportOutcome::Success),
            "failure" => Ok(ReportOutcome::Failure {
                signature: str_field(v, "signature")?,
                detail: str_field(v, "detail")?,
            }),
            other => Err(shape(format!("unknown outcome kind '{other}'"))),
        }
    }
}

/// One report deposited in the URR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Reporting machine.
    pub machine: String,
    /// The machine's cluster of deployment.
    pub cluster: usize,
    /// Upgraded package name.
    pub package: String,
    /// Version string of the tested release.
    pub version: String,
    /// Test outcome.
    pub outcome: ReportOutcome,
    /// Logical timestamp (assigned by the URR on deposit).
    pub seq: u64,
    /// Reproduction image (present on failures).
    pub image: Option<ReportImage>,
}

impl Report {
    /// Creates a success report (no image needed).
    pub fn success(
        machine: impl Into<String>,
        cluster: usize,
        package: impl Into<String>,
        version: impl Into<String>,
    ) -> Self {
        Report {
            machine: machine.into(),
            cluster,
            package: package.into(),
            version: version.into(),
            outcome: ReportOutcome::Success,
            seq: 0,
            image: None,
        }
    }

    /// Creates a failure report carrying a reproduction image.
    pub fn failure(
        machine: impl Into<String>,
        cluster: usize,
        package: impl Into<String>,
        version: impl Into<String>,
        signature: impl Into<String>,
        detail: impl Into<String>,
        image: ReportImage,
    ) -> Self {
        Report {
            machine: machine.into(),
            cluster,
            package: package.into(),
            version: version.into(),
            outcome: ReportOutcome::Failure {
                signature: signature.into(),
                detail: detail.into(),
            },
            seq: 0,
            image: Some(image),
        }
    }

    /// Serialises the report as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("machine", Value::str(self.machine.clone())),
            ("cluster", Value::from(self.cluster)),
            ("package", Value::str(self.package.clone())),
            ("version", Value::str(self.version.clone())),
            ("outcome", self.outcome.to_json()),
            ("seq", Value::from(self.seq)),
            (
                "image",
                match &self.image {
                    Some(img) => img.to_json(),
                    None => Value::Null,
                },
            ),
        ])
    }

    /// Restores a report from its JSON object form.
    pub fn from_json(v: &Value) -> Result<Self, JsonError> {
        let image_value = field(v, "image")?;
        let image = if image_value.is_null() {
            None
        } else {
            Some(ReportImage::from_json(image_value)?)
        };
        Ok(Report {
            machine: str_field(v, "machine")?,
            cluster: u64_field(v, "cluster")? as usize,
            package: str_field(v, "package")?,
            version: str_field(v, "version")?,
            outcome: ReportOutcome::from_json(field(v, "outcome")?)?,
            seq: u64_field(v, "seq")?,
            image,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let ok = Report::success("m1", 3, "mysql", "5.0.27");
        assert!(ok.outcome.is_success());
        assert_eq!(ok.outcome.signature(), None);
        assert!(ok.image.is_none());

        let bad = Report::failure(
            "m2",
            4,
            "mysql",
            "5.0.27",
            "php/crash",
            "crash (exit 139)",
            ReportImage::default(),
        );
        assert!(!bad.outcome.is_success());
        assert_eq!(bad.outcome.signature(), Some("php/crash"));
        assert!(bad.image.is_some());
    }

    #[test]
    fn json_roundtrip() {
        for r in [
            Report::success("m0", 0, "mysql", "5.0.27"),
            Report::failure(
                "m",
                1,
                "firefox",
                "2.0.0",
                "firefox/prefs",
                "output mismatch",
                ReportImage::default(),
            ),
        ] {
            let json = r.to_json().to_compact();
            let back = Report::from_json(&Value::parse(&json).unwrap()).unwrap();
            assert_eq!(r, back);
        }
    }

    #[test]
    fn unknown_outcome_kind_is_rejected() {
        let v = Value::obj([("kind", Value::str("maybe"))]);
        assert!(ReportOutcome::from_json(&v).is_err());
    }
}
