//! Report records.

use serde::{Deserialize, Serialize};

use crate::image::ReportImage;

/// The succinct outcome of one upgrade test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReportOutcome {
    /// The upgrade passed testing and was integrated.
    Success,
    /// Testing failed.
    Failure {
        /// The failure signature: application plus failure kind — what
        /// the vendor groups duplicate reports by.
        signature: String,
        /// Human-readable detail (the validator's failure description).
        detail: String,
    },
}

impl ReportOutcome {
    /// Returns `true` for a success.
    pub fn is_success(&self) -> bool {
        matches!(self, ReportOutcome::Success)
    }

    /// Returns the failure signature, if failed.
    pub fn signature(&self) -> Option<&str> {
        match self {
            ReportOutcome::Success => None,
            ReportOutcome::Failure { signature, .. } => Some(signature),
        }
    }
}

/// One report deposited in the URR.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Reporting machine.
    pub machine: String,
    /// The machine's cluster of deployment.
    pub cluster: usize,
    /// Upgraded package name.
    pub package: String,
    /// Version string of the tested release.
    pub version: String,
    /// Test outcome.
    pub outcome: ReportOutcome,
    /// Logical timestamp (assigned by the URR on deposit).
    pub seq: u64,
    /// Reproduction image (present on failures).
    pub image: Option<ReportImage>,
}

impl Report {
    /// Creates a success report (no image needed).
    pub fn success(
        machine: impl Into<String>,
        cluster: usize,
        package: impl Into<String>,
        version: impl Into<String>,
    ) -> Self {
        Report {
            machine: machine.into(),
            cluster,
            package: package.into(),
            version: version.into(),
            outcome: ReportOutcome::Success,
            seq: 0,
            image: None,
        }
    }

    /// Creates a failure report carrying a reproduction image.
    pub fn failure(
        machine: impl Into<String>,
        cluster: usize,
        package: impl Into<String>,
        version: impl Into<String>,
        signature: impl Into<String>,
        detail: impl Into<String>,
        image: ReportImage,
    ) -> Self {
        Report {
            machine: machine.into(),
            cluster,
            package: package.into(),
            version: version.into(),
            outcome: ReportOutcome::Failure {
                signature: signature.into(),
                detail: detail.into(),
            },
            seq: 0,
            image: Some(image),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let ok = Report::success("m1", 3, "mysql", "5.0.27");
        assert!(ok.outcome.is_success());
        assert_eq!(ok.outcome.signature(), None);
        assert!(ok.image.is_none());

        let bad = Report::failure(
            "m2",
            4,
            "mysql",
            "5.0.27",
            "php/crash",
            "crash (exit 139)",
            ReportImage::default(),
        );
        assert!(!bad.outcome.is_success());
        assert_eq!(bad.outcome.signature(), Some("php/crash"));
        assert!(bad.image.is_some());
    }

    #[test]
    fn serde_roundtrip() {
        let r = Report::failure(
            "m",
            1,
            "firefox",
            "2.0.0",
            "firefox/prefs",
            "output mismatch",
            ReportImage::default(),
        );
        let json = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
