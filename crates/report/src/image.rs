//! Report images: what the vendor needs to reproduce a failure.

use mirage_telemetry::json::Value;

use crate::codec::{str_field, string_array, string_list, JsonError};

/// A reproduction image attached to a failure report.
///
/// The paper's implementation ships "the entire upgraded virtual machine
/// state, including recorded inputs and outputs used during replay". In
/// the simulated environment that corresponds to a digest of the sandbox
/// filesystem, the environment diff context, and the replayed I/O.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReportImage {
    /// Digest of the sandbox filesystem after the upgrade (stands in for
    /// the full VM state).
    pub sandbox_digest: String,
    /// The machine's differing items against the vendor reference — the
    /// *context* that makes the failure reproducible.
    pub env_context: Vec<String>,
    /// Inputs replayed during the failed validation.
    pub replayed_inputs: Vec<String>,
    /// Outputs observed (including suppressed network sends).
    pub observed_outputs: Vec<String>,
}

impl ReportImage {
    /// Creates an image from its parts.
    pub fn new(
        sandbox_digest: impl Into<String>,
        env_context: Vec<String>,
        replayed_inputs: Vec<String>,
        observed_outputs: Vec<String>,
    ) -> Self {
        ReportImage {
            sandbox_digest: sandbox_digest.into(),
            env_context,
            replayed_inputs,
            observed_outputs,
        }
    }

    /// Approximate image size in bytes (storage accounting).
    pub fn byte_size(&self) -> usize {
        self.sandbox_digest.len()
            + self.env_context.iter().map(String::len).sum::<usize>()
            + self.replayed_inputs.iter().map(String::len).sum::<usize>()
            + self.observed_outputs.iter().map(String::len).sum::<usize>()
    }

    /// Serialises the image as a JSON object.
    pub fn to_json(&self) -> Value {
        Value::obj([
            ("sandbox_digest", Value::str(self.sandbox_digest.clone())),
            ("env_context", string_array(&self.env_context)),
            ("replayed_inputs", string_array(&self.replayed_inputs)),
            ("observed_outputs", string_array(&self.observed_outputs)),
        ])
    }

    /// Restores an image from its JSON object form.
    pub fn from_json(v: &Value) -> Result<Self, JsonError> {
        Ok(ReportImage {
            sandbox_digest: str_field(v, "sandbox_digest")?,
            env_context: string_list(v, "env_context")?,
            replayed_inputs: string_list(v, "replayed_inputs")?,
            observed_outputs: string_list(v, "observed_outputs")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_sums_parts() {
        let img = ReportImage::new(
            "abcd",
            vec!["item1".into()],
            vec!["in".into()],
            vec!["out".into()],
        );
        assert_eq!(img.byte_size(), 4 + 5 + 2 + 3);
    }

    #[test]
    fn json_roundtrip() {
        let img = ReportImage::new("d", vec!["e".into()], vec![], vec!["o".into()]);
        let v = Value::parse(&img.to_json().to_compact()).unwrap();
        assert_eq!(img, ReportImage::from_json(&v).unwrap());
    }

    #[test]
    fn malformed_json_is_rejected() {
        let missing = Value::obj([("sandbox_digest", Value::str("d"))]);
        assert!(ReportImage::from_json(&missing).is_err());
        let wrong_type = Value::obj([
            ("sandbox_digest", Value::str("d")),
            ("env_context", Value::str("not-an-array")),
            ("replayed_inputs", Value::arr([])),
            ("observed_outputs", Value::arr([])),
        ]);
        assert!(ReportImage::from_json(&wrong_type).is_err());
    }
}
