//! JSON (de)serialisation plumbing shared by the report types.
//!
//! The repository serialises through [`mirage_telemetry::json`] — the
//! workspace's dependency-free JSON module — so transfer and storage
//! work without any external crates.

use std::fmt;

use mirage_telemetry::json::{ParseError, Value};

/// Why decoding a report document failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The text was not valid JSON at all.
    Parse(ParseError),
    /// The JSON was valid but not shaped like the expected type.
    Shape(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse(e) => write!(f, "{e}"),
            JsonError::Shape(msg) => write!(f, "malformed report document: {msg}"),
        }
    }
}

impl std::error::Error for JsonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonError::Parse(e) => Some(e),
            JsonError::Shape(_) => None,
        }
    }
}

impl From<ParseError> for JsonError {
    fn from(e: ParseError) -> Self {
        JsonError::Parse(e)
    }
}

pub(crate) fn shape(msg: impl Into<String>) -> JsonError {
    JsonError::Shape(msg.into())
}

pub(crate) fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, JsonError> {
    v.get(key)
        .ok_or_else(|| shape(format!("missing field '{key}'")))
}

pub(crate) fn str_field(v: &Value, key: &str) -> Result<String, JsonError> {
    field(v, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| shape(format!("field '{key}' must be a string")))
}

pub(crate) fn u64_field(v: &Value, key: &str) -> Result<u64, JsonError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| shape(format!("field '{key}' must be a non-negative integer")))
}

pub(crate) fn string_list(v: &Value, key: &str) -> Result<Vec<String>, JsonError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| shape(format!("field '{key}' must be an array")))?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| shape(format!("field '{key}' must contain only strings")))
        })
        .collect()
}

pub(crate) fn string_array(items: &[String]) -> Value {
    Value::arr(items.iter().map(Value::str))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let parse = JsonError::from(ParseError {
            offset: 3,
            message: "boom".into(),
        });
        assert!(parse.to_string().contains("byte 3"));
        assert!(std::error::Error::source(&parse).is_some());
        let shape_err = shape("bad");
        assert!(shape_err.to_string().contains("bad"));
        assert!(std::error::Error::source(&shape_err).is_none());
    }

    #[test]
    fn field_helpers_report_shape_errors() {
        let v = Value::obj([("a", Value::from(1u64)), ("s", Value::str("x"))]);
        assert_eq!(u64_field(&v, "a").unwrap(), 1);
        assert_eq!(str_field(&v, "s").unwrap(), "x");
        assert!(field(&v, "missing").is_err());
        assert!(str_field(&v, "a").is_err());
        assert!(u64_field(&v, "s").is_err());
        assert!(string_list(&v, "a").is_err());
    }
}
