//! Length-prefixed, checksummed record framing.
//!
//! Every durable record — a WAL batch, a snapshot, a serving-protocol
//! request or response — travels inside one frame:
//!
//! ```text
//! [magic u32 LE] [kind u8] [payload_len u32 LE] [crc32 u32 LE] [payload…]
//! ```
//!
//! The CRC-32 covers the kind byte and the payload, so a bit flip
//! anywhere in a frame (including its kind) fails validation. A
//! corrupted `payload_len` either truncates (caught by the scanner) or
//! shifts the checksum window (caught by the CRC with probability
//! `1 - 2^-32`).
//!
//! [`FrameScanner`] reads a WAL segment front to back and implements
//! the crash-tolerance contract: a clean end of input terminates the
//! scan, while a torn, truncated, or corrupt record yields exactly one
//! [`WireError`] and then stops — recovery keeps the valid prefix and
//! discards the tail, which is the only part a crash can damage.

use super::wire::{crc32, put_u32, put_u8, WireError};

/// Frame magic: `"MRF1"` little-endian — Mirage Report Frame v1.
pub(crate) const MAGIC: u32 = 0x3146_524d;

/// Frame header length in bytes (magic + kind + len + crc).
pub(crate) const HEADER_LEN: usize = 4 + 1 + 4 + 4;

/// Largest accepted frame payload (bit-flipped lengths must not drive
/// allocation).
pub(crate) const MAX_PAYLOAD: usize = 1 << 30;

/// Frame kind: one WAL deposit-batch record.
pub(crate) const KIND_WAL_BATCH: u8 = 1;
/// Frame kind: one compacted repository snapshot.
pub(crate) const KIND_SNAPSHOT: u8 = 2;
/// Frame kind: a vendor serving-protocol request.
pub(crate) const KIND_REQUEST: u8 = 3;
/// Frame kind: a vendor serving-protocol response.
pub(crate) const KIND_RESPONSE: u8 = 4;

/// Encodes `payload` as one frame of the given kind.
pub(crate) fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut buf, MAGIC);
    put_u8(&mut buf, kind);
    put_u32(
        &mut buf,
        u32::try_from(payload.len()).expect("frame payload exceeds u32"),
    );
    let mut crc_input = Vec::with_capacity(1 + payload.len());
    crc_input.push(kind);
    crc_input.extend_from_slice(payload);
    put_u32(&mut buf, crc32(&crc_input));
    buf.extend_from_slice(payload);
    buf
}

/// Decodes exactly one frame occupying the whole of `bytes`.
pub(crate) fn decode_frame(bytes: &[u8]) -> Result<(u8, &[u8]), WireError> {
    let mut scanner = FrameScanner::new(bytes);
    let (kind, payload) = match scanner.next_frame() {
        Some(Ok(hit)) => hit,
        Some(Err(e)) => return Err(e),
        None => return Err(WireError::Truncated { what: "frame" }),
    };
    if scanner.offset() != bytes.len() {
        return Err(WireError::Corrupt {
            what: "trailing bytes after frame",
        });
    }
    Ok((kind, payload))
}

/// An incremental reader over a byte stream of consecutive frames.
#[derive(Debug)]
pub(crate) struct FrameScanner<'a> {
    buf: &'a [u8],
    pos: usize,
    dead: bool,
}

impl<'a> FrameScanner<'a> {
    /// Starts a scan at the front of `buf`.
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        FrameScanner {
            buf,
            pos: 0,
            dead: false,
        }
    }

    /// Byte offset of the scan position (end of the last valid frame).
    pub(crate) fn offset(&self) -> usize {
        self.pos
    }

    /// Returns the next `(kind, payload)` frame; `None` at a clean end
    /// of input; `Some(Err(_))` exactly once on a torn or corrupt tail,
    /// after which the scanner stays exhausted.
    pub(crate) fn next_frame(&mut self) -> Option<Result<(u8, &'a [u8]), WireError>> {
        if self.dead || self.pos == self.buf.len() {
            return None;
        }
        match self.parse_at(self.pos) {
            Ok((kind, payload, next)) => {
                self.pos = next;
                Some(Ok((kind, payload)))
            }
            Err(e) => {
                self.dead = true;
                Some(Err(e))
            }
        }
    }

    fn parse_at(&self, at: usize) -> Result<(u8, &'a [u8], usize), WireError> {
        let rest = &self.buf[at..];
        if rest.len() < HEADER_LEN {
            return Err(WireError::Truncated {
                what: "frame header",
            });
        }
        let magic = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        if magic != MAGIC {
            return Err(WireError::BadFrame {
                what: "frame magic",
            });
        }
        let kind = rest[4];
        let len = u32::from_le_bytes([rest[5], rest[6], rest[7], rest[8]]) as usize;
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversize {
                what: "frame payload length",
            });
        }
        let stored_crc = u32::from_le_bytes([rest[9], rest[10], rest[11], rest[12]]);
        if rest.len() < HEADER_LEN + len {
            return Err(WireError::Truncated {
                what: "frame payload",
            });
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        let mut crc_input = Vec::with_capacity(1 + len);
        crc_input.push(kind);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != stored_crc {
            return Err(WireError::BadFrame {
                what: "frame checksum",
            });
        }
        Ok((kind, payload, at + HEADER_LEN + len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(KIND_WAL_BATCH, b"hello");
        let (kind, payload) = decode_frame(&frame).unwrap();
        assert_eq!(kind, KIND_WAL_BATCH);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn empty_payload_roundtrip() {
        let frame = encode_frame(KIND_SNAPSHOT, b"");
        assert_eq!(decode_frame(&frame).unwrap(), (KIND_SNAPSHOT, &b""[..]));
    }

    #[test]
    fn scanner_reads_consecutive_frames_then_ends_cleanly() {
        let mut stream = encode_frame(1, b"a");
        stream.extend_from_slice(&encode_frame(2, b"bb"));
        let mut scan = FrameScanner::new(&stream);
        assert_eq!(scan.next_frame().unwrap().unwrap(), (1, &b"a"[..]));
        assert_eq!(scan.next_frame().unwrap().unwrap(), (2, &b"bb"[..]));
        assert!(scan.next_frame().is_none());
        assert_eq!(scan.offset(), stream.len());
    }

    #[test]
    fn truncated_tail_keeps_valid_prefix() {
        let mut stream = encode_frame(1, b"keep me");
        let second = encode_frame(1, b"torn");
        stream.extend_from_slice(&second[..second.len() - 2]);
        let mut scan = FrameScanner::new(&stream);
        assert_eq!(scan.next_frame().unwrap().unwrap(), (1, &b"keep me"[..]));
        assert!(matches!(
            scan.next_frame().unwrap(),
            Err(WireError::Truncated { .. })
        ));
        assert!(scan.next_frame().is_none(), "scanner stays exhausted");
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let clean = encode_frame(1, b"payload bytes");
        // Flip one bit in every position of the kind byte and payload;
        // each corruption must be detected.
        for i in [4usize, HEADER_LEN, HEADER_LEN + 5, clean.len() - 1] {
            let mut frame = clean.clone();
            frame[i] ^= 0x10;
            assert!(
                decode_frame(&frame).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut frame = encode_frame(1, b"x");
        frame[0] ^= 0xff;
        assert!(matches!(
            decode_frame(&frame),
            Err(WireError::BadFrame {
                what: "frame magic"
            })
        ));
    }

    #[test]
    fn absurd_length_is_rejected_without_allocation() {
        let mut frame = encode_frame(1, b"x");
        frame[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn trailing_garbage_after_single_frame_is_rejected() {
        let mut frame = encode_frame(1, b"x");
        frame.push(0);
        assert!(decode_frame(&frame).is_err());
    }

    #[test]
    fn zero_length_input_is_a_clean_end() {
        let mut scan = FrameScanner::new(b"");
        assert!(scan.next_frame().is_none());
    }
}
