//! WAL record payloads: one frame per deposit batch.
//!
//! Every ingest batch — boundary [`crate::Report`]s or pre-interned
//! records — is journaled as one [`WalFrame`] carrying:
//!
//! * `start_seq`: the first sequence number the batch claimed, used on
//!   replay to skip duplicated tail frames and to detect gaps;
//! * the **intern-table deltas**: every machine / signature / release
//!   name interned since the previous frame was journaled. Replaying
//!   deltas in frame order reproduces the exact dense-id assignment of
//!   the live repository, so the id-based records that follow resolve
//!   to the same names;
//! * the records themselves as interned ids, with the optional
//!   free-form payload (failure detail + reproduction image) inlined
//!   for boundary reports.
//!
//! [`apply_recs`] is the **single apply path**: live ingest through
//! [`crate::DurableUrr`] journals a frame and then applies it with the
//! same function recovery uses to replay it, which is what makes the
//! `recover(snapshot + WAL) == live` property hold by construction
//! rather than by parallel-implementation luck.

use crate::image::ReportImage;
use crate::storage::wire::{
    get_string_list, put_len, put_str, put_string_list, put_u32, put_u64, put_u8, Cursor, WireError,
};
use crate::urr::{mix_u32, Payload, Rec, Urr, NO_SIG};

/// One journaled deposit batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WalFrame {
    /// First sequence number claimed by the batch.
    pub(crate) start_seq: u64,
    /// Machine names interned since the previous frame (dense ids
    /// continue from the previous table length).
    pub(crate) machine_delta: Vec<String>,
    /// Signature names interned since the previous frame.
    pub(crate) sig_delta: Vec<String>,
    /// `(package, version)` releases interned since the previous frame.
    pub(crate) release_delta: Vec<(String, String)>,
    /// The batch records, in sequence order (`seq = start_seq + index`).
    pub(crate) recs: Vec<WalRec>,
}

/// One journaled record: interned ids plus the optional heap payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WalRec {
    pub(crate) machine: u32,
    pub(crate) cluster: u32,
    pub(crate) release: u32,
    /// [`NO_SIG`] for successes.
    pub(crate) sig: u32,
    pub(crate) payload: Option<Box<Payload>>,
}

/// Encodes an optional record payload (detail + reproduction image).
/// Shared between WAL records and snapshot records.
pub(crate) fn put_payload(buf: &mut Vec<u8>, payload: &Option<Box<Payload>>) {
    match payload {
        None => put_u8(buf, 0),
        Some(p) => {
            put_u8(buf, 1);
            put_str(buf, &p.detail);
            match &p.image {
                None => put_u8(buf, 0),
                Some(img) => {
                    put_u8(buf, 1);
                    put_str(buf, &img.sandbox_digest);
                    put_string_list(buf, &img.env_context);
                    put_string_list(buf, &img.replayed_inputs);
                    put_string_list(buf, &img.observed_outputs);
                }
            }
        }
    }
}

/// Decodes an optional record payload written by [`put_payload`].
pub(crate) fn get_payload(cur: &mut Cursor<'_>) -> Result<Option<Box<Payload>>, WireError> {
    match cur.u8("payload option tag")? {
        0 => Ok(None),
        1 => {
            let detail = cur.str_("payload detail")?;
            let image = match cur.u8("image option tag")? {
                0 => None,
                1 => Some(ReportImage {
                    sandbox_digest: cur.str_("image digest")?,
                    env_context: get_string_list(cur, "image context")?,
                    replayed_inputs: get_string_list(cur, "image inputs")?,
                    observed_outputs: get_string_list(cur, "image outputs")?,
                }),
                tag => {
                    return Err(WireError::BadTag {
                        what: "image option",
                        tag,
                    })
                }
            };
            Ok(Some(Box::new(Payload { detail, image })))
        }
        tag => Err(WireError::BadTag {
            what: "payload option",
            tag,
        }),
    }
}

impl WalFrame {
    /// Serialises the frame payload (the caller wraps it in a
    /// checksummed frame).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.recs.len() * 17);
        put_u64(&mut buf, self.start_seq);
        put_string_list(&mut buf, &self.machine_delta);
        put_string_list(&mut buf, &self.sig_delta);
        put_len(&mut buf, self.release_delta.len());
        for (package, version) in &self.release_delta {
            put_str(&mut buf, package);
            put_str(&mut buf, version);
        }
        put_len(&mut buf, self.recs.len());
        for rec in &self.recs {
            put_u32(&mut buf, rec.machine);
            put_u32(&mut buf, rec.cluster);
            put_u32(&mut buf, rec.release);
            put_u32(&mut buf, rec.sig);
            put_payload(&mut buf, &rec.payload);
        }
        buf
    }

    /// Decodes a frame payload, rejecting malformed input cleanly.
    pub(crate) fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut cur = Cursor::new(bytes);
        let start_seq = cur.u64("wal start_seq")?;
        let machine_delta = get_string_list(&mut cur, "wal machine delta")?;
        let sig_delta = get_string_list(&mut cur, "wal sig delta")?;
        let n_rel = cur.list_len(8, "wal release delta")?;
        let mut release_delta = Vec::with_capacity(n_rel);
        for _ in 0..n_rel {
            let package = cur.str_("wal release package")?;
            let version = cur.str_("wal release version")?;
            release_delta.push((package, version));
        }
        let n_recs = cur.list_len(17, "wal records")?;
        let mut recs = Vec::with_capacity(n_recs);
        for _ in 0..n_recs {
            recs.push(WalRec {
                machine: cur.u32("wal rec machine")?,
                cluster: cur.u32("wal rec cluster")?,
                release: cur.u32("wal rec release")?,
                sig: cur.u32("wal rec sig")?,
                payload: get_payload(&mut cur)?,
            });
        }
        cur.finish("wal frame")?;
        Ok(WalFrame {
            start_seq,
            machine_delta,
            sig_delta,
            release_delta,
            recs,
        })
    }

    /// Checks every interned id in `recs` against the repository's
    /// table lengths — the structural-integrity gate replay runs before
    /// applying a decoded frame.
    pub(crate) fn validate_ids(&self, urr: &Urr) -> Result<(), WireError> {
        let machines = urr.machines.read().expect("urr poisoned").names.len() as u64;
        let sigs = urr.sigs.read().expect("urr poisoned").inner.names.len() as u64;
        let releases = urr.releases.read().expect("urr poisoned").pairs.len() as u64;
        for rec in &self.recs {
            if u64::from(rec.machine) >= machines {
                return Err(WireError::Corrupt {
                    what: "wal rec machine id out of range",
                });
            }
            if rec.sig != NO_SIG && u64::from(rec.sig) >= sigs {
                return Err(WireError::Corrupt {
                    what: "wal rec sig id out of range",
                });
            }
            if u64::from(rec.release) >= releases {
                return Err(WireError::Corrupt {
                    what: "wal rec release id out of range",
                });
            }
        }
        Ok(())
    }

    /// Re-interns the frame's name deltas, reproducing the dense-id
    /// assignment the live repository had when the frame was journaled.
    /// Idempotent (interning an existing name is a lookup).
    pub(crate) fn intern_deltas(&self, urr: &Urr) {
        if !self.machine_delta.is_empty() {
            let mut table = urr.machines.write().expect("urr poisoned");
            for name in &self.machine_delta {
                table.intern(name);
            }
        }
        for name in &self.sig_delta {
            urr.intern_signature(name);
        }
        for (package, version) in &self.release_delta {
            urr.intern_release(package, version);
        }
    }
}

/// Applies a batch of journaled records to the repository, assigning
/// sequence numbers `start + index` and routing each record to its
/// shard exactly like the direct deposit paths (signature home shard
/// for failures, machine-hash spread for successes). Shard locks are
/// taken once per batch.
pub(crate) fn apply_recs(urr: &Urr, recs: Vec<WalRec>, start: u64) {
    if recs.is_empty() {
        return;
    }
    let to_rec = |r: WalRec, seq: u64| -> Rec {
        Rec {
            machine: r.machine,
            cluster: r.cluster,
            release: r.release,
            seq,
            sig: r.sig,
            payload: r.payload,
        }
    };
    if urr.shards.len() == 1 {
        let mut guard = urr.lock_shard(0);
        guard.recs.reserve(recs.len());
        for (i, r) in recs.into_iter().enumerate() {
            guard.insert(to_rec(r, start + i as u64));
        }
        return;
    }
    let sigs = urr.sigs.read().expect("urr poisoned");
    let cap = recs.len() / urr.shards.len() + 1;
    let mut by_shard: Vec<Vec<Rec>> = (0..urr.shards.len())
        .map(|_| Vec::with_capacity(cap))
        .collect();
    for (i, r) in recs.into_iter().enumerate() {
        let shard = if r.sig == NO_SIG {
            (mix_u32(r.machine) & urr.shard_mask) as usize
        } else {
            sigs.shards[r.sig as usize] as usize
        };
        by_shard[shard].push(to_rec(r, start + i as u64));
    }
    drop(sigs);
    for (shard, items) in by_shard.into_iter().enumerate() {
        if items.is_empty() {
            continue;
        }
        let mut guard = urr.lock_shard(shard);
        guard.recs.reserve(items.len());
        for rec in items {
            guard.insert(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> WalFrame {
        WalFrame {
            start_seq: 17,
            machine_delta: vec!["m\"quote".into(), "日本語".into(), String::new()],
            sig_delta: vec!["php/crash\n".into()],
            release_delta: vec![("mysql".into(), "5.0.27".into())],
            recs: vec![
                WalRec {
                    machine: 0,
                    cluster: 3,
                    release: 0,
                    sig: NO_SIG,
                    payload: None,
                },
                WalRec {
                    machine: 1,
                    cluster: 0,
                    release: 0,
                    sig: 0,
                    payload: Some(Box::new(Payload {
                        detail: "tab\there".into(),
                        image: Some(ReportImage::new(
                            "digest",
                            vec!["ctx".into()],
                            vec![],
                            vec!["out-🦀".into()],
                        )),
                    })),
                },
            ],
        }
    }

    #[test]
    fn frame_roundtrip_with_hostile_strings() {
        let frame = sample_frame();
        assert_eq!(WalFrame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn empty_frame_roundtrip() {
        let frame = WalFrame {
            start_seq: 0,
            machine_delta: vec![],
            sig_delta: vec![],
            release_delta: vec![],
            recs: vec![],
        };
        assert_eq!(WalFrame::decode(&frame.encode()).unwrap(), frame);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample_frame().encode();
        for cut in 0..bytes.len() {
            assert!(
                WalFrame::decode(&bytes[..cut]).is_err(),
                "truncation at byte {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_frame().encode();
        bytes.push(0);
        assert!(WalFrame::decode(&bytes).is_err());
    }

    #[test]
    fn bad_option_tags_are_rejected() {
        let frame = WalFrame {
            start_seq: 0,
            machine_delta: vec![],
            sig_delta: vec![],
            release_delta: vec![],
            recs: vec![WalRec {
                machine: 0,
                cluster: 0,
                release: 0,
                sig: 0,
                payload: None,
            }],
        };
        let mut bytes = frame.encode();
        // The final byte is the payload option tag; make it undefined.
        *bytes.last_mut().unwrap() = 7;
        assert!(matches!(
            WalFrame::decode(&bytes),
            Err(WireError::BadTag { tag: 7, .. })
        ));
    }

    #[test]
    fn validate_ids_rejects_out_of_range_records() {
        let urr = Urr::with_shards(2);
        urr.intern_machines(["m0"]);
        urr.intern_release("p", "v");
        let ok = WalFrame {
            start_seq: 0,
            machine_delta: vec![],
            sig_delta: vec![],
            release_delta: vec![],
            recs: vec![WalRec {
                machine: 0,
                cluster: 0,
                release: 0,
                sig: NO_SIG,
                payload: None,
            }],
        };
        assert!(ok.validate_ids(&urr).is_ok());
        for (machine, sig, release) in [(9, NO_SIG, 0), (0, 5, 0), (0, NO_SIG, 9)] {
            let bad = WalFrame {
                recs: vec![WalRec {
                    machine,
                    cluster: 0,
                    release,
                    sig,
                    payload: None,
                }],
                ..ok.clone()
            };
            assert!(bad.validate_ids(&urr).is_err());
        }
    }
}
