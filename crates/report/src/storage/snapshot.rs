//! Compacted repository snapshots.
//!
//! A snapshot is a full, per-stripe serialisation of the sharded URR:
//! the three intern tables first, then each lock stripe's record
//! archive **and** its incrementally-maintained inverted index (group
//! slots, cluster tallies, release tallies, stripe counters). Loading
//! a snapshot therefore restores the repository without recomputing
//! anything: recovery cost is proportional to state size, not to query
//! complexity.
//!
//! The layout is stripe-faithful: the snapshot records its shard count
//! and the decoder rebuilds the repository with exactly that count, so
//! signature home shards (`hash(name) & mask`) land where the group
//! slots were serialised from. Word-packed membership bitsets are not
//! stored — they are rebuilt from the `(seq, id)` order vectors, which
//! carry the same information plus discovery order.
//!
//! Decoding is hostile-input safe: every interned id, tally length,
//! and sequence number is validated against the tables decoded before
//! it, and any violation is a typed [`WireError`], never a panic.

use std::sync::atomic::Ordering;

use crate::storage::wal::{get_payload, put_payload};
use crate::storage::wire::{
    get_string_list, put_len, put_str, put_string_list, put_u32, put_u64, Cursor, WireError,
};
use crate::urr::{GroupSlot, Rec, ReleaseSlot, Urr, NO_SIG};

/// Largest accepted shard count in a snapshot header. Live
/// repositories use `next_pow2(threads)`; anything beyond this is a
/// corrupt document, not a bigger machine.
const MAX_SHARDS: usize = 1 << 16;

/// Serialises the full repository state. The caller wraps the payload
/// in a checksummed frame ([`crate::storage::frame::KIND_SNAPSHOT`]).
///
/// The caller must guarantee no concurrent writers (the durable layer
/// holds its journal lock across the encode), so the per-stripe walk
/// observes one consistent state.
pub(crate) fn encode_snapshot(urr: &Urr) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4096);
    put_u32(&mut buf, urr.shards.len() as u32);
    put_u64(&mut buf, urr.next_seq());
    {
        let machines = urr.machines.read().expect("urr poisoned");
        put_string_list(&mut buf, &machines.names);
    }
    {
        let sigs = urr.sigs.read().expect("urr poisoned");
        put_string_list(&mut buf, &sigs.inner.names);
    }
    {
        let releases = urr.releases.read().expect("urr poisoned");
        put_len(&mut buf, releases.pairs.len());
        for (package, version) in &releases.pairs {
            put_str(&mut buf, package);
            put_str(&mut buf, version);
        }
    }
    for stripe in urr.shards.iter() {
        let shard = stripe.lock().expect("urr poisoned");
        // Tallies travel before records and groups: their length bounds
        // every cluster id in the stripe (a record only ever tallies its
        // own stripe), which lets the decoder reject hostile cluster
        // ids before they can drive bitset allocation.
        put_len(&mut buf, shard.cluster_tallies.len());
        for (successes, failures) in &shard.cluster_tallies {
            put_u64(&mut buf, *successes as u64);
            put_u64(&mut buf, *failures as u64);
        }
        put_len(&mut buf, shard.release_tallies.len());
        for slot in &shard.release_tallies {
            put_u64(&mut buf, slot.successes as u64);
            put_u64(&mut buf, slot.failures as u64);
            put_u64(&mut buf, slot.first_seen);
        }
        put_len(&mut buf, shard.recs.len());
        for rec in &shard.recs {
            put_u32(&mut buf, rec.machine);
            put_u32(&mut buf, rec.cluster);
            put_u32(&mut buf, rec.release);
            put_u64(&mut buf, rec.seq);
            put_u32(&mut buf, rec.sig);
            put_payload(&mut buf, &rec.payload);
        }
        // Only live group slots travel; empty slots are an artefact of
        // table sizing and carry no information.
        let live = shard.groups.iter().enumerate().filter(|(_, s)| s.count > 0);
        put_len(&mut buf, live.clone().count());
        for (sig, slot) in live {
            put_u32(&mut buf, sig as u32);
            put_u64(&mut buf, slot.count as u64);
            put_u64(&mut buf, slot.first_seen);
            put_len(&mut buf, slot.machine_order.len());
            for (seq, machine) in &slot.machine_order {
                put_u64(&mut buf, *seq);
                put_u32(&mut buf, *machine);
            }
            put_len(&mut buf, slot.cluster_order.len());
            for (seq, cluster) in &slot.cluster_order {
                put_u64(&mut buf, *seq);
                put_u32(&mut buf, *cluster);
            }
        }
        put_u64(&mut buf, shard.successes as u64);
        put_u64(&mut buf, shard.failures as u64);
        put_u64(&mut buf, shard.image_bytes as u64);
        put_u64(&mut buf, shard.distinct as u64);
    }
    buf
}

/// Restores a repository from a snapshot payload. Returns a fully
/// populated [`Urr`] (telemetry detached — the durable layer attaches
/// its handle afterwards) or a typed error on any corruption.
pub(crate) fn decode_snapshot(bytes: &[u8]) -> Result<Urr, WireError> {
    let mut cur = Cursor::new(bytes);
    let shard_count = cur.u32("snapshot shard count")? as usize;
    if shard_count == 0 || !shard_count.is_power_of_two() || shard_count > MAX_SHARDS {
        return Err(WireError::Corrupt {
            what: "snapshot shard count",
        });
    }
    let next_seq = cur.u64("snapshot next_seq")?;
    let urr = Urr::with_shards(shard_count);
    let machine_names = get_string_list(&mut cur, "snapshot machines")?;
    let sig_names = get_string_list(&mut cur, "snapshot sigs")?;
    let n_rel = cur.list_len(8, "snapshot releases")?;
    let mut release_pairs = Vec::with_capacity(n_rel);
    for _ in 0..n_rel {
        let package = cur.str_("snapshot release package")?;
        let version = cur.str_("snapshot release version")?;
        release_pairs.push((package, version));
    }
    let n_machines = machine_names.len() as u64;
    let n_sigs = sig_names.len() as u64;
    let n_releases = release_pairs.len() as u64;
    {
        let mut table = urr.machines.write().expect("urr poisoned");
        for name in &machine_names {
            table.intern(name);
        }
        if table.names.len() != machine_names.len() {
            return Err(WireError::Corrupt {
                what: "snapshot machine table has duplicate names",
            });
        }
    }
    for name in &sig_names {
        urr.intern_signature(name);
    }
    if urr.sigs.read().expect("urr poisoned").inner.names.len() != sig_names.len() {
        return Err(WireError::Corrupt {
            what: "snapshot sig table has duplicate names",
        });
    }
    for (package, version) in &release_pairs {
        urr.intern_release(package, version);
    }
    if urr.releases.read().expect("urr poisoned").pairs.len() != release_pairs.len() {
        return Err(WireError::Corrupt {
            what: "snapshot release table has duplicate pairs",
        });
    }
    let sig_homes: Vec<u32> = urr.sigs.read().expect("urr poisoned").shards.clone();
    for stripe_idx in 0..shard_count {
        let n_ct = cur.list_len(16, "snapshot cluster tallies")?;
        let mut cluster_tallies = Vec::with_capacity(n_ct);
        for _ in 0..n_ct {
            let successes = cur.u64_as_usize("snapshot cluster successes")?;
            let failures = cur.u64_as_usize("snapshot cluster failures")?;
            cluster_tallies.push((successes, failures));
        }
        let n_rt = cur.list_len(24, "snapshot release tallies")?;
        if n_rt as u64 > n_releases {
            return Err(WireError::Corrupt {
                what: "snapshot release tallies exceed release table",
            });
        }
        let mut release_tallies = Vec::with_capacity(n_rt);
        for _ in 0..n_rt {
            release_tallies.push(ReleaseSlot {
                successes: cur.u64_as_usize("snapshot release successes")?,
                failures: cur.u64_as_usize("snapshot release failures")?,
                first_seen: cur.u64("snapshot release first_seen")?,
            });
        }
        let n_recs = cur.list_len(25, "snapshot records")?;
        let mut recs = Vec::with_capacity(n_recs);
        for _ in 0..n_recs {
            let machine = cur.u32("snapshot rec machine")?;
            let cluster = cur.u32("snapshot rec cluster")?;
            let release = cur.u32("snapshot rec release")?;
            let seq = cur.u64("snapshot rec seq")?;
            let sig = cur.u32("snapshot rec sig")?;
            let payload = get_payload(&mut cur)?;
            if u64::from(machine) >= n_machines
                || u64::from(release) >= n_releases
                || (sig != NO_SIG && u64::from(sig) >= n_sigs)
                || seq >= next_seq
                || cluster as usize >= n_ct
            {
                return Err(WireError::Corrupt {
                    what: "snapshot rec out of range",
                });
            }
            recs.push(Rec {
                machine,
                cluster,
                release,
                seq,
                sig,
                payload,
            });
        }
        let n_groups = cur.list_len(28, "snapshot groups")?;
        let mut groups: Vec<(u32, GroupSlot)> = Vec::with_capacity(n_groups);
        for _ in 0..n_groups {
            let sig = cur.u32("snapshot group sig")?;
            if u64::from(sig) >= n_sigs || sig_homes[sig as usize] as usize != stripe_idx {
                return Err(WireError::Corrupt {
                    what: "snapshot group sig not homed to stripe",
                });
            }
            let count = cur.u64_as_usize("snapshot group count")?;
            if count == 0 {
                return Err(WireError::Corrupt {
                    what: "snapshot group with zero count",
                });
            }
            let first_seen = cur.u64("snapshot group first_seen")?;
            let mut slot = GroupSlot {
                count,
                first_seen,
                ..GroupSlot::default()
            };
            let n_m = cur.list_len(12, "snapshot group machines")?;
            for _ in 0..n_m {
                let seq = cur.u64("snapshot group machine seq")?;
                let machine = cur.u32("snapshot group machine id")?;
                if u64::from(machine) >= n_machines || !slot.machines.insert(machine) {
                    return Err(WireError::Corrupt {
                        what: "snapshot group machine order",
                    });
                }
                slot.machine_order.push((seq, machine));
            }
            let n_c = cur.list_len(12, "snapshot group clusters")?;
            for _ in 0..n_c {
                let seq = cur.u64("snapshot group cluster seq")?;
                let cluster = cur.u32("snapshot group cluster id")?;
                if cluster as usize >= n_ct || !slot.clusters.insert(cluster) {
                    return Err(WireError::Corrupt {
                        what: "snapshot group cluster order",
                    });
                }
                slot.cluster_order.push((seq, cluster));
            }
            groups.push((sig, slot));
        }
        let successes = cur.u64_as_usize("snapshot stripe successes")?;
        let failures = cur.u64_as_usize("snapshot stripe failures")?;
        let image_bytes = cur.u64_as_usize("snapshot stripe image bytes")?;
        let distinct = cur.u64_as_usize("snapshot stripe distinct")?;
        if distinct != groups.len() {
            return Err(WireError::Corrupt {
                what: "snapshot stripe distinct count mismatch",
            });
        }
        let mut shard = urr.lock_shard(stripe_idx);
        shard.recs = recs;
        if let Some(max_sig) = groups.iter().map(|(sig, _)| *sig).max() {
            shard
                .groups
                .resize_with(max_sig as usize + 1, GroupSlot::default);
        }
        for (sig, slot) in groups {
            shard.groups[sig as usize] = slot;
        }
        shard.distinct = distinct;
        shard.cluster_tallies = cluster_tallies;
        shard.release_tallies = release_tallies;
        shard.successes = successes;
        shard.failures = failures;
        shard.image_bytes = image_bytes;
    }
    cur.finish("snapshot")?;
    urr.seq.store(next_seq, Ordering::Relaxed);
    Ok(urr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ReportImage;
    use crate::report::Report;

    fn populated_urr() -> Urr {
        let urr = Urr::with_shards(4);
        urr.deposit(Report::success("m1", 0, "mysql", "5.0.27"));
        urr.deposit(Report::failure(
            "m2",
            1,
            "mysql",
            "5.0.27",
            "php/crash",
            "stack",
            ReportImage::new("d", vec!["ctx".into()], vec!["in".into()], vec![]),
        ));
        urr.deposit(Report::failure(
            "m3",
            1,
            "mysql",
            "5.0.28",
            "mycnf/fail",
            "",
            ReportImage::default(),
        ));
        // An interned name never referenced by a record must survive.
        urr.intern_machine("spare-machine");
        urr
    }

    fn assert_urr_eq(a: &Urr, b: &Urr) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.next_seq(), b.next_seq());
        assert_eq!(a.failure_groups(), b.failure_groups());
        assert_eq!(a.cluster_failure_rates(), b.cluster_failure_rates());
        assert_eq!(a.release_summaries(), b.release_summaries());
        assert_eq!(a.all(), b.all());
    }

    #[test]
    fn snapshot_roundtrip_restores_every_surface() {
        let urr = populated_urr();
        let restored = decode_snapshot(&encode_snapshot(&urr)).unwrap();
        assert_urr_eq(&urr, &restored);
        assert_eq!(restored.shard_count(), urr.shard_count());
        // Unreferenced interned names keep their dense ids.
        assert_eq!(
            restored.intern_machine("spare-machine"),
            urr.intern_machine("spare-machine")
        );
        // New deposits continue the sequence.
        assert_eq!(restored.deposit(Report::success("x", 0, "p", "1")), 3);
    }

    #[test]
    fn empty_snapshot_roundtrip() {
        let urr = Urr::with_shards(1);
        let restored = decode_snapshot(&encode_snapshot(&urr)).unwrap();
        assert_eq!(restored.stats(), urr.stats());
        assert_eq!(restored.shard_count(), 1);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = encode_snapshot(&populated_urr());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "truncation at byte {cut} decoded successfully"
            );
        }
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        let bytes = encode_snapshot(&populated_urr());
        // Shard count zero.
        let mut b = bytes.clone();
        b[0..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_snapshot(&b).is_err());
        // Shard count not a power of two.
        let mut b = bytes.clone();
        b[0..4].copy_from_slice(&3u32.to_le_bytes());
        assert!(decode_snapshot(&b).is_err());
        // Absurd shard count.
        let mut b = bytes;
        b[0..4].copy_from_slice(&(1u32 << 20).to_le_bytes());
        assert!(decode_snapshot(&b).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_snapshot(&populated_urr());
        bytes.push(0);
        assert!(decode_snapshot(&bytes).is_err());
    }
}
