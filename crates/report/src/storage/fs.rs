//! The filesystem [`UrrStore`] backend.
//!
//! Directory layout under the store root:
//!
//! ```text
//! <root>/wal/seg-00000001.log      # oldest WAL segment
//! <root>/wal/seg-00000002.log      # … the highest number is active
//! <root>/snapshots/snap-00000007.bin
//! <root>/snapshots/snap-00000008.bin  # newest generation
//! ```
//!
//! WAL frames append to the active segment and rotate to a new file at
//! the configured size. Snapshots are written to a `.tmp` file and
//! atomically renamed into place, then older generations beyond the
//! previous one are pruned — the previous generation is the fallback
//! if a crash tears the newest. Segment and snapshot numbering is
//! monotonic across restarts (re-opening scans the directory).
//!
//! Writes go through the OS page cache without `fsync`; the crash
//! model is process death, not power loss (DESIGN.md §18 discusses the
//! gap). Every I/O error is surfaced as a typed [`StoreError`] naming
//! the failing operation.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use super::memory::DEFAULT_SEGMENT_BYTES;
use super::{StoreError, UrrStore};

/// A directory-backed WAL-plus-snapshots store.
#[derive(Debug)]
pub struct FsStore {
    root: PathBuf,
    segment_bytes: usize,
    state: Mutex<FsState>,
}

#[derive(Debug)]
struct FsState {
    /// Number of the active WAL segment (0 = none yet).
    active_seg: u64,
    /// Bytes already in the active segment.
    active_len: usize,
    /// Highest snapshot generation written or found.
    snapshot_gen: u64,
}

impl FsStore {
    /// Opens (creating if necessary) a store rooted at `root` with the
    /// default segment size.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with_segment_bytes(root, DEFAULT_SEGMENT_BYTES)
    }

    /// Opens (creating if necessary) a store rooted at `root`, rotating
    /// WAL segments at `segment_bytes`.
    pub fn open_with_segment_bytes(
        root: impl Into<PathBuf>,
        segment_bytes: usize,
    ) -> Result<Self, StoreError> {
        let root = root.into();
        let wal_dir = root.join("wal");
        let snap_dir = root.join("snapshots");
        fs::create_dir_all(&wal_dir).map_err(|e| StoreError::io("create wal dir", e))?;
        fs::create_dir_all(&snap_dir).map_err(|e| StoreError::io("create snapshot dir", e))?;
        let mut active_seg = 0;
        let mut active_len = 0;
        for (n, path) in numbered_files(&wal_dir, "seg-", ".log")? {
            if n > active_seg {
                active_seg = n;
                active_len = fs::metadata(&path)
                    .map_err(|e| StoreError::io("stat wal segment", e))?
                    .len() as usize;
            }
        }
        let snapshot_gen = numbered_files(&snap_dir, "snap-", ".bin")?
            .into_iter()
            .map(|(n, _)| n)
            .max()
            .unwrap_or(0);
        Ok(FsStore {
            root,
            segment_bytes: segment_bytes.max(1),
            state: Mutex::new(FsState {
                active_seg,
                active_len,
                snapshot_gen,
            }),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn seg_path(&self, n: u64) -> PathBuf {
        self.root.join("wal").join(format!("seg-{n:08}.log"))
    }

    fn snap_path(&self, n: u64) -> PathBuf {
        self.root.join("snapshots").join(format!("snap-{n:08}.bin"))
    }
}

/// Lists `<prefix><number><suffix>` files in `dir`, sorted by number.
fn numbered_files(
    dir: &Path,
    prefix: &str,
    suffix: &str,
) -> Result<Vec<(u64, PathBuf)>, StoreError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| StoreError::io("read store dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StoreError::io("read store dir entry", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix(prefix)
            .and_then(|s| s.strip_suffix(suffix))
        else {
            continue;
        };
        let Ok(n) = stem.parse::<u64>() else { continue };
        out.push((n, entry.path()));
    }
    out.sort_unstable_by_key(|(n, _)| *n);
    Ok(out)
}

impl UrrStore for FsStore {
    fn append_frame(&self, frame: &[u8]) -> Result<bool, StoreError> {
        let mut state = self.state.lock().expect("fs store poisoned");
        let rotate = state.active_seg == 0
            || (state.active_len > 0 && state.active_len + frame.len() > self.segment_bytes);
        let was_fresh = state.active_seg == 0;
        if rotate {
            state.active_seg += 1;
            state.active_len = 0;
        }
        let path = self.seg_path(state.active_seg);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::io("open wal segment", e))?;
        file.write_all(frame)
            .map_err(|e| StoreError::io("append wal frame", e))?;
        state.active_len += frame.len();
        Ok(rotate && !was_fresh)
    }

    fn wal_segments(&self) -> Result<Vec<Vec<u8>>, StoreError> {
        let _state = self.state.lock().expect("fs store poisoned");
        let mut out = Vec::new();
        for (_, path) in numbered_files(&self.root.join("wal"), "seg-", ".log")? {
            out.push(fs::read(&path).map_err(|e| StoreError::io("read wal segment", e))?);
        }
        Ok(out)
    }

    fn write_snapshot(&self, snapshot: &[u8]) -> Result<(), StoreError> {
        let mut state = self.state.lock().expect("fs store poisoned");
        let gen = state.snapshot_gen + 1;
        let tmp = self.snap_path(gen).with_extension("tmp");
        let fin = self.snap_path(gen);
        fs::write(&tmp, snapshot).map_err(|e| StoreError::io("write snapshot tmp", e))?;
        fs::rename(&tmp, &fin).map_err(|e| StoreError::io("rename snapshot", e))?;
        state.snapshot_gen = gen;
        // Prune generations older than the previous one (the fallback).
        for (n, path) in numbered_files(&self.root.join("snapshots"), "snap-", ".bin")? {
            if n + 1 < gen {
                fs::remove_file(&path).map_err(|e| StoreError::io("prune snapshot", e))?;
            }
        }
        Ok(())
    }

    fn snapshots(&self) -> Result<Vec<Vec<u8>>, StoreError> {
        let _state = self.state.lock().expect("fs store poisoned");
        let mut files = numbered_files(&self.root.join("snapshots"), "snap-", ".bin")?;
        files.reverse(); // newest first
        let mut out = Vec::with_capacity(files.len());
        for (_, path) in files {
            out.push(fs::read(&path).map_err(|e| StoreError::io("read snapshot", e))?);
        }
        Ok(out)
    }

    fn truncate_wal(&self) -> Result<(), StoreError> {
        let mut state = self.state.lock().expect("fs store poisoned");
        for (_, path) in numbered_files(&self.root.join("wal"), "seg-", ".log")? {
            fs::remove_file(&path).map_err(|e| StoreError::io("truncate wal", e))?;
        }
        // Numbering stays monotonic; the next append opens a new file.
        state.active_seg += 1;
        state.active_len = 0;
        let path = self.seg_path(state.active_seg);
        fs::write(&path, []).map_err(|e| StoreError::io("start wal segment", e))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("mirage-fsstore-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn append_read_roundtrip_with_rotation() {
        let root = temp_root("rot");
        let store = FsStore::open_with_segment_bytes(&root, 8).unwrap();
        assert!(!store.append_frame(&[1; 6]).unwrap());
        assert!(store.append_frame(&[2; 6]).unwrap(), "rotates");
        let segs = store.wal_segments().unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], vec![1; 6]);
        assert_eq!(segs[1], vec![2; 6]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_resumes_numbering_and_active_length() {
        let root = temp_root("reopen");
        {
            let store = FsStore::open_with_segment_bytes(&root, 100).unwrap();
            store.append_frame(b"abcd").unwrap();
            store.write_snapshot(b"snap1").unwrap();
        }
        let store = FsStore::open_with_segment_bytes(&root, 100).unwrap();
        store.append_frame(b"ef").unwrap();
        let segs = store.wal_segments().unwrap();
        assert_eq!(segs.len(), 1, "appended to the same active segment");
        assert_eq!(segs[0], b"abcdef");
        store.write_snapshot(b"snap2").unwrap();
        let snaps = store.snapshots().unwrap();
        assert_eq!(snaps, vec![b"snap2".to_vec(), b"snap1".to_vec()]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn snapshot_pruning_keeps_two_generations() {
        let root = temp_root("prune");
        let store = FsStore::open(&root).unwrap();
        store.write_snapshot(b"g1").unwrap();
        store.write_snapshot(b"g2").unwrap();
        store.write_snapshot(b"g3").unwrap();
        assert_eq!(
            store.snapshots().unwrap(),
            vec![b"g3".to_vec(), b"g2".to_vec()]
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn truncate_clears_segments_and_restarts() {
        let root = temp_root("trunc");
        let store = FsStore::open(&root).unwrap();
        store.append_frame(b"old").unwrap();
        store.truncate_wal().unwrap();
        let segs = store.wal_segments().unwrap();
        assert_eq!(segs.len(), 1);
        assert!(segs[0].is_empty(), "fresh empty active segment");
        store.append_frame(b"new").unwrap();
        assert_eq!(store.wal_segments().unwrap(), vec![b"new".to_vec()]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn foreign_files_are_ignored() {
        let root = temp_root("foreign");
        let store = FsStore::open(&root).unwrap();
        fs::write(root.join("wal").join("README"), b"not a segment").unwrap();
        fs::write(root.join("wal").join("seg-notanum.log"), b"junk").unwrap();
        store.append_frame(b"real").unwrap();
        assert_eq!(store.wal_segments().unwrap(), vec![b"real".to_vec()]);
        fs::remove_dir_all(&root).unwrap();
    }
}
