//! The in-memory [`UrrStore`] backend.
//!
//! Byte-for-byte the same segment/snapshot model as [`crate::FsStore`]
//! with a `Mutex<Vec<Vec<u8>>>` instead of a directory: WAL frames
//! append to an active segment that rotates at the configured size,
//! snapshots accumulate newest-last, and truncation clears the
//! segments. It is infallible, which makes it the natural backend for
//! tests (including the hostile-WAL corpus, via [`MemoryStore::mutate`]
//! and [`MemoryStore::fork`]) and for benchmarking the storage layer
//! without disk noise.

use std::sync::{Arc, Mutex};

use super::{StoreError, UrrStore};

/// Default segment rotation threshold (bytes).
pub const DEFAULT_SEGMENT_BYTES: usize = 4 << 20;

/// An in-memory WAL-plus-snapshots store.
///
/// `Clone` is shallow: clones share the same underlying segments, so a
/// test can hand one handle to a [`crate::DurableUrr`] and keep another
/// to [`fork`](MemoryStore::fork) a crash image or
/// [`mutate`](MemoryStore::mutate) the bytes.
#[derive(Debug, Clone)]
pub struct MemoryStore {
    segment_bytes: usize,
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default, Clone)]
struct Inner {
    /// WAL segments, oldest first; the last one is the active segment.
    segments: Vec<Vec<u8>>,
    /// Snapshot documents, oldest first.
    snapshots: Vec<Vec<u8>>,
}

impl Default for MemoryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryStore {
    /// Creates an empty store with the default segment size.
    pub fn new() -> Self {
        Self::with_segment_bytes(DEFAULT_SEGMENT_BYTES)
    }

    /// Creates an empty store rotating segments at `segment_bytes`.
    pub fn with_segment_bytes(segment_bytes: usize) -> Self {
        MemoryStore {
            segment_bytes: segment_bytes.max(1),
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }

    /// Deep-copies the store's current durable contents — the moral
    /// equivalent of pulling the power cord and imaging the disk.
    /// Crash-recovery tests run ingest against one store, `fork` it at
    /// an arbitrary instant, and recover from the fork.
    pub fn fork(&self) -> MemoryStore {
        let inner = self.inner.lock().expect("memory store poisoned");
        MemoryStore {
            segment_bytes: self.segment_bytes,
            inner: Arc::new(Mutex::new(inner.clone())),
        }
    }

    /// Fault-injection hook: hands the raw `(wal segments, snapshots)`
    /// to `f` for arbitrary corruption — truncating records, flipping
    /// checksum bits, duplicating tail frames, zeroing segments. This
    /// exists so the hostile-WAL corpus tests can build every crash
    /// shape the recovery path must survive.
    pub fn mutate(&self, f: impl FnOnce(&mut Vec<Vec<u8>>, &mut Vec<Vec<u8>>)) {
        let mut inner = self.inner.lock().expect("memory store poisoned");
        let inner = &mut *inner;
        f(&mut inner.segments, &mut inner.snapshots);
    }

    /// Total bytes currently held in WAL segments.
    pub fn wal_bytes(&self) -> usize {
        let inner = self.inner.lock().expect("memory store poisoned");
        inner.segments.iter().map(Vec::len).sum()
    }

    /// Number of WAL segments (including the active one).
    pub fn segment_count(&self) -> usize {
        self.inner
            .lock()
            .expect("memory store poisoned")
            .segments
            .len()
    }
}

impl UrrStore for MemoryStore {
    fn append_frame(&self, frame: &[u8]) -> Result<bool, StoreError> {
        let mut inner = self.inner.lock().expect("memory store poisoned");
        let rotate = match inner.segments.last() {
            None => true,
            Some(active) => !active.is_empty() && active.len() + frame.len() > self.segment_bytes,
        };
        if rotate {
            inner.segments.push(Vec::new());
        }
        let active = inner.segments.last_mut().expect("segment just ensured");
        active.extend_from_slice(frame);
        // The very first segment of a fresh WAL is creation, not
        // rotation.
        Ok(rotate && inner.segments.len() > 1)
    }

    fn wal_segments(&self) -> Result<Vec<Vec<u8>>, StoreError> {
        Ok(self
            .inner
            .lock()
            .expect("memory store poisoned")
            .segments
            .clone())
    }

    fn write_snapshot(&self, snapshot: &[u8]) -> Result<(), StoreError> {
        let mut inner = self.inner.lock().expect("memory store poisoned");
        inner.snapshots.push(snapshot.to_vec());
        // Keep the latest two generations, like the filesystem backend:
        // the previous snapshot is the fallback if the newest is torn.
        while inner.snapshots.len() > 2 {
            inner.snapshots.remove(0);
        }
        Ok(())
    }

    fn snapshots(&self) -> Result<Vec<Vec<u8>>, StoreError> {
        let inner = self.inner.lock().expect("memory store poisoned");
        Ok(inner.snapshots.iter().rev().cloned().collect())
    }

    fn truncate_wal(&self) -> Result<(), StoreError> {
        self.inner
            .lock()
            .expect("memory store poisoned")
            .segments
            .clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appends_accumulate_and_rotate() {
        let store = MemoryStore::with_segment_bytes(10);
        assert!(!store.append_frame(&[1; 6]).unwrap(), "first segment");
        assert!(!store.append_frame(&[2; 4]).unwrap(), "fits exactly");
        assert!(store.append_frame(&[3; 2]).unwrap(), "rotates");
        assert_eq!(store.segment_count(), 2);
        assert_eq!(store.wal_bytes(), 12);
        let segs = store.wal_segments().unwrap();
        assert_eq!(segs[0].len(), 10);
        assert_eq!(segs[1], vec![3, 3]);
    }

    #[test]
    fn oversized_frame_still_lands_in_one_segment() {
        let store = MemoryStore::with_segment_bytes(4);
        store.append_frame(&[9; 100]).unwrap();
        assert_eq!(store.segment_count(), 1);
        assert_eq!(store.wal_segments().unwrap()[0].len(), 100);
    }

    #[test]
    fn snapshots_keep_two_generations_newest_first() {
        let store = MemoryStore::new();
        assert!(store.snapshots().unwrap().is_empty());
        store.write_snapshot(b"one").unwrap();
        store.write_snapshot(b"two").unwrap();
        store.write_snapshot(b"three").unwrap();
        let snaps = store.snapshots().unwrap();
        assert_eq!(snaps, vec![b"three".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn truncate_clears_wal_not_snapshots() {
        let store = MemoryStore::new();
        store.append_frame(b"frame").unwrap();
        store.write_snapshot(b"snap").unwrap();
        store.truncate_wal().unwrap();
        assert_eq!(store.wal_bytes(), 0);
        assert_eq!(store.snapshots().unwrap().len(), 1);
    }

    #[test]
    fn fork_is_a_deep_copy() {
        let store = MemoryStore::new();
        store.append_frame(b"before").unwrap();
        let fork = store.fork();
        store.append_frame(b"after").unwrap();
        assert_eq!(fork.wal_bytes(), 6);
        assert_eq!(store.wal_bytes(), 11);
    }

    #[test]
    fn mutate_reaches_raw_bytes() {
        let store = MemoryStore::new();
        store.append_frame(b"abc").unwrap();
        store.mutate(|segments, snapshots| {
            segments[0][0] ^= 0xff;
            snapshots.push(b"fake".to_vec());
        });
        assert_ne!(store.wal_segments().unwrap()[0][0], b'a');
        assert_eq!(store.snapshots().unwrap().len(), 1);
    }
}
