//! [`DurableUrr`]: the journaled repository and its crash recovery.
//!
//! `DurableUrr` wraps a live [`Urr`] and a pluggable [`UrrStore`].
//! Every deposit batch is encoded as one WAL frame (intern-table
//! deltas + id records, see [`crate::storage::wal`]), appended to the
//! store **before** the records are applied, and then applied with the
//! same `apply_recs` function recovery uses for replay. Periodically —
//! every `snapshot_every_batches`, or on [`DurableUrr::snapshot_now`]
//! — the full repository is serialised as a compacted snapshot and the
//! WAL is truncated.
//!
//! [`DurableUrr::recover`] rebuilds the repository after a crash: load
//! the newest snapshot that passes its frame checksum and structural
//! validation (falling back to the previous generation, then to
//! empty), then replay the WAL tail in order. Replay skips frames the
//! snapshot already covers (`start_seq` below the watermark — the
//! duplicate-tail shape), stops cleanly at the first torn, truncated,
//! or corrupt record, and never panics on hostile bytes.
//!
//! A journal mutex serialises deposits, snapshots, and delta
//! accounting; reads (queries, [`Urr::snapshot`] freezes) stay on the
//! sharded lock-striped paths and proceed concurrently.

use std::ops::Range;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use mirage_telemetry::Telemetry;

use crate::report::{Report, ReportOutcome};
use crate::storage::frame::{
    decode_frame, encode_frame, FrameScanner, KIND_SNAPSHOT, KIND_WAL_BATCH,
};
use crate::storage::snapshot::{decode_snapshot, encode_snapshot};
use crate::storage::wal::{apply_recs, WalFrame, WalRec};
use crate::storage::{StoreError, UrrStore};
use crate::urr::{InternedOutcome, InternedReport, Payload, Urr, NO_SIG};

/// Construction/recovery options for [`DurableUrr`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Shard (lock-stripe) count for a fresh or WAL-only-recovered
    /// repository; `0` picks `next_pow2(available threads)` like
    /// [`Urr::new`]. A loaded snapshot overrides this with its own
    /// stripe count (the on-disk group index is stripe-faithful).
    pub shards: usize,
    /// Write a compacted snapshot (and truncate the WAL) after this
    /// many journaled batches; `0` disables automatic snapshots.
    pub snapshot_every_batches: u64,
    /// Telemetry handle for `urr.*`, `urr.wal_*`, and `urr.snapshot_*`
    /// counters.
    pub telemetry: Telemetry,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            shards: 0,
            snapshot_every_batches: 512,
            telemetry: Telemetry::noop(),
        }
    }
}

/// What [`DurableUrr::recover`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A snapshot was loaded (false: recovered from WAL alone).
    pub snapshot_loaded: bool,
    /// Snapshot generations that failed validation and were skipped.
    pub snapshots_rejected: usize,
    /// WAL frames replayed onto the snapshot.
    pub frames_replayed: usize,
    /// Records contained in the replayed frames.
    pub records_replayed: u64,
    /// Frames skipped because the snapshot already covered them (the
    /// duplicated-tail crash shape).
    pub frames_skipped: usize,
    /// Why replay stopped before the end of the WAL, if it did —
    /// a torn, truncated, or corrupt tail record.
    pub torn_tail: Option<String>,
}

/// The journaled, crash-recoverable Upgrade Report Repository.
///
/// # Examples
///
/// ```
/// use mirage_report::{DurableConfig, DurableUrr, MemoryStore, Report};
/// let store = MemoryStore::new();
/// let durable = DurableUrr::new(Box::new(store), DurableConfig::default()).unwrap();
/// durable.deposit(Report::success("m1", 0, "mysql", "5.0.27")).unwrap();
/// assert_eq!(durable.urr().stats().total, 1);
/// ```
#[derive(Debug)]
pub struct DurableUrr {
    urr: Arc<Urr>,
    journal: Mutex<Journal>,
}

#[derive(Debug)]
struct Journal {
    store: Box<dyn UrrStore>,
    /// Interner lengths already covered by journaled frames; the next
    /// frame's deltas start here.
    persisted_machines: usize,
    persisted_sigs: usize,
    persisted_releases: usize,
    batches_since_snapshot: u64,
    snapshot_every: u64,
}

impl DurableUrr {
    /// Creates an empty journaled repository over `store`.
    pub fn new(store: Box<dyn UrrStore>, config: DurableConfig) -> Result<Self, StoreError> {
        let urr = if config.shards == 0 {
            Urr::new()
        } else {
            Urr::with_shards(config.shards)
        };
        let urr = urr.with_telemetry(config.telemetry.clone());
        Ok(DurableUrr {
            urr: Arc::new(urr),
            journal: Mutex::new(Journal {
                store,
                persisted_machines: 0,
                persisted_sigs: 0,
                persisted_releases: 0,
                batches_since_snapshot: 0,
                snapshot_every: config.snapshot_every_batches,
            }),
        })
    }

    /// Recovers a journaled repository from `store`: newest valid
    /// snapshot plus WAL-tail replay. Infallible with respect to data
    /// corruption (a damaged tail is discarded, never panicked on);
    /// only store I/O errors surface as `Err`.
    pub fn recover(
        store: Box<dyn UrrStore>,
        config: DurableConfig,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let mut report = RecoveryReport::default();
        let mut recovered: Option<Urr> = None;
        for snap_bytes in store.snapshots()? {
            let loaded = decode_frame(&snap_bytes)
                .ok()
                .filter(|(kind, _)| *kind == KIND_SNAPSHOT)
                .and_then(|(_, payload)| decode_snapshot(payload).ok());
            match loaded {
                Some(urr) => {
                    recovered = Some(urr);
                    report.snapshot_loaded = true;
                    break;
                }
                None => report.snapshots_rejected += 1,
            }
        }
        let urr = recovered.unwrap_or_else(|| {
            if config.shards == 0 {
                Urr::new()
            } else {
                Urr::with_shards(config.shards)
            }
        });
        let urr = urr.with_telemetry(config.telemetry.clone());
        // Replay the WAL tail in segment order, stopping at the first
        // damaged record. Frames fully covered by the snapshot are
        // duplicates (rewritten tails); a gap means lost frames, so the
        // remainder is untrustworthy and discarded.
        'segments: for segment in store.wal_segments()? {
            let mut scanner = FrameScanner::new(&segment);
            while let Some(item) = scanner.next_frame() {
                let (kind, payload) = match item {
                    Ok(hit) => hit,
                    Err(e) => {
                        report.torn_tail = Some(e.to_string());
                        break 'segments;
                    }
                };
                if kind != KIND_WAL_BATCH {
                    report.torn_tail = Some(format!("unexpected frame kind {kind} in wal"));
                    break 'segments;
                }
                let frame = match WalFrame::decode(payload) {
                    Ok(frame) => frame,
                    Err(e) => {
                        report.torn_tail = Some(e.to_string());
                        break 'segments;
                    }
                };
                let n = frame.recs.len() as u64;
                let expected = urr.next_seq();
                if frame.start_seq.saturating_add(n) <= expected {
                    report.frames_skipped += 1;
                    continue;
                }
                if frame.start_seq != expected {
                    report.torn_tail = Some(format!(
                        "wal sequence gap: frame starts at {} but repository is at {expected}",
                        frame.start_seq
                    ));
                    break 'segments;
                }
                frame.intern_deltas(&urr);
                if let Err(e) = frame.validate_ids(&urr) {
                    report.torn_tail = Some(e.to_string());
                    break 'segments;
                }
                let claimed = urr.seq.fetch_add(n, Ordering::Relaxed);
                debug_assert_eq!(claimed, frame.start_seq);
                apply_recs(&urr, frame.recs, claimed);
                report.frames_replayed += 1;
                report.records_replayed += n;
            }
        }
        urr.telemetry
            .counter("urr.wal_replayed_frames", report.frames_replayed as u64);
        urr.telemetry
            .counter("urr.wal_replayed_records", report.records_replayed);
        if report.snapshot_loaded {
            urr.telemetry.counter("urr.snapshot_loads", 1);
        }
        let persisted_machines = urr.machines.read().expect("urr poisoned").names.len();
        let persisted_sigs = urr.sigs.read().expect("urr poisoned").inner.names.len();
        let persisted_releases = urr.releases.read().expect("urr poisoned").pairs.len();
        let durable = DurableUrr {
            urr: Arc::new(urr),
            journal: Mutex::new(Journal {
                store,
                persisted_machines,
                persisted_sigs,
                persisted_releases,
                batches_since_snapshot: report.frames_replayed as u64,
                snapshot_every: config.snapshot_every_batches,
            }),
        };
        Ok((durable, report))
    }

    /// The live repository, for queries, interning, and
    /// [`Urr::snapshot`] freezes. Deposits must go through the durable
    /// layer — records deposited directly on this handle are not
    /// journaled and will not survive recovery.
    pub fn urr(&self) -> &Arc<Urr> {
        &self.urr
    }

    /// Journals and applies one boundary report; returns its sequence
    /// number.
    pub fn deposit(&self, report: Report) -> Result<u64, StoreError> {
        Ok(self.deposit_batch(vec![report])?.start)
    }

    /// Journals and applies a batch of boundary reports (one WAL frame,
    /// one contiguous sequence range).
    pub fn deposit_batch(&self, reports: Vec<Report>) -> Result<Range<u64>, StoreError> {
        let mut journal = self.journal.lock().expect("durable urr poisoned");
        let recs: Vec<WalRec> = reports
            .into_iter()
            .map(|report| {
                let machine = self.urr.intern_machine(&report.machine).0;
                let release = self.urr.intern_release(&report.package, &report.version).0;
                let (sig, detail) = match report.outcome {
                    ReportOutcome::Success => (NO_SIG, String::new()),
                    ReportOutcome::Failure { signature, detail } => {
                        (self.urr.intern_signature(&signature).0, detail)
                    }
                };
                let payload = if detail.is_empty() && report.image.is_none() {
                    None
                } else {
                    Some(Box::new(Payload {
                        detail,
                        image: report.image,
                    }))
                };
                WalRec {
                    machine,
                    cluster: u32::try_from(report.cluster).expect("cluster id overflow"),
                    release,
                    sig,
                    payload,
                }
            })
            .collect();
        self.journal_and_apply(&mut journal, recs)
    }

    /// Journals and applies a batch of pre-interned records — the
    /// simulator's hot path, journaled.
    pub fn deposit_interned_batch(
        &self,
        recs: &[InternedReport],
    ) -> Result<Range<u64>, StoreError> {
        let mut journal = self.journal.lock().expect("durable urr poisoned");
        let recs: Vec<WalRec> = recs
            .iter()
            .map(|r| WalRec {
                machine: r.machine.0,
                cluster: r.cluster,
                release: r.release.0,
                sig: match r.outcome {
                    InternedOutcome::Success => NO_SIG,
                    InternedOutcome::Failure(sig) => sig.0,
                },
                payload: None,
            })
            .collect();
        self.journal_and_apply(&mut journal, recs)
    }

    /// The shared journal-then-apply path. The journal lock is held:
    /// deltas, the claimed sequence range, and the store append are one
    /// atomic step with respect to other depositors.
    fn journal_and_apply(
        &self,
        journal: &mut Journal,
        recs: Vec<WalRec>,
    ) -> Result<Range<u64>, StoreError> {
        let telemetry = &self.urr.telemetry;
        let n = recs.len() as u64;
        let start = self.urr.seq.fetch_add(n, Ordering::Relaxed);
        let (machine_delta, m_len) = {
            let table = self.urr.machines.read().expect("urr poisoned");
            (
                table.names[journal.persisted_machines..].to_vec(),
                table.names.len(),
            )
        };
        let (sig_delta, s_len) = {
            let table = self.urr.sigs.read().expect("urr poisoned");
            (
                table.inner.names[journal.persisted_sigs..].to_vec(),
                table.inner.names.len(),
            )
        };
        let (release_delta, r_len) = {
            let table = self.urr.releases.read().expect("urr poisoned");
            (
                table.pairs[journal.persisted_releases..].to_vec(),
                table.pairs.len(),
            )
        };
        let frame = WalFrame {
            start_seq: start,
            machine_delta,
            sig_delta,
            release_delta,
            recs,
        };
        let bytes = encode_frame(KIND_WAL_BATCH, &frame.encode());
        let rotated = journal.store.append_frame(&bytes)?;
        journal.persisted_machines = m_len;
        journal.persisted_sigs = s_len;
        journal.persisted_releases = r_len;
        telemetry.counter("urr.wal_frames", 1);
        telemetry.counter("urr.wal_bytes", bytes.len() as u64);
        if rotated {
            telemetry.counter("urr.wal_rotations", 1);
        }
        apply_recs(&self.urr, frame.recs, start);
        self.urr.note_batch(n);
        journal.batches_since_snapshot += 1;
        if journal.snapshot_every > 0 && journal.batches_since_snapshot >= journal.snapshot_every {
            self.write_snapshot(journal)?;
        }
        Ok(start..start + n)
    }

    /// Forces a compacted snapshot now (and truncates the WAL).
    pub fn snapshot_now(&self) -> Result<(), StoreError> {
        let mut journal = self.journal.lock().expect("durable urr poisoned");
        self.write_snapshot(&mut journal)
    }

    fn write_snapshot(&self, journal: &mut Journal) -> Result<(), StoreError> {
        let bytes = encode_frame(KIND_SNAPSHOT, &encode_snapshot(&self.urr));
        journal.store.write_snapshot(&bytes)?;
        journal.store.truncate_wal()?;
        journal.batches_since_snapshot = 0;
        let telemetry = &self.urr.telemetry;
        telemetry.counter("urr.snapshot_writes", 1);
        telemetry.counter("urr.snapshot_bytes", bytes.len() as u64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ReportImage;
    use crate::storage::memory::MemoryStore;

    fn config() -> DurableConfig {
        DurableConfig {
            shards: 4,
            snapshot_every_batches: 0,
            ..DurableConfig::default()
        }
    }

    fn assert_surfaces_eq(a: &Urr, b: &Urr) {
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.next_seq(), b.next_seq());
        assert_eq!(a.failure_groups(), b.failure_groups());
        assert_eq!(a.top_k_failure_groups(3), b.top_k_failure_groups(3));
        assert_eq!(a.cluster_failure_rates(), b.cluster_failure_rates());
        assert_eq!(a.release_summaries(), b.release_summaries());
        assert_eq!(a.all(), b.all());
    }

    fn sample_reports() -> Vec<Report> {
        vec![
            Report::success("m1", 0, "mysql", "5.0.27"),
            Report::failure(
                "m2",
                1,
                "mysql",
                "5.0.27",
                "php/crash",
                "stack trace",
                ReportImage::new("d", vec!["c".into()], vec![], vec![]),
            ),
            Report::failure(
                "m3",
                1,
                "mysql",
                "5.0.27",
                "php/crash",
                "",
                ReportImage::default(),
            ),
        ]
    }

    #[test]
    fn wal_only_recovery_reproduces_state() {
        let store = MemoryStore::new();
        let handle = store.clone();
        let durable = DurableUrr::new(Box::new(store), config()).unwrap();
        durable.deposit_batch(sample_reports()).unwrap();
        durable
            .deposit(Report::success("m4", 2, "mysql", "5.0.28"))
            .unwrap();
        let crashed = handle.fork();
        let (recovered, report) = DurableUrr::recover(Box::new(crashed), config()).unwrap();
        assert!(!report.snapshot_loaded);
        assert_eq!(report.frames_replayed, 2);
        assert_eq!(report.records_replayed, 4);
        assert_eq!(report.torn_tail, None);
        assert_surfaces_eq(durable.urr(), recovered.urr());
    }

    #[test]
    fn snapshot_plus_tail_recovery() {
        let store = MemoryStore::new();
        let handle = store.clone();
        let durable = DurableUrr::new(Box::new(store), config()).unwrap();
        durable.deposit_batch(sample_reports()).unwrap();
        durable.snapshot_now().unwrap();
        durable
            .deposit(Report::failure(
                "m9",
                3,
                "mysql",
                "5.0.28",
                "new/sig",
                "",
                ReportImage::default(),
            ))
            .unwrap();
        let crashed = handle.fork();
        let (recovered, report) = DurableUrr::recover(Box::new(crashed), config()).unwrap();
        assert!(report.snapshot_loaded);
        assert_eq!(report.frames_replayed, 1, "only the tail replays");
        assert_surfaces_eq(durable.urr(), recovered.urr());
        // Recovery continues the sequence and stays journaled.
        let seq = recovered
            .deposit(Report::success("m10", 0, "mysql", "5.0.28"))
            .unwrap();
        assert_eq!(seq, 4);
    }

    #[test]
    fn automatic_snapshots_fire_and_truncate() {
        let store = MemoryStore::new();
        let handle = store.clone();
        let durable = DurableUrr::new(
            Box::new(store),
            DurableConfig {
                shards: 2,
                snapshot_every_batches: 2,
                ..DurableConfig::default()
            },
        )
        .unwrap();
        for i in 0..5 {
            durable
                .deposit(Report::success(format!("m{i}"), 0, "p", "1"))
                .unwrap();
        }
        drop(durable);
        assert!(
            !handle.snapshots().unwrap().is_empty(),
            "snapshots were written"
        );
        assert!(
            handle.wal_bytes() < 200,
            "wal was truncated at the last snapshot (still holds {} bytes)",
            handle.wal_bytes()
        );
    }

    #[test]
    fn empty_store_recovers_empty() {
        let (durable, report) =
            DurableUrr::recover(Box::new(MemoryStore::new()), config()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(durable.urr().stats().total, 0);
    }
}
