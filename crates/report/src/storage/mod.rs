//! Durable storage for the Upgrade Report Repository.
//!
//! Mirage's vendor-side URR must survive vendor restarts and crashes
//! without losing the fleet's deposit history. This module provides:
//!
//! - a pluggable [`UrrStore`] backend trait with two implementations —
//!   [`MemoryStore`] (tests, benchmarks) and [`FsStore`] (a directory
//!   of WAL segments and snapshot generations);
//! - a hand-rolled wire codec (`wire`) and checksummed frame format
//!   (`frame`) shared by the WAL, snapshots, and the serving protocol
//!   in [`crate::serve`];
//! - WAL frames (`wal`) that journal each deposit batch as intern
//!   table deltas plus dense-id records, and compacted snapshots
//!   (`snapshot`) that serialise the full sharded repository
//!   stripe-faithfully;
//! - [`DurableUrr`], the journaled repository: it appends a WAL frame
//!   before applying each batch, rotates segments, writes periodic
//!   snapshots, and [`DurableUrr::recover`]s after a crash by loading
//!   the newest valid snapshot and replaying the WAL tail — tolerating
//!   truncated, torn, and corrupt trailing records.

pub(crate) mod frame;
pub(crate) mod snapshot;
pub(crate) mod wal;
pub(crate) mod wire;

mod durable;
mod fs;
mod memory;

pub use durable::{DurableConfig, DurableUrr, RecoveryReport};
pub use fs::FsStore;
pub use memory::{MemoryStore, DEFAULT_SEGMENT_BYTES};
pub use wire::WireError;

use std::fmt;

/// An error from a storage backend.
///
/// The in-memory backend is infallible; the filesystem backend surfaces
/// I/O failures here, tagged with the operation that failed.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation against the backing medium failed.
    Io {
        /// The store operation that failed (e.g. `"append wal frame"`).
        op: &'static str,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl StoreError {
    pub(crate) fn io(op: &'static str, source: std::io::Error) -> Self {
        StoreError::Io { op, source }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, source } => write!(f, "storage i/o failed: {op}: {source}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
        }
    }
}

/// A durable backend for the URR: an append-only WAL of framed batches
/// plus a small set of compacted snapshot generations.
///
/// Implementations must be safe to share across threads; [`DurableUrr`]
/// serialises writes through its journal lock but may read (`snapshots`,
/// `wal_segments`) concurrently during recovery tooling.
pub trait UrrStore: Send + Sync + fmt::Debug {
    /// Appends one encoded frame to the active WAL segment, rotating to
    /// a fresh segment first if the active one would exceed the
    /// configured size. Returns `true` when a rotation happened.
    fn append_frame(&self, frame: &[u8]) -> Result<bool, StoreError>;

    /// All WAL segments in append order (the last is the active one).
    fn wal_segments(&self) -> Result<Vec<Vec<u8>>, StoreError>;

    /// Durably records a new snapshot generation, pruning generations
    /// older than the previous one (the fallback if the newest is torn).
    fn write_snapshot(&self, snapshot: &[u8]) -> Result<(), StoreError>;

    /// Retained snapshot generations, newest first.
    fn snapshots(&self) -> Result<Vec<Vec<u8>>, StoreError>;

    /// Discards all WAL segments (called after a snapshot makes them
    /// redundant).
    fn truncate_wal(&self) -> Result<(), StoreError>;
}
