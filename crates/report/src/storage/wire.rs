//! The hand-rolled binary codec shared by WAL frames, snapshots, and
//! the vendor serving protocol.
//!
//! The workspace is dependency-free, so this is the storage layer's
//! equivalent of the JSON module in `mirage_telemetry`: fixed-width
//! little-endian integers, `u32`-length-prefixed UTF-8 strings, and a
//! bounds-checked [`Cursor`] that turns every malformed input —
//! truncation, invalid UTF-8, absurd element counts, corrupt checksums
//! — into a typed [`WireError`] instead of a panic or an unbounded
//! allocation. A CRC-32 (IEEE) implementation lives here too; the frame
//! layer checksums every record with it.

use std::fmt;

/// Upper bound on any single length-prefixed element count or byte
/// length. Hostile input can claim a 4 GiB string in 4 bytes; this cap
/// (together with the remaining-bytes check in [`Cursor::list_len`])
/// keeps decode allocation proportional to the actual input size.
pub(crate) const MAX_LEN: usize = 1 << 30;

/// A decoding error from the storage/serving byte codec.
///
/// Every variant is a *clean rejection*: decoding hostile bytes returns
/// one of these, never panics, and never allocates more than the input
/// itself justifies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the announced structure did.
    Truncated {
        /// What was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// An enum tag byte had no defined meaning.
    BadTag {
        /// The enum being decoded.
        what: &'static str,
        /// The unrecognised tag value.
        tag: u8,
    },
    /// A declared length exceeded the codec cap or the remaining input.
    Oversize {
        /// The structure whose length was absurd.
        what: &'static str,
    },
    /// A frame failed its integrity checks (magic or checksum).
    BadFrame {
        /// Which check failed.
        what: &'static str,
    },
    /// Structurally valid bytes describing an impossible value (e.g. an
    /// interned id out of table range).
    Corrupt {
        /// The violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated input while decoding {what}"),
            WireError::InvalidUtf8 => write!(f, "length-prefixed string is not valid UTF-8"),
            WireError::BadTag { what, tag } => write!(f, "unknown tag {tag} for {what}"),
            WireError::Oversize { what } => write!(f, "declared length for {what} is absurd"),
            WireError::BadFrame { what } => write!(f, "frame integrity check failed: {what}"),
            WireError::Corrupt { what } => write!(f, "corrupt value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven, built at compile time.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) over `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------

/// Appends a `u8`.
pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a little-endian `u32`.
pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    let len = u32::try_from(s.len()).expect("string exceeds u32 length prefix");
    put_u32(buf, len);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends a `u32` element count (the writer side of
/// [`Cursor::list_len`]).
pub(crate) fn put_len(buf: &mut Vec<u8>, n: usize) {
    put_u32(
        buf,
        u32::try_from(n).expect("list exceeds u32 length prefix"),
    );
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// A bounds-checked reader over a byte slice.
#[derive(Debug)]
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps `buf` with the read position at the start.
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes `n` raw bytes.
    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { what });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a `u8`.
    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u64` and narrows it to `usize`.
    pub(crate) fn u64_as_usize(&mut self, what: &'static str) -> Result<usize, WireError> {
        usize::try_from(self.u64(what)?).map_err(|_| WireError::Oversize { what })
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub(crate) fn str_(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.u32(what)? as usize;
        if len > MAX_LEN || len > self.remaining() {
            return Err(WireError::Oversize { what });
        }
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads a `u32` element count for a list whose elements are at
    /// least `min_elem` bytes each, rejecting counts the remaining
    /// input cannot possibly hold. This bounds every decode-side
    /// allocation by the input size.
    pub(crate) fn list_len(
        &mut self,
        min_elem: usize,
        what: &'static str,
    ) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        if n > MAX_LEN || n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(WireError::Oversize { what });
        }
        Ok(n)
    }

    /// Asserts every byte was consumed (a valid document has no slack).
    pub(crate) fn finish(self, what: &'static str) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Corrupt { what })
        }
    }
}

/// Reads a list of strings written as `put_len` + `put_str` each.
pub(crate) fn get_string_list(
    cur: &mut Cursor<'_>,
    what: &'static str,
) -> Result<Vec<String>, WireError> {
    let n = cur.list_len(4, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(cur.str_(what)?);
    }
    Ok(out)
}

/// Writes a list of strings as `put_len` + `put_str` each.
pub(crate) fn put_string_list(buf: &mut Vec<u8>, items: &[String]) {
    put_len(buf, items.len());
    for s in items {
        put_str(buf, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn ints_and_strings_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_str(&mut buf, "日本語-🦀");
        put_string_list(&mut buf, &["a".to_string(), String::new()]);
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.u8("t").unwrap(), 7);
        assert_eq!(cur.u32("t").unwrap(), 0xdead_beef);
        assert_eq!(cur.u64("t").unwrap(), u64::MAX - 1);
        assert_eq!(cur.str_("t").unwrap(), "日本語-🦀");
        assert_eq!(get_string_list(&mut cur, "t").unwrap(), vec!["a", ""]);
        cur.finish("t").unwrap();
    }

    #[test]
    fn truncated_reads_are_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 42);
        let mut cur = Cursor::new(&buf[..5]);
        assert!(matches!(
            cur.u64("num"),
            Err(WireError::Truncated { what: "num" })
        ));
    }

    #[test]
    fn absurd_lengths_are_rejected_without_allocating() {
        // A 4-byte input claiming a 4 GiB string.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(matches!(
            Cursor::new(&buf).str_("s"),
            Err(WireError::Oversize { .. })
        ));
        // A list count far beyond what the input could hold.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1_000_000);
        assert!(matches!(
            Cursor::new(&buf).list_len(4, "list"),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(Cursor::new(&buf).str_("s"), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let cur = Cursor::new(&[0u8]);
        assert!(matches!(
            cur.finish("doc"),
            Err(WireError::Corrupt { what: "doc" })
        ));
    }

    #[test]
    fn errors_display() {
        let variants: Vec<WireError> = vec![
            WireError::Truncated { what: "x" },
            WireError::InvalidUtf8,
            WireError::BadTag { what: "x", tag: 9 },
            WireError::Oversize { what: "x" },
            WireError::BadFrame { what: "x" },
            WireError::Corrupt { what: "x" },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
