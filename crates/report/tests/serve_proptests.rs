//! Randomised tests of the vendor serving layer: request/response
//! frames must round-trip hostile strings byte-exactly, every corrupted
//! or truncated frame must be rejected cleanly, and a frozen
//! [`UrrSnapshot`] must keep answering identically from many reader
//! threads while ingest continues on the live repository.

use std::sync::Arc;

use mirage_report::{Report, ReportImage, Urr, UrrRequest, UrrResponse};

/// Deterministic xorshift64 generator (same idiom as `proptests.rs`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

const SIGNATURES: &[&str] = &[
    "php/crash",
    "ssh/\"quoted\"",
    "esc\\backslash\nnewline\ttab",
    "unicode/日本語-🦀",
    "",
    "control/\u{0001}\u{001f}",
];

fn random_request(rng: &mut Rng) -> UrrRequest {
    let sig = || SIGNATURES[0];
    match rng.below(8) {
        0 => UrrRequest::Stats,
        1 => UrrRequest::FailureGroups,
        2 => UrrRequest::TopK(rng.next()),
        3 => UrrRequest::ClusterRates,
        4 => {
            let start = rng.next();
            UrrRequest::FirstSeenIn {
                start,
                end: start.wrapping_add(rng.below(1000) as u64),
            }
        }
        5 => UrrRequest::MachinesForSignature {
            signature: SIGNATURES[rng.below(SIGNATURES.len())].to_string(),
        },
        6 => UrrRequest::ClustersForSignature {
            signature: SIGNATURES[rng.below(SIGNATURES.len())].to_string(),
        },
        _ => {
            let _ = sig;
            UrrRequest::ReleaseSummaries
        }
    }
}

fn populated(rng: &mut Rng, reports: usize) -> Urr {
    let urr = Urr::with_shards(4);
    for _ in 0..reports {
        let machine = format!("m{}", rng.below(12));
        let cluster = rng.below(5);
        if rng.chance(50) {
            urr.deposit(Report::success(machine, cluster, "mysql", "5.0.27"));
        } else {
            urr.deposit(Report::failure(
                machine,
                cluster,
                "mysql",
                "5.0.27",
                SIGNATURES[rng.below(SIGNATURES.len())],
                "d",
                ReportImage::default(),
            ));
        }
    }
    urr
}

/// Random requests round-trip through their frames, and the snapshot's
/// framed answer always decodes back to the direct answer.
#[test]
fn request_response_frames_roundtrip_randomised() {
    let mut rng = Rng::new(0x5eed_0008);
    let snap = populated(&mut rng, 200).snapshot();
    for case in 0..500 {
        let req = random_request(&mut rng);
        let frame = req.to_frame();
        assert_eq!(
            UrrRequest::from_frame(&frame).unwrap(),
            req,
            "case {case}: request roundtrip"
        );
        let resp_frame = snap.serve(&frame).unwrap();
        let resp = UrrResponse::from_frame(&resp_frame).unwrap();
        assert_eq!(
            resp,
            snap.answer(&req),
            "case {case}: response matches direct answer"
        );
        assert_eq!(
            resp.to_frame(),
            resp_frame,
            "case {case}: response re-encode"
        );
    }
}

/// Every single-bit corruption and every truncation of valid request
/// *and* response frames is rejected cleanly (or, for in-payload bits
/// caught only by CRC, still never panics).
#[test]
fn corrupted_frames_are_rejected_not_panicked() {
    let mut rng = Rng::new(0x5eed_0009);
    let snap = populated(&mut rng, 60).snapshot();
    for case in 0..40 {
        let req = random_request(&mut rng);
        let req_frame = req.to_frame();
        let resp_frame = snap.serve(&req_frame).unwrap();
        for frame in [&req_frame, &resp_frame] {
            for len in 0..frame.len() {
                assert!(
                    UrrRequest::from_frame(&frame[..len]).is_err(),
                    "case {case}: truncated request accepted at {len}"
                );
                assert!(
                    UrrResponse::from_frame(&frame[..len]).is_err(),
                    "case {case}: truncated response accepted at {len}"
                );
            }
            // Single-bit flips: the CRC catches them; decode must error.
            for _ in 0..32 {
                let mut bad = frame.clone();
                let i = rng.below(bad.len());
                bad[i] ^= 1 << rng.below(8);
                if bad == *frame {
                    continue;
                }
                assert!(
                    UrrRequest::from_frame(&bad).is_err(),
                    "case {case}: bit-flipped request accepted"
                );
                assert!(
                    UrrResponse::from_frame(&bad).is_err(),
                    "case {case}: bit-flipped response accepted"
                );
            }
        }
    }
}

/// N reader threads hammer one frozen snapshot while the live
/// repository keeps ingesting: every reader sees the identical frozen
/// answers throughout, and a snapshot taken afterwards sees the new
/// deposits.
#[test]
fn frozen_snapshot_serves_concurrent_readers_during_ingest() {
    let mut rng = Rng::new(0x5eed_000a);
    let urr = Arc::new(populated(&mut rng, 300));
    let snap = Arc::new(urr.snapshot());
    let baseline_stats = snap.stats();
    let baseline_groups = snap.failure_groups();
    let baseline_top = snap.top_k_failure_groups(3);

    let readers: Vec<_> = (0..8)
        .map(|t| {
            let snap = Arc::clone(&snap);
            let baseline_stats = baseline_stats.clone();
            let baseline_groups = baseline_groups.clone();
            let baseline_top = baseline_top.clone();
            std::thread::spawn(move || {
                let mut rng = Rng::new(0x1000 + t);
                for i in 0..300 {
                    let req = random_request(&mut rng);
                    let resp_frame = snap.serve(&req.to_frame()).expect("serve");
                    let resp = UrrResponse::from_frame(&resp_frame).expect("decode");
                    assert_eq!(resp, snap.answer(&req), "reader {t} iter {i}");
                    assert_eq!(
                        snap.stats(),
                        baseline_stats,
                        "reader {t} iter {i}: stats moved"
                    );
                    if i % 50 == 0 {
                        assert_eq!(snap.failure_groups(), baseline_groups);
                        assert_eq!(snap.top_k_failure_groups(3), baseline_top);
                    }
                }
            })
        })
        .collect();

    let writer = {
        let urr = Arc::clone(&urr);
        std::thread::spawn(move || {
            let mut rng = Rng::new(0x2000);
            for _ in 0..2000 {
                let machine = format!("w{}", rng.below(40));
                urr.deposit(Report::failure(
                    machine,
                    rng.below(5),
                    "mysql",
                    "5.0.28",
                    SIGNATURES[rng.below(SIGNATURES.len())],
                    "",
                    ReportImage::default(),
                ));
            }
        })
    };

    for r in readers {
        r.join().expect("reader");
    }
    writer.join().expect("writer");

    assert_eq!(snap.stats(), baseline_stats, "frozen view never moved");
    let after = urr.snapshot();
    assert_eq!(
        after.stats().total,
        baseline_stats.total + 2000,
        "a fresh snapshot sees the concurrent ingest"
    );
}
