//! Randomised crash-recovery tests of the storage layer.
//!
//! The central property (24 seeded cases, mirroring the repository's
//! reference-equivalence convention): for a random mixed stream of
//! boundary and pre-interned deposit batches with snapshots taken at
//! random points, `recover(snapshot + WAL)` reproduces the live
//! [`Urr`] **exactly**, across every query surface the repository
//! exposes. A second suite feeds recovery a hostile-WAL corpus —
//! truncated records, bit-flipped checksums, zero-length segments,
//! duplicated tail frames, garbage appends — and requires a clean
//! recovery or rejection, never a panic.

use mirage_report::{
    DurableConfig, DurableUrr, FsStore, InternedOutcome, InternedReport, MemoryStore, Report,
    ReportImage, Urr, UrrStore,
};

/// Deterministic xorshift64 generator (same idiom as `proptests.rs`).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// Hostile signature pool: quoting, escapes, unicode, empty strings,
/// and control characters all travel through the WAL and snapshot
/// codecs.
const SIGNATURES: &[&str] = &[
    "php/crash",
    "mycnf/overwritten",
    "firefox/prefs",
    "ssh/\"quoted\"",
    "esc\\backslash\nnewline\ttab",
    "unicode/日本語-🦀",
    "",
    "control/\u{0001}\u{001f}",
];

const PACKAGES: &[(&str, &str)] = &[
    ("mysql", "5.0.27"),
    ("mysql", "5.0.28"),
    ("firefox", "2.0.0"),
    ("upgrade", "r1"),
];

fn random_report(rng: &mut Rng, machines: usize, clusters: usize) -> Report {
    let machine = format!("m{}", rng.below(machines));
    let cluster = rng.below(clusters);
    let (package, version) = PACKAGES[rng.below(PACKAGES.len())];
    if rng.chance(55) {
        Report::success(machine, cluster, package, version)
    } else {
        let sig = SIGNATURES[rng.below(SIGNATURES.len())];
        let image = if rng.chance(60) {
            ReportImage::new(
                format!("digest-{:x}", rng.next()),
                vec![format!("ctx{}", rng.below(9))],
                vec!["input \"x\"".into()],
                vec!["out\\y".into()],
            )
        } else {
            ReportImage::default()
        };
        Report::failure(
            machine,
            cluster,
            package,
            version,
            sig,
            "detail: \u{7}",
            image,
        )
    }
}

fn random_interned_batch(
    rng: &mut Rng,
    urr: &Urr,
    machines: usize,
    clusters: usize,
    len: usize,
) -> Vec<InternedReport> {
    (0..len)
        .map(|_| {
            let machine = urr.intern_machine(&format!("m{}", rng.below(machines)));
            let (package, version) = PACKAGES[rng.below(PACKAGES.len())];
            let release = urr.intern_release(package, version);
            let outcome = if rng.chance(55) {
                InternedOutcome::Success
            } else {
                InternedOutcome::Failure(
                    urr.intern_signature(SIGNATURES[rng.below(SIGNATURES.len())]),
                )
            };
            InternedReport {
                machine,
                cluster: rng.below(clusters) as u32,
                release,
                outcome,
            }
        })
        .collect()
}

/// Asserts every query surface of `b` matches `a` exactly.
fn assert_urr_identical(a: &Urr, b: &Urr, ctx: &str) {
    assert_eq!(a.next_seq(), b.next_seq(), "{ctx}: next_seq");
    assert_eq!(a.stats(), b.stats(), "{ctx}: stats");
    assert_eq!(
        a.failure_groups(),
        b.failure_groups(),
        "{ctx}: failure_groups"
    );
    for k in [0, 1, 3, usize::MAX] {
        assert_eq!(
            a.top_k_failure_groups(k),
            b.top_k_failure_groups(k),
            "{ctx}: top_k({k})"
        );
    }
    assert_eq!(
        a.cluster_failure_rates(),
        b.cluster_failure_rates(),
        "{ctx}: cluster_failure_rates"
    );
    for sig in SIGNATURES.iter().chain(["never/seen"].iter()) {
        assert_eq!(
            a.machines_for_signature(sig),
            b.machines_for_signature(sig),
            "{ctx}: machines_for_signature({sig:?})"
        );
        assert_eq!(
            a.clusters_for_signature(sig),
            b.clusters_for_signature(sig),
            "{ctx}: clusters_for_signature({sig:?})"
        );
    }
    let hi = a.next_seq();
    for window in [0..hi, 0..hi / 2, hi / 3..hi, 5..6] {
        assert_eq!(
            a.first_seen_in(window.clone()),
            b.first_seen_in(window.clone()),
            "{ctx}: first_seen_in({window:?})"
        );
    }
    assert_eq!(
        a.release_summaries(),
        b.release_summaries(),
        "{ctx}: release_summaries"
    );
    assert_eq!(
        a.discovery_profile(),
        b.discovery_profile(),
        "{ctx}: discovery_profile"
    );
    assert_eq!(a.all(), b.all(), "{ctx}: all");
    for (package, version) in PACKAGES {
        assert_eq!(
            a.for_version(package, version),
            b.for_version(package, version),
            "{ctx}: for_version({package} {version})"
        );
    }
    for cluster in 0..6 {
        assert_eq!(
            a.for_cluster(cluster),
            b.for_cluster(cluster),
            "{ctx}: for_cluster({cluster})"
        );
    }
    assert_eq!(a.to_json(), b.to_json(), "{ctx}: to_json");
    // The frozen serving view is built from the same surfaces.
    assert_eq!(a.snapshot(), b.snapshot(), "{ctx}: serve snapshot");
}

/// Drives `durable` with a random mixed stream; returns nothing — state
/// accumulates in the durable repository and its store.
fn drive(rng: &mut Rng, durable: &DurableUrr, machines: usize, clusters: usize, batches: usize) {
    for _ in 0..batches {
        match rng.below(4) {
            // Boundary single deposit.
            0 => {
                durable
                    .deposit(random_report(rng, machines, clusters))
                    .expect("deposit");
            }
            // Boundary batch (possibly empty).
            1 | 2 => {
                let len = rng.below(24);
                let batch: Vec<Report> = (0..len)
                    .map(|_| random_report(rng, machines, clusters))
                    .collect();
                durable.deposit_batch(batch).expect("deposit_batch");
            }
            // Pre-interned batch: interning happens up front on the live
            // handle, so the WAL's intern-delta journaling is exercised
            // with deltas that arrive *between* record batches.
            _ => {
                let len = rng.below(24);
                let batch = random_interned_batch(rng, durable.urr(), machines, clusters, len);
                durable
                    .deposit_interned_batch(&batch)
                    .expect("deposit_interned_batch");
            }
        }
        if rng.chance(12) {
            durable.snapshot_now().expect("snapshot_now");
        }
    }
}

/// The 24-case seeded recovery property:
/// `recover(snapshot + WAL) == live Urr` across every query surface.
#[test]
fn urr_recovery_equivalence() {
    let mut rng = Rng::new(0x5eed_0006);
    for case in 0..24 {
        let machines = 2 + rng.below(20);
        let clusters = 1 + rng.below(6);
        let batches = rng.below(40);
        let config = DurableConfig {
            shards: 1 << (case % 4), // 1, 2, 4, 8
            // Mix manual-only, aggressive, and occasional auto-snapshots.
            snapshot_every_batches: [0, 1, 7][case % 3],
            ..DurableConfig::default()
        };
        let store = MemoryStore::with_segment_bytes(1 << (6 + case % 8));
        let handle = store.clone();
        let durable = DurableUrr::new(Box::new(store), config.clone()).expect("new");
        drive(&mut rng, &durable, machines, clusters, batches);
        // Crash: image the store at this instant and recover from it.
        let crashed = handle.fork();
        let (recovered, report) = DurableUrr::recover(Box::new(crashed), config).expect("recover");
        assert_eq!(
            report.torn_tail, None,
            "case {case}: clean WAL has no torn tail"
        );
        assert_urr_identical(durable.urr(), recovered.urr(), &format!("case {case}"));
    }
}

/// The recovery property holds through the filesystem backend too:
/// drop the store (process death), reopen the directory, recover.
#[test]
fn urr_recovery_equivalence_fs() {
    let root = std::env::temp_dir().join(format!("mirage-storeprop-{}", std::process::id()));
    let mut rng = Rng::new(0x5eed_0007);
    for case in 0..4 {
        let root = root.join(format!("case{case}"));
        let _ = std::fs::remove_dir_all(&root);
        let config = DurableConfig {
            shards: 1 << (case % 4),
            snapshot_every_batches: [0, 5][case % 2],
            ..DurableConfig::default()
        };
        let store = FsStore::open_with_segment_bytes(&root, 512).expect("open");
        let durable = DurableUrr::new(Box::new(store), config.clone()).expect("new");
        drive(&mut rng, &durable, 8, 4, 20);
        let reopened = FsStore::open_with_segment_bytes(&root, 512).expect("reopen");
        let (recovered, report) = DurableUrr::recover(Box::new(reopened), config).expect("recover");
        assert_eq!(report.torn_tail, None, "fs case {case}");
        assert_urr_identical(durable.urr(), recovered.urr(), &format!("fs case {case}"));
        std::fs::remove_dir_all(&root).expect("cleanup");
    }
}

// ---------------------------------------------------------------------
// Hostile-WAL corpus
// ---------------------------------------------------------------------

/// Builds a store with some journaled history: `full_batches` batches,
/// an optional mid-stream snapshot. Returns the store handle and the
/// live durable (kept alive so tests can compare prefixes).
fn journaled_history(snapshot_mid: bool) -> (MemoryStore, DurableUrr) {
    let mut rng = Rng::new(0xc0_ffee);
    let store = MemoryStore::with_segment_bytes(256);
    let handle = store.clone();
    let config = DurableConfig {
        shards: 4,
        snapshot_every_batches: 0,
        ..DurableConfig::default()
    };
    let durable = DurableUrr::new(Box::new(store), config).expect("new");
    for i in 0..12 {
        let batch: Vec<Report> = (0..1 + rng.below(6))
            .map(|_| random_report(&mut rng, 10, 4))
            .collect();
        durable.deposit_batch(batch).expect("deposit");
        if snapshot_mid && i == 5 {
            durable.snapshot_now().expect("snapshot");
        }
    }
    (handle, durable)
}

fn recover_must_not_panic(store: MemoryStore, live: &DurableUrr, ctx: &str) {
    let config = DurableConfig {
        shards: 4,
        snapshot_every_batches: 0,
        ..DurableConfig::default()
    };
    let (recovered, report) = DurableUrr::recover(Box::new(store), config)
        .unwrap_or_else(|e| panic!("{ctx}: store error {e}"));
    // Whatever survived must be a *prefix* of the live history: never
    // more records than the live repository, and every answered query
    // must come from a self-consistent repository.
    let live_seq = live.urr().next_seq();
    let got_seq = recovered.urr().next_seq();
    assert!(
        got_seq <= live_seq,
        "{ctx}: recovered {got_seq} past live {live_seq} (report {report:?})"
    );
    let stats = recovered.urr().stats();
    assert_eq!(
        stats.successes + stats.failures,
        stats.total,
        "{ctx}: inconsistent stats"
    );
    // Exercise the full query surface over the damaged recovery.
    let _ = recovered.urr().failure_groups();
    let _ = recovered.urr().top_k_failure_groups(3);
    let _ = recovered.urr().cluster_failure_rates();
    let _ = recovered.urr().release_summaries();
    let _ = recovered.urr().to_json();
    let _ = recovered.urr().snapshot();
}

/// Crash-consistency gate (run by name in CI, release mode): every
/// shape in the hostile-WAL corpus — truncated record, bit-flipped
/// checksum, zero-length segment, duplicated tail frame, garbage
/// appends, torn snapshot — recovers or rejects cleanly. Never panics.
#[test]
fn hostile_wal_corpus_never_panics() {
    for snapshot_mid in [false, true] {
        // Truncated trailing record: cut the last segment at every
        // length (byte-granular for short tails, strided for long).
        let (handle, live) = journaled_history(snapshot_mid);
        let total = handle
            .fork()
            .wal_segments()
            .expect("segments")
            .last()
            .map_or(0, Vec::len);
        let mut cut = 0;
        while cut <= total {
            let crashed = handle.fork();
            crashed.mutate(|segments, _| {
                if let Some(last) = segments.last_mut() {
                    let keep = last.len() - cut.min(last.len());
                    last.truncate(keep);
                }
            });
            recover_must_not_panic(
                crashed,
                &live,
                &format!("truncate cut={cut} snap={snapshot_mid}"),
            );
            cut += 1 + cut / 7;
        }

        // Bit-flipped checksum/body: flip one bit at strided offsets in
        // every segment.
        let crashed = handle.fork();
        let n_segments = crashed.wal_segments().expect("segments").len();
        for seg in 0..n_segments {
            for stride in 0..8 {
                let crashed = handle.fork();
                crashed.mutate(|segments, _| {
                    let s = &mut segments[seg];
                    if !s.is_empty() {
                        let i = (s.len() / 8) * stride % s.len();
                        s[i] ^= 1 << (stride % 8);
                    }
                });
                recover_must_not_panic(
                    crashed,
                    &live,
                    &format!("bitflip seg={seg} stride={stride} snap={snapshot_mid}"),
                );
            }
        }

        // Zero-length segment spliced into the chain.
        for at in 0..=n_segments {
            let crashed = handle.fork();
            crashed.mutate(|segments, _| segments.insert(at, Vec::new()));
            recover_must_not_panic(
                crashed,
                &live,
                &format!("empty seg at={at} snap={snapshot_mid}"),
            );
        }

        // Duplicated tail frame: re-append the last segment's bytes (the
        // classic rewrite-after-partial-flush shape). Recovery must skip
        // the duplicates, not double-count.
        let crashed = handle.fork();
        crashed.mutate(|segments, _| {
            if let Some(last) = segments.last().cloned() {
                segments.push(last);
            }
        });
        let config = DurableConfig {
            shards: 4,
            snapshot_every_batches: 0,
            ..DurableConfig::default()
        };
        let (recovered, report) =
            DurableUrr::recover(Box::new(crashed), config).expect("recover dup tail");
        assert!(report.frames_skipped > 0, "duplicate frames were skipped");
        assert_urr_identical(
            live.urr(),
            recovered.urr(),
            &format!("dup tail snap={snapshot_mid}"),
        );

        // Garbage appended after valid frames.
        for garbage in [&[0xffu8; 3][..], &[0u8; 64][..], b"MRF1MRF1MRF1"] {
            let crashed = handle.fork();
            crashed.mutate(|segments, _| {
                if let Some(last) = segments.last_mut() {
                    last.extend_from_slice(garbage);
                }
            });
            recover_must_not_panic(
                crashed,
                &live,
                &format!("garbage {:02x?} snap={snapshot_mid}", &garbage[..2]),
            );
        }

        // Torn / corrupt snapshots: recovery falls back to the previous
        // generation or to WAL-only replay.
        if snapshot_mid {
            for shape in 0..3 {
                let crashed = handle.fork();
                crashed.mutate(|_, snapshots| match shape {
                    0 => {
                        for s in snapshots.iter_mut() {
                            s.truncate(s.len() / 2);
                        }
                    }
                    1 => {
                        for s in snapshots.iter_mut() {
                            if !s.is_empty() {
                                let mid = s.len() / 2;
                                s[mid] ^= 0x10;
                            }
                        }
                    }
                    _ => snapshots.push(b"not a snapshot".to_vec()),
                });
                recover_must_not_panic(crashed, &live, &format!("snapshot shape={shape}"));
            }
        }
    }
}

/// An undamaged duplicate-free WAL with a *gap* (a dropped middle
/// segment) must not silently stitch the halves together.
#[test]
fn wal_gap_stops_replay() {
    let (handle, live) = journaled_history(false);
    let crashed = handle.fork();
    let n = crashed.wal_segments().expect("segments").len();
    if n < 3 {
        // Segment size guarantees several segments; guard anyway.
        return;
    }
    crashed.mutate(|segments, _| {
        segments.remove(1);
    });
    let config = DurableConfig {
        shards: 4,
        snapshot_every_batches: 0,
        ..DurableConfig::default()
    };
    let (recovered, report) = DurableUrr::recover(Box::new(crashed), config).expect("recover");
    assert!(report.torn_tail.is_some(), "gap must be reported");
    assert!(recovered.urr().next_seq() < live.urr().next_seq());
}
