//! Randomised tests of the report crate: the sharded repository must be
//! observationally identical to the retained string-keyed reference on
//! random report streams, and the hand-rolled JSON codec must
//! round-trip hostile strings and numeric edge cases.
//!
//! Streams are generated with a seeded xorshift generator, so every run
//! exercises the same cases deterministically and offline.

use mirage_report::{reference, Report, ReportImage, ReportOutcome, Urr};

/// Deterministic xorshift64 generator for report streams.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// Signature pool with deliberately hostile names: shard-hash
/// collisions aside, these exercise escaping, unicode, and
/// empty-string handling end to end.
const SIGNATURES: &[&str] = &[
    "php/crash",
    "mycnf/overwritten",
    "firefox/prefs",
    "ssh/\"quoted\"",
    "esc\\backslash\nnewline\ttab",
    "unicode/日本語-🦀",
    "",
    "control/\u{0001}\u{001f}",
];

const PACKAGES: &[(&str, &str)] = &[
    ("mysql", "5.0.27"),
    ("mysql", "5.0.28"),
    ("firefox", "2.0.0"),
    ("upgrade", "r1"),
];

fn random_report(rng: &mut Rng, machines: usize, clusters: usize) -> Report {
    let machine = format!("m{}", rng.below(machines));
    let cluster = rng.below(clusters);
    let (package, version) = PACKAGES[rng.below(PACKAGES.len())];
    if rng.chance(55) {
        Report::success(machine, cluster, package, version)
    } else {
        let sig = SIGNATURES[rng.below(SIGNATURES.len())];
        let image = if rng.chance(70) {
            ReportImage::new(
                format!("digest-{:x}", rng.next()),
                vec![format!("ctx{}", rng.below(9))],
                vec!["input \"x\"".into()],
                vec!["out\\y".into()],
            )
        } else {
            ReportImage::default()
        };
        Report::failure(
            machine,
            cluster,
            package,
            version,
            sig,
            "detail: \u{7}",
            image,
        )
    }
}

/// The seeded equivalence property required by the reference-plane
/// convention: for random report streams, the sharded [`Urr`] and the
/// string-keyed [`reference::Urr`] produce identical stats, failure
/// groups, release summaries, discovery profiles, snapshots, and
/// filtered queries — at several shard counts, and for both the
/// one-at-a-time and batched ingest paths.
#[test]
fn urr_reference_equivalence() {
    let mut rng = Rng::new(0x5eed_0005);
    for case in 0..24 {
        let machines = 2 + rng.below(20);
        let clusters = 1 + rng.below(6);
        let len = rng.below(120);
        let stream: Vec<Report> = (0..len)
            .map(|_| random_report(&mut rng, machines, clusters))
            .collect();

        let refr = reference::Urr::new();
        for r in stream.iter().cloned() {
            refr.deposit(r);
        }

        let shard_count = 1usize << (case % 4); // 1, 2, 4, 8
        let urr = Urr::with_shards(shard_count);
        if case % 2 == 0 {
            for r in stream.iter().cloned() {
                urr.deposit(r);
            }
        } else {
            urr.deposit_batch(stream.clone());
        }

        assert_eq!(urr.stats(), refr.stats(), "case {case}: stats");
        assert_eq!(
            urr.failure_groups(),
            refr.failure_groups(),
            "case {case}: failure groups ({shard_count} shards)"
        );
        assert_eq!(
            urr.release_summaries(),
            refr.release_summaries(),
            "case {case}: release summaries"
        );
        assert_eq!(
            urr.discovery_profile(),
            refr.discovery_profile(),
            "case {case}: discovery profile"
        );
        assert_eq!(urr.all(), refr.all(), "case {case}: deposit-order snapshot");
        for (package, version) in PACKAGES {
            assert_eq!(
                urr.for_version(package, version),
                refr.for_version(package, version),
                "case {case}: for_version {package} {version}"
            );
        }
        for cluster in 0..clusters {
            assert_eq!(
                urr.for_cluster(cluster),
                refr.for_cluster(cluster),
                "case {case}: for_cluster {cluster}"
            );
        }

        // Drill-downs agree with the reference's grouped view.
        let ref_groups = refr.failure_groups();
        for g in &ref_groups {
            assert_eq!(
                urr.machines_for_signature(&g.signature).as_ref(),
                Some(&g.machines),
                "case {case}: machine drill-down for {:?}",
                g.signature
            );
            assert_eq!(
                urr.clusters_for_signature(&g.signature).as_ref(),
                Some(&g.clusters),
                "case {case}: cluster drill-down for {:?}",
                g.signature
            );
        }

        // Top-k with k = ∞ is the full group list re-ranked by
        // (count desc, discovery asc).
        let mut ranked = ref_groups.clone();
        ranked.sort_by(|a, b| b.count.cmp(&a.count).then(a.first_seen.cmp(&b.first_seen)));
        assert_eq!(
            urr.top_k_failure_groups(usize::MAX),
            ranked,
            "case {case}: top-k ranking"
        );
        if !ranked.is_empty() {
            let k = 1 + rng.below(ranked.len());
            assert_eq!(
                urr.top_k_failure_groups(k),
                ranked[..k],
                "case {case}: top-{k}"
            );
        }

        // Windowed discovery queries agree with filtering the
        // reference's group list on first_seen.
        let total = refr.stats().total as u64;
        for window in [0..total, 0..total / 2, total / 3..total, 1..1 + total / 2] {
            let expect: Vec<_> = ref_groups
                .iter()
                .filter(|g| window.contains(&g.first_seen))
                .cloned()
                .collect();
            assert_eq!(
                urr.first_seen_in(window.clone()),
                expect,
                "case {case}: first_seen_in {window:?}"
            );
        }

        // Per-cluster rates match tallies recomputed from the raw
        // reference stream.
        let mut tallies = vec![(0usize, 0usize); clusters];
        for r in refr.all() {
            if r.outcome.is_success() {
                tallies[r.cluster].0 += 1;
            } else {
                tallies[r.cluster].1 += 1;
            }
        }
        let expect: Vec<(usize, usize, usize)> = tallies
            .iter()
            .enumerate()
            .filter(|(_, (s, f))| s + f > 0)
            .map(|(c, &(s, f))| (c, s, f))
            .collect();
        let got: Vec<(usize, usize, usize)> = urr
            .cluster_failure_rates()
            .into_iter()
            .map(|r| (r.cluster, r.successes, r.failures))
            .collect();
        assert_eq!(got, expect, "case {case}: cluster failure rates");

        // Both serialised forms restore into equal repositories.
        let restored = Urr::from_json(&refr.to_json()).expect("reference json");
        assert_eq!(restored.all(), urr.all(), "case {case}: json cross-load");
        assert_eq!(
            restored.failure_groups(),
            urr.failure_groups(),
            "case {case}: json cross-load groups"
        );
    }
}

/// `UrrStats::image_bytes` must equal the exact byte accounting of
/// every deposited image, in both planes, under random streams.
#[test]
fn image_bytes_accounting_matches_deposits() {
    let mut rng = Rng::new(0xacc0_0a7e);
    for case in 0..10 {
        let stream: Vec<Report> = (0..rng.below(80))
            .map(|_| random_report(&mut rng, 12, 4))
            .collect();
        let expected: usize = stream
            .iter()
            .filter_map(|r| r.image.as_ref())
            .map(ReportImage::byte_size)
            .sum();
        let urr = Urr::with_shards(4);
        let refr = reference::Urr::new();
        for r in stream {
            refr.deposit(r.clone());
            urr.deposit(r);
        }
        assert_eq!(urr.stats().image_bytes, expected, "case {case}: sharded");
        assert_eq!(refr.stats().image_bytes, expected, "case {case}: reference");
    }
}

// ---------------------------------------------------------------------
// Codec round-trips
// ---------------------------------------------------------------------

/// Strings that stress every branch of the hand-rolled escaper/parser.
fn hostile_string(rng: &mut Rng) -> String {
    const ATOMS: &[&str] = &[
        "\"",
        "\\",
        "/",
        "\u{0008}",
        "\u{000c}",
        "\n",
        "\r",
        "\t",
        "\u{0000}",
        "\u{001f}",
        "\u{007f}",
        "é",
        "日本語",
        "🦀",
        "\u{fffd}",
        "plain",
        " ",
        "{}[],:",
        "\\u0041",
        "ends with backslash\\",
    ];
    let n = rng.below(6);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(ATOMS[rng.below(ATOMS.len())]);
    }
    s
}

/// Property: any report built from hostile strings round-trips through
/// compact *and* pretty JSON byte-for-byte equal (escapes, unicode,
/// control characters, nested image arrays).
#[test]
fn codec_roundtrips_hostile_reports() {
    use mirage_telemetry::json::Value;
    let mut rng = Rng::new(0xc0de_c0de);
    for case in 0..60 {
        let machine = hostile_string(&mut rng);
        let cluster = rng.below(1 << 20);
        let package = hostile_string(&mut rng);
        let version = hostile_string(&mut rng);
        let mut report = if rng.chance(50) {
            Report::success(machine, cluster, package, version)
        } else {
            let list = |rng: &mut Rng| -> Vec<String> {
                (0..rng.below(4)).map(|_| hostile_string(rng)).collect()
            };
            let image = ReportImage::new(
                hostile_string(&mut rng),
                list(&mut rng),
                list(&mut rng),
                list(&mut rng),
            );
            Report::failure(
                machine,
                cluster,
                package,
                version,
                hostile_string(&mut rng),
                hostile_string(&mut rng),
                image,
            )
        };
        report.seq = rng.next() % (1 << 53); // exactly representable
        for json in [report.to_json().to_compact(), report.to_json().to_pretty()] {
            let back = Report::from_json(&Value::parse(&json).expect("parse"))
                .unwrap_or_else(|e| panic!("case {case}: decode failed: {e}\n{json}"));
            assert_eq!(report, back, "case {case}");
        }
    }
}

/// Numeric edge cases: zero, one, `u32`/`f64`-mantissa boundaries —
/// the largest integers the float-backed codec represents exactly.
#[test]
fn codec_numeric_edge_cases() {
    use mirage_telemetry::json::Value;
    for seq in [0u64, 1, (1 << 32) - 1, 1 << 32, (1 << 53) - 1, 1 << 53] {
        for cluster in [0usize, 1, u32::MAX as usize] {
            let mut report = Report::success("m", cluster, "p", "1");
            report.seq = seq;
            let json = report.to_json().to_compact();
            let back = Report::from_json(&Value::parse(&json).unwrap()).unwrap();
            assert_eq!(back.seq, seq);
            assert_eq!(back.cluster, cluster);
        }
    }
    // Non-integer and negative sequence values are rejected as shapes.
    let bad = Value::obj([
        ("machine", Value::str("m")),
        ("cluster", Value::from(0.5f64)),
        ("package", Value::str("p")),
        ("version", Value::str("1")),
        ("outcome", Value::obj([("kind", Value::str("success"))])),
        ("seq", Value::from(-1i64)),
        ("image", Value::Null),
    ]);
    assert!(Report::from_json(&bad).is_err());
}

/// Whole-repository JSON round-trips on hostile random streams, across
/// both implementations (same document format).
#[test]
fn codec_repository_roundtrip_hostile() {
    let mut rng = Rng::new(0x0bad_f00d);
    for _ in 0..6 {
        let urr = Urr::with_shards(2);
        for _ in 0..rng.below(40) {
            let mut r = random_report(&mut rng, 8, 3);
            // Swap in a hostile machine name on some reports.
            if rng.chance(30) {
                r.machine = hostile_string(&mut rng);
            }
            if rng.chance(20) {
                if let ReportOutcome::Failure { signature, .. } = &mut r.outcome {
                    *signature = hostile_string(&mut rng);
                }
            }
            urr.deposit(r);
        }
        let json = urr.to_json();
        let sharded = Urr::from_json(&json).expect("sharded reload");
        let refr = reference::Urr::from_json(&json).expect("reference reload");
        assert_eq!(sharded.all(), urr.all());
        assert_eq!(refr.all(), urr.all());
        assert_eq!(sharded.stats(), urr.stats());
        assert_eq!(refr.stats(), urr.stats());
    }
}
