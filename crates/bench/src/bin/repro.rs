//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [experiment] [--csv <dir>] [--telemetry <path>] [--smoke]
//!
//! experiments:
//!   fig1 fig2 fig3     survey figures (§2.2)
//!   table1             heuristic effectiveness (§4.1)
//!   fig6 fig7 merge    MySQL clustering (§4.2.1)
//!   fig8 fig9          Firefox clustering (§4.2.2)
//!   fig10 fig11        deployment latency CDFs (§4.3.2)
//!   overhead           upgrade-overhead comparison (§4.3.2)
//!   telemetry          instrumented campaign + simulation flight dump
//!   clustering-perf    clustering hot-path benchmark → BENCH_clustering.json
//!   sim-perf           simulator hot-path benchmark → BENCH_sim.json
//!   fault-sweep        convergence vs message-loss rate → BENCH_faults.json
//!                      (--smoke shrinks the fleet for CI)
//!   sweep              protocol × threshold × loss grid through the parallel
//!                      driver on one shared SimArena → BENCH_sweep.json
//!                      (--smoke shrinks the fleet and grid for CI)
//!   urr-perf           URR ingest/query benchmark → BENCH_urr.json
//!                      (--smoke shrinks the report volume for CI)
//!   drift-perf         batch drift engine vs reference re-clustering loop
//!                      → BENCH_drift.json (--smoke shrinks the fleet for CI)
//!   trace              journal overhead benchmark → BENCH_trace.json, plus a
//!                      Perfetto-loadable Chrome trace → mirage-trace.json
//!                      (--smoke shrinks the fleet for CI)
//!   health             per-wave health rollup under 30% message loss →
//!                      mirage-health.json (--smoke shrinks the fleet for CI)
//!   rollback-sweep     guarded strategy × loss × release containment grid
//!                      → BENCH_rollback.json (--smoke shrinks the fleet
//!                      for CI)
//!   urr-store-perf     durable URR: WAL append throughput, crash-recovery
//!                      time, and mixed read/write serving → BENCH_storage.json
//!                      (--smoke shrinks the report volume for CI)
//!   bench-check        validate the committed BENCH_*.json documents
//!                      (reads from --csv dir, default "."; exits 1 on failure)
//!   all                everything (default; excludes *-perf, fault-sweep,
//!                      sweep, trace, health, rollback-sweep, and bench-check)
//!
//! With `--csv <dir>`, the CDF figures additionally write plot-ready
//! CSV series (`fig10.csv`, `fig11.csv`: label,time,fraction rows) and
//! Table 1 writes `table1.csv`.
//!
//! With `--telemetry <path>`, an instrumented deployment simulation and
//! a full instrumented Apache ACL campaign are run, and the combined
//! metrics snapshot — phase span timings, named counters, the sim's
//! queue-depth high-water gauge, and the campaign flight-event log — is
//! written to `<path>` as pretty-printed JSON. Passing `--telemetry`
//! alone selects the `telemetry` experiment.
//! ```

use mirage_bench::{bar, render_cdf, render_table};
use mirage_cluster::ClusterQuality;
use mirage_scenarios::{apps, deployment, firefox, mysql, survey};

fn main() {
    // Arguments: an optional experiment name plus optional `--csv <dir>`.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut arg: Option<String> = None;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut telemetry_path: Option<std::path::PathBuf> = None;
    let mut smoke = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--csv" {
            let dir = it.next().expect("--csv requires a directory");
            csv_dir = Some(std::path::PathBuf::from(dir));
        } else if a == "--telemetry" {
            let path = it.next().expect("--telemetry requires a file path");
            telemetry_path = Some(std::path::PathBuf::from(path));
        } else if a == "--smoke" {
            smoke = true;
        } else {
            arg = Some(a);
        }
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv output directory");
    }
    // `repro --telemetry out.json` with no experiment runs just the
    // telemetry dump; otherwise default to everything.
    let arg = arg.unwrap_or_else(|| {
        if telemetry_path.is_some() {
            "telemetry".to_string()
        } else {
            "all".to_string()
        }
    });
    const KNOWN: [&str; 24] = [
        "all",
        "fig1",
        "fig2",
        "fig3",
        "table1",
        "fig6",
        "fig7",
        "merge",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "overhead",
        "telemetry",
        "clustering-perf",
        "sim-perf",
        "fault-sweep",
        "sweep",
        "urr-perf",
        "drift-perf",
        "trace",
        "health",
        "rollback-sweep",
        "urr-store-perf",
    ];
    if !KNOWN.contains(&arg.as_str()) && arg != "bench-check" {
        eprintln!("error: unknown experiment '{arg}'");
        eprintln!("known: {}, bench-check", KNOWN.join(", "));
        std::process::exit(2);
    }
    let all = arg == "all";
    if all || arg == "fig1" {
        fig1(csv_dir.as_deref());
    }
    if all || arg == "fig2" {
        fig2();
    }
    if all || arg == "fig3" {
        fig3(csv_dir.as_deref());
    }
    if all || arg == "table1" {
        table1(csv_dir.as_deref());
    }
    if all || arg == "fig6" {
        fig6();
    }
    if all || arg == "fig7" {
        fig7();
    }
    if all || arg == "merge" {
        merge();
    }
    if all || arg == "fig8" {
        fig8();
    }
    if all || arg == "fig9" {
        fig9();
    }
    if all || arg == "fig10" {
        fig10(csv_dir.as_deref());
    }
    if all || arg == "fig11" {
        fig11(csv_dir.as_deref());
    }
    if all || arg == "overhead" {
        overhead();
    }
    if arg == "telemetry" || (all && telemetry_path.is_some()) {
        let path = telemetry_path
            .as_deref()
            .expect("the telemetry experiment requires --telemetry <path>");
        telemetry_dump(path);
    }
    if arg == "clustering-perf" {
        clustering_perf(csv_dir.as_deref());
    }
    if arg == "sim-perf" {
        sim_perf(csv_dir.as_deref());
    }
    if arg == "fault-sweep" {
        fault_sweep(csv_dir.as_deref(), smoke);
    }
    if arg == "sweep" {
        sweep(csv_dir.as_deref(), smoke);
    }
    if arg == "urr-perf" {
        urr_perf(csv_dir.as_deref(), smoke);
    }
    if arg == "drift-perf" {
        drift_perf(csv_dir.as_deref(), smoke);
    }
    if arg == "trace" {
        trace(csv_dir.as_deref(), smoke);
    }
    if arg == "health" {
        health(csv_dir.as_deref(), smoke);
    }
    if arg == "rollback-sweep" {
        rollback_sweep(csv_dir.as_deref(), smoke);
    }
    if arg == "urr-store-perf" {
        urr_store_perf(csv_dir.as_deref(), smoke);
    }
    if arg == "bench-check" {
        bench_check(csv_dir.as_deref());
    }
}

/// Validates every committed `BENCH_*.json` document against the checks
/// in [`mirage_bench::benchgate`] and exits non-zero when any fails —
/// the `bench-check` CI gate. Documents are read from the `--csv`
/// directory when given, the working directory otherwise.
fn bench_check(csv: Option<&std::path::Path>) {
    use mirage_bench::benchgate::{check, BenchKind};

    heading("Bench gate: validating committed BENCH_*.json documents");
    let dir = csv.unwrap_or_else(|| std::path::Path::new("."));
    let mut failures = 0usize;
    for (kind, file) in BenchKind::ALL {
        let path = dir.join(file);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(err) => {
                println!("  FAIL {file}: unreadable ({err})");
                failures += 1;
                continue;
            }
        };
        match check(kind, &text) {
            Ok(notes) => {
                println!("  OK   {file}");
                for note in notes {
                    println!("         - {note}");
                }
            }
            Err(err) => {
                println!("  FAIL {file}: {err}");
                failures += 1;
            }
        }
    }
    if failures > 0 {
        println!("=> {failures} document(s) failed the bench gate");
        std::process::exit(1);
    }
    println!("=> all committed benchmark documents pass the gate");
}

/// Benchmarks the Upgrade Report Repository's ingest and query paths
/// and writes `BENCH_urr.json` — into the `--csv` directory when given,
/// the working directory otherwise.
///
/// Ingest compares the sharded, interned batch path
/// ([`mirage_report::Urr::deposit_interned_batch`], the one the
/// simulator's `UrrSink` drives) against the retained string-keyed
/// [`mirage_report::reference::Urr`] on the same report stream. Each
/// sample deposits into a *fresh* repository; interning and record
/// construction happen outside the timed region for the sharded path,
/// while the reference path's timed region includes the per-report
/// string materialisation its API forces — the same asymmetry the
/// simulator benchmarks report, because it is the asymmetry the
/// redesign exists to remove.
///
/// Query latencies (p50/p99 over repeated calls against a built
/// repository) cover the vendor's four dashboard queries: top-k failure
/// groups, full failure grouping, per-cluster failure rates, and a
/// time-windowed first-seen scan.
///
/// `--smoke` shrinks the report volume so CI can exercise the whole
/// path in debug builds. The per-benchmark budget follows
/// `MIRAGE_BENCH_MS` (default 150 ms).
fn urr_perf(csv: Option<&std::path::Path>, smoke: bool) {
    use std::time::{Duration, Instant};

    use mirage_bench::harness::{black_box, fmt_ns, BenchStats, MIN_SAMPLES};
    use mirage_report::{reference, InternedOutcome, InternedReport, Report, ReportOutcome, Urr};

    heading(if smoke {
        "URR performance (smoke volume): sharded ingest + vendor queries"
    } else {
        "URR performance: sharded ingest + vendor queries"
    });

    const SIGNATURES: usize = 20;
    let (n_main, n_big) = if smoke {
        (5_000, 20_000)
    } else {
        (100_000, 1_000_000)
    };
    let label = |n: usize| {
        if n >= 1_000_000 {
            format!("{}m", n / 1_000_000)
        } else {
            format!("{}k", n / 1_000)
        }
    };

    // The shared synthetic stream: `n` machines across 100 clusters,
    // 10% failures over `SIGNATURES` distinct signatures (the paper's
    // deployment waves fail on the few-percent scale), all against
    // release r0 (mirroring a first-wave deployment).
    let clusters = 100usize;
    let machine_names = |n: usize| -> Vec<String> { (0..n).map(|i| format!("m{i:07}")).collect() };
    let is_failure = |i: usize| i % 10 == 3;
    // Signature of the i-th report's failure, indexed by failure ordinal
    // so the stream round-robins through all SIGNATURES of them.
    let sig_of = |i: usize| (i / 10) % SIGNATURES;

    // Custom sampling loop: unlike `Harness::bench`, the closure reports
    // the nanoseconds of its *timed region* so per-sample setup (fresh
    // repository, untimed interning) stays out of the statistics, and we
    // keep the raw samples to report p99 alongside the harness fields.
    let budget = Duration::from_millis(
        std::env::var("MIRAGE_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(150),
    );
    let mut rows: Vec<(BenchStats, u64)> = Vec::new();

    /// Sorts `samples_ns`, prints one harness-style row, and records the
    /// statistics (plus p99) into `rows`.
    fn record(rows: &mut Vec<(BenchStats, u64)>, name: &str, mut samples: Vec<u64>) {
        samples.sort_unstable();
        let p99 = samples[(samples.len() * 99 / 100).min(samples.len() - 1)];
        let stats = BenchStats {
            name: name.to_string(),
            samples: samples.len(),
            min_ns: samples[0],
            p50_ns: samples[samples.len() / 2],
            mean_ns: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
            max_ns: *samples.last().expect("non-empty"),
            bytes: None,
            scale: false,
        };
        println!(
            "{:<44} {:>8} {:>12} {:>12} {:>12}",
            stats.name,
            stats.samples,
            fmt_ns(stats.min_ns as f64),
            fmt_ns(stats.p50_ns as f64),
            fmt_ns(stats.mean_ns),
        );
        rows.push((stats, p99));
    }

    /// Samples `run` (which returns the nanoseconds of its timed region)
    /// until the budget or a sample cap is hit, then records the row.
    fn sample(
        rows: &mut Vec<(BenchStats, u64)>,
        budget: Duration,
        name: &str,
        run: &mut dyn FnMut() -> u64,
    ) {
        black_box(run()); // one untimed warmup, like the harness
        let started = Instant::now();
        let mut samples: Vec<u64> = Vec::new();
        loop {
            samples.push(run());
            if (started.elapsed() >= budget && samples.len() >= MIN_SAMPLES)
                || samples.len() >= 1_000
            {
                break;
            }
        }
        record(rows, name, samples);
    }

    // --- Ingest at the main volume: sharded interned batches vs the
    // retained string-keyed reference, *interleaved* so both paths
    // sample the same machine conditions (allocator state, frequency
    // scaling) and the min-over-min speedup is a paired comparison.
    let names = machine_names(n_main);
    let build_recs = |urr: &Urr| -> Vec<InternedReport> {
        let machines = urr.intern_machines(names.iter().map(String::as_str));
        let sigs: Vec<_> = (0..SIGNATURES)
            .map(|s| urr.intern_signature(&format!("sig-{s:02}")))
            .collect();
        let release = urr.intern_release("upgrade", "r0");
        (0..n_main)
            .map(|i| InternedReport {
                machine: machines[i],
                cluster: (i % clusters) as u32,
                release,
                outcome: if is_failure(i) {
                    InternedOutcome::Failure(sigs[sig_of(i)])
                } else {
                    InternedOutcome::Success
                },
            })
            .collect()
    };
    let sharded_pass = || -> u64 {
        let urr = Urr::new();
        let recs = build_recs(&urr);
        let t0 = Instant::now();
        for chunk in recs.chunks(4096) {
            black_box(urr.deposit_interned_batch(chunk));
        }
        t0.elapsed().as_nanos() as u64
    };
    let proto: Vec<Report> = (0..n_main)
        .map(|i| {
            if is_failure(i) {
                Report {
                    machine: names[i].clone(),
                    cluster: i % clusters,
                    package: "upgrade".into(),
                    version: "r0".into(),
                    outcome: ReportOutcome::Failure {
                        signature: format!("sig-{:02}", sig_of(i)),
                        detail: String::new(),
                    },
                    seq: 0,
                    image: None,
                }
            } else {
                Report::success(names[i].clone(), i % clusters, "upgrade", "r0")
            }
        })
        .collect();
    let reference_pass = || -> u64 {
        let urr = reference::Urr::new();
        let t0 = Instant::now();
        for r in &proto {
            black_box(urr.deposit(r.clone()));
        }
        t0.elapsed().as_nanos() as u64
    };
    black_box(sharded_pass());
    black_box(reference_pass());
    let started = Instant::now();
    let mut sharded_ns: Vec<u64> = Vec::new();
    let mut reference_ns: Vec<u64> = Vec::new();
    loop {
        sharded_ns.push(sharded_pass());
        reference_ns.push(reference_pass());
        if (started.elapsed() >= budget * 2 && sharded_ns.len() >= MIN_SAMPLES)
            || sharded_ns.len() >= 500
        {
            break;
        }
    }
    let sharded_main = format!("urr/ingest/sharded-{}", label(n_main));
    let reference_main = format!("urr/ingest/reference-{}", label(n_main));
    record(&mut rows, &sharded_main, sharded_ns);
    record(&mut rows, &reference_main, reference_ns);
    drop(proto);

    // --- Ingest at scale: the sharded path only (the reference would
    // dominate the budget at a million reports).
    let names_big = machine_names(n_big);
    let sharded_big = format!("urr/ingest/sharded-{}", label(n_big));
    sample(&mut rows, budget, &sharded_big, &mut || {
        let urr = Urr::new();
        let machines = urr.intern_machines(names_big.iter().map(String::as_str));
        let sigs: Vec<_> = (0..SIGNATURES)
            .map(|s| urr.intern_signature(&format!("sig-{s:02}")))
            .collect();
        let release = urr.intern_release("upgrade", "r0");
        let recs: Vec<InternedReport> = (0..n_big)
            .map(|i| InternedReport {
                machine: machines[i],
                cluster: (i % clusters) as u32,
                release,
                outcome: if is_failure(i) {
                    InternedOutcome::Failure(sigs[sig_of(i)])
                } else {
                    InternedOutcome::Success
                },
            })
            .collect();
        let t0 = Instant::now();
        for chunk in recs.chunks(4096) {
            black_box(urr.deposit_interned_batch(chunk));
        }
        t0.elapsed().as_nanos() as u64
    });
    drop(names_big);

    // --- Queries against a built repository of the main volume.
    let query_urr = Urr::new();
    query_urr.deposit_interned_batch(&build_recs(&query_urr));
    let stats = query_urr.stats();
    assert_eq!(
        stats.total, n_main,
        "query repository holds the full stream"
    );
    assert_eq!(stats.distinct_failures, SIGNATURES);
    let window = 0..(n_main as u64 / 2);
    sample(&mut rows, budget, "urr/query/top-k-5", &mut || {
        let t0 = Instant::now();
        black_box(query_urr.top_k_failure_groups(5));
        t0.elapsed().as_nanos() as u64
    });
    sample(&mut rows, budget, "urr/query/failure-groups", &mut || {
        let t0 = Instant::now();
        black_box(query_urr.failure_groups());
        t0.elapsed().as_nanos() as u64
    });
    sample(&mut rows, budget, "urr/query/cluster-rates", &mut || {
        let t0 = Instant::now();
        black_box(query_urr.cluster_failure_rates());
        t0.elapsed().as_nanos() as u64
    });
    sample(
        &mut rows,
        budget,
        "urr/query/first-seen-window",
        &mut || {
            let t0 = Instant::now();
            black_box(query_urr.first_seen_in(window.clone()));
            t0.elapsed().as_nanos() as u64
        },
    );

    let find = |name: &str| {
        rows.iter()
            .find(|(r, _)| r.name == name)
            .expect("benchmark ran")
    };
    let reports_per_sec = |name: &str, n: usize| {
        let (r, _) = find(name);
        n as f64 / (r.min_ns.max(1) as f64 / 1e9)
    };
    let (fast, _) = find(&sharded_main);
    let (slow, _) = find(&reference_main);
    let speedup = slow.min_ns as f64 / fast.min_ns.max(1) as f64;
    println!(
        "=> sharded interned ingest is {speedup:.2}x the string-keyed reference \
         at {} reports (min-over-min)",
        label(n_main)
    );
    println!(
        "=> ingest throughput: sharded {:.0}/s, reference {:.0}/s, sharded-{} {:.0}/s",
        reports_per_sec(&sharded_main, n_main),
        reports_per_sec(&reference_main, n_main),
        label(n_big),
        reports_per_sec(&sharded_big, n_big),
    );

    // Hand-rolled JSON (the workspace is offline; no serde).
    let mut json = String::from("{\n  \"suite\": \"urr-perf\",\n");
    json.push_str(&format!(
        "  \"note\": \"{n_main} reports over {clusters} clusters, 10% failures across \
         {SIGNATURES} signatures; sharded = interned 4096-record batches into a fresh \
         repository per sample (interning untimed); reference = the retained string-keyed \
         repository, timed region includes the per-report string materialisation its API \
         forces; queries run against the built {n_main}-report repository\",\n"
    ));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"results\": [\n");
    for (i, (r, _)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"p50_ns\": {}, \
             \"mean_ns\": {:.0}, \"max_ns\": {}}}{}\n",
            r.name,
            r.samples,
            r.min_ns,
            r.p50_ns,
            r.mean_ns,
            r.max_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"ingest\": {{\n    \"sharded_{}_reports_per_sec\": {:.0},\n    \
         \"reference_{}_reports_per_sec\": {:.0},\n    \
         \"sharded_{}_reports_per_sec\": {:.0}\n  }},\n",
        label(n_main),
        reports_per_sec(&sharded_main, n_main),
        label(n_main),
        reports_per_sec(&reference_main, n_main),
        label(n_big),
        reports_per_sec(&sharded_big, n_big),
    ));
    json.push_str(&format!(
        "  \"ingest_speedup_100k_vs_reference\": {speedup:.2},\n"
    ));
    json.push_str("  \"query\": {\n");
    let query_keys = [
        ("top_k", "urr/query/top-k-5"),
        ("failure_groups", "urr/query/failure-groups"),
        ("cluster_rates", "urr/query/cluster-rates"),
        ("first_seen_window", "urr/query/first-seen-window"),
    ];
    for (i, (key, row)) in query_keys.iter().enumerate() {
        let (r, p99) = find(row);
        json.push_str(&format!(
            "    \"{key}_p50_ns\": {}, \"{key}_p99_ns\": {}{}\n",
            r.p50_ns,
            p99,
            if i + 1 < query_keys.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    let path = csv
        .map(|d| d.join("BENCH_urr.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_urr.json"));
    std::fs::write(&path, json).expect("write BENCH_urr.json");
    println!("(wrote {})", path.display());

    // In-binary regression floor: deliberately below the headline the
    // committed BENCH_urr.json carries (the paired min-over-min lands
    // around 5-7x on an idle machine) so a noisy CI runner cannot flake
    // the smoke, while a real regression of the interned fast path —
    // which would drag the ratio toward 1x — still fails loudly.
    let floor = if smoke { 1.0 } else { 2.0 };
    assert!(
        speedup >= floor,
        "sharded ingest speedup {speedup:.2}x fell below the {floor}x regression floor; see {}",
        path.display()
    );
}

/// Benchmarks the durable URR storage backend — WAL append throughput,
/// crash-recovery time, and mixed read/write serving — and writes
/// `BENCH_storage.json`, into the `--csv` directory when given, the
/// working directory otherwise.
///
/// The synthetic stream matches `urr-perf` (100 clusters, 10% failures
/// over 20 signatures, release r0) so the journaled numbers here read
/// directly against the unjournaled ingest numbers there. Five
/// measurements plus one scale row:
///
/// * `storage/wal/append-memory-*` / `storage/wal/append-fs-*`: a fresh
///   [`mirage_report::DurableUrr`] per sample (interning untimed)
///   journaling interned 4096-record batches through a
///   [`mirage_report::MemoryStore`] / [`mirage_report::FsStore`] (the
///   fs sample gets its own scratch directory, removed untimed);
/// * `storage/recover/wal-*`: recovery replaying the full WAL with no
///   snapshot — each sample forks the live store into a crash image
///   (untimed) and times [`mirage_report::DurableUrr::recover`];
/// * `storage/recover/snapshot-*`: the same, from a compacted snapshot
///   at 90% of the stream plus a WAL tail — the steady-state shape;
/// * `storage/serve/mixed-read-write-*`: reader threads answering the
///   serialized vendor protocol against a frozen
///   [`mirage_report::UrrSnapshot`] while a writer journals fresh
///   batches through the same `DurableUrr`;
/// * `storage/recover/snapshot-1m`: a single-shot 1M-report recovery
///   (marked `scale`; full runs only).
///
/// Before writing the document, the run recovers each journaled store
/// once and compares every query surface of the recovered repository
/// against the live one — the `recovered_equal` flag the bench gate
/// requires.
///
/// `--smoke` shrinks the volume (5k reports, no 1M row) so CI can
/// exercise the whole path in debug builds. The per-benchmark budget
/// follows `MIRAGE_BENCH_MS` (default 150 ms).
fn urr_store_perf(csv: Option<&std::path::Path>, smoke: bool) {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use mirage_bench::harness::{black_box, fmt_ns, BenchStats, MIN_SAMPLES};
    use mirage_report::{
        DurableConfig, DurableUrr, FsStore, InternedOutcome, InternedReport, MemoryStore, Urr,
        UrrRequest,
    };

    heading(if smoke {
        "Durable URR storage (smoke volume): WAL append, recovery, mixed serving"
    } else {
        "Durable URR storage: WAL append, recovery, mixed serving"
    });

    const SIGNATURES: usize = 20;
    let (n_main, n_big) = if smoke {
        (5_000, 20_000)
    } else {
        (100_000, 1_000_000)
    };
    let label = |n: usize| {
        if n >= 1_000_000 {
            format!("{}m", n / 1_000_000)
        } else {
            format!("{}k", n / 1_000)
        }
    };
    let clusters = 100usize;
    let is_failure = |i: usize| i % 10 == 3;
    let sig_of = |i: usize| (i / 10) % SIGNATURES;
    // Manual-snapshot config: the benches place snapshots themselves so
    // each row measures exactly one journal shape.
    let config = || DurableConfig {
        snapshot_every_batches: 0,
        ..DurableConfig::default()
    };
    let build_recs = |urr: &Urr, n: usize| -> Vec<InternedReport> {
        let machines = urr.intern_machines(
            (0..n)
                .map(|i| format!("m{i:07}"))
                .collect::<Vec<_>>()
                .iter()
                .map(String::as_str),
        );
        let sigs: Vec<_> = (0..SIGNATURES)
            .map(|s| urr.intern_signature(&format!("sig-{s:02}")))
            .collect();
        let release = urr.intern_release("upgrade", "r0");
        (0..n)
            .map(|i| InternedReport {
                machine: machines[i],
                cluster: (i % clusters) as u32,
                release,
                outcome: if is_failure(i) {
                    InternedOutcome::Failure(sigs[sig_of(i)])
                } else {
                    InternedOutcome::Success
                },
            })
            .collect()
    };
    // Builds a journaled repository of `n` reports over a MemoryStore,
    // optionally compacting into a snapshot once `snapshot_at` reports
    // are in (the rest stays in the WAL tail). Returns the store handle
    // (shared inner: `fork()` yields crash images) and the live layer.
    let build_journal = |n: usize, snapshot_at: Option<usize>| -> (MemoryStore, DurableUrr) {
        let store = MemoryStore::new();
        let handle = store.clone();
        let durable = DurableUrr::new(Box::new(store), config()).expect("memory store");
        let recs = build_recs(durable.urr(), n);
        let mut deposited = 0usize;
        let mut snapped = false;
        for chunk in recs.chunks(4096) {
            durable
                .deposit_interned_batch(chunk)
                .expect("journal batch");
            deposited += chunk.len();
            if let Some(at) = snapshot_at {
                if !snapped && deposited >= at {
                    durable.snapshot_now().expect("write snapshot");
                    snapped = true;
                }
            }
        }
        (handle, durable)
    };
    // Recovers a crash image and checks every query surface against the
    // live repository; feeds the document's `recovered_equal` flag.
    let recovers_equal = |handle: &MemoryStore, durable: &DurableUrr| -> bool {
        let (back, report) =
            DurableUrr::recover(Box::new(handle.fork()), config()).expect("recover");
        let (live, back) = (durable.urr(), back.urr());
        report.torn_tail.is_none()
            && back.next_seq() == live.next_seq()
            && back.stats() == live.stats()
            && back.snapshot() == live.snapshot()
            && back.to_json() == live.to_json()
    };

    let budget = Duration::from_millis(
        std::env::var("MIRAGE_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(150),
    );
    let mut rows: Vec<BenchStats> = Vec::new();

    /// Sorts `samples_ns`, prints one harness-style row, and records it.
    fn record(rows: &mut Vec<BenchStats>, name: &str, mut samples: Vec<u64>, scale: bool) {
        samples.sort_unstable();
        let stats = BenchStats {
            name: name.to_string(),
            samples: samples.len(),
            min_ns: samples[0],
            p50_ns: samples[samples.len() / 2],
            mean_ns: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
            max_ns: *samples.last().expect("non-empty"),
            bytes: None,
            scale,
        };
        println!(
            "{:<44} {:>8} {:>12} {:>12} {:>12}",
            stats.name,
            stats.samples,
            fmt_ns(stats.min_ns as f64),
            fmt_ns(stats.p50_ns as f64),
            fmt_ns(stats.mean_ns),
        );
        rows.push(stats);
    }

    /// Samples `run` (which returns the nanoseconds of its timed region)
    /// until the budget or a sample cap is hit, then records the row.
    fn sample(
        rows: &mut Vec<BenchStats>,
        budget: Duration,
        name: &str,
        run: &mut dyn FnMut() -> u64,
    ) {
        black_box(run()); // one untimed warmup, like the harness
        let started = Instant::now();
        let mut samples: Vec<u64> = Vec::new();
        loop {
            samples.push(run());
            if (started.elapsed() >= budget && samples.len() >= MIN_SAMPLES)
                || samples.len() >= 1_000
            {
                break;
            }
        }
        record(rows, name, samples, false);
    }

    // --- WAL append throughput: a fresh journaled repository per
    // sample, interning untimed, 4096-record frames (the UrrSink batch).
    let append_mem = format!("storage/wal/append-memory-{}", label(n_main));
    sample(&mut rows, budget, &append_mem, &mut || {
        let durable = DurableUrr::new(Box::new(MemoryStore::new()), config()).expect("memory");
        let recs = build_recs(durable.urr(), n_main);
        let t0 = Instant::now();
        for chunk in recs.chunks(4096) {
            black_box(durable.deposit_interned_batch(chunk).expect("journal"));
        }
        t0.elapsed().as_nanos() as u64
    });

    let scratch_root =
        std::env::temp_dir().join(format!("mirage-store-perf-{}", std::process::id()));
    let mut scratch_n = 0usize;
    let append_fs = format!("storage/wal/append-fs-{}", label(n_main));
    sample(&mut rows, budget, &append_fs, &mut || {
        scratch_n += 1;
        let dir = scratch_root.join(format!("append-{scratch_n}"));
        let store = FsStore::open(&dir).expect("open fs store");
        let durable = DurableUrr::new(Box::new(store), config()).expect("fs store");
        let recs = build_recs(durable.urr(), n_main);
        let t0 = Instant::now();
        for chunk in recs.chunks(4096) {
            black_box(durable.deposit_interned_batch(chunk).expect("journal"));
        }
        let ns = t0.elapsed().as_nanos() as u64;
        drop(durable);
        std::fs::remove_dir_all(&dir).expect("remove scratch store");
        ns
    });

    // --- Recovery: WAL-only replay, then the steady-state snapshot+tail
    // shape. Each sample recovers a fresh fork of the same crash image.
    let mut recovered_equal = true;
    let (wal_handle, wal_durable) = build_journal(n_main, None);
    recovered_equal &= recovers_equal(&wal_handle, &wal_durable);
    let recover_wal = format!("storage/recover/wal-{}", label(n_main));
    sample(&mut rows, budget, &recover_wal, &mut || {
        let image = wal_handle.fork();
        let t0 = Instant::now();
        let (back, report) = DurableUrr::recover(Box::new(image), config()).expect("recover");
        black_box((back.urr().next_seq(), report));
        t0.elapsed().as_nanos() as u64
    });

    let (snap_handle, snap_durable) = build_journal(n_main, Some(n_main * 9 / 10));
    recovered_equal &= recovers_equal(&snap_handle, &snap_durable);
    let recover_snap = format!("storage/recover/snapshot-{}", label(n_main));
    sample(&mut rows, budget, &recover_snap, &mut || {
        let image = snap_handle.fork();
        let t0 = Instant::now();
        let (back, report) = DurableUrr::recover(Box::new(image), config()).expect("recover");
        black_box((back.urr().next_seq(), report));
        t0.elapsed().as_nanos() as u64
    });

    // --- Mixed read/write serving: reader threads answer the binary
    // vendor protocol from a frozen snapshot view while a writer keeps
    // journaling fresh batches into the same repository — the vendor's
    // dashboard-during-campaign shape. Request frames are prepared
    // untimed; each sample times the whole joined region.
    let readers = 4usize;
    let reads_per_thread = if smoke { 300 } else { 2_000 };
    let writer_batches = if smoke { 4 } else { 16 };
    let mixed_durable = Arc::new(snap_durable);
    let frozen = Arc::new(mixed_durable.urr().snapshot());
    let request_frames: Arc<Vec<Vec<u8>>> = Arc::new(
        [
            UrrRequest::TopK(5),
            UrrRequest::Stats,
            UrrRequest::ClusterRates,
            UrrRequest::ReleaseSummaries,
        ]
        .iter()
        .map(UrrRequest::to_frame)
        .collect(),
    );
    let write_chunk: Arc<Vec<InternedReport>> = Arc::new(build_recs(mixed_durable.urr(), 4_096));
    let mixed = format!("storage/serve/mixed-read-write-{}", label(n_main));
    sample(&mut rows, budget, &mixed, &mut || {
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..readers {
                let frozen = Arc::clone(&frozen);
                let frames = Arc::clone(&request_frames);
                scope.spawn(move || {
                    for i in 0..reads_per_thread {
                        let frame = &frames[i % frames.len()];
                        black_box(frozen.serve(frame).expect("serve"));
                    }
                });
            }
            let durable = Arc::clone(&mixed_durable);
            let chunk = Arc::clone(&write_chunk);
            scope.spawn(move || {
                for _ in 0..writer_batches {
                    black_box(durable.deposit_interned_batch(&chunk).expect("journal"));
                }
            });
        });
        t0.elapsed().as_nanos() as u64
    });

    // --- Recovery at scale: one deliberate single-shot (full runs only).
    let recovery_1m_ms = if smoke {
        None
    } else {
        let (big_handle, big_durable) = build_journal(n_big, Some(n_big * 9 / 10));
        let image = big_handle.fork();
        let t0 = Instant::now();
        let (back, report) = DurableUrr::recover(Box::new(image), config()).expect("recover");
        let ns = t0.elapsed().as_nanos() as u64;
        assert!(report.snapshot_loaded, "1M image has a snapshot");
        recovered_equal &= back.urr().next_seq() == big_durable.urr().next_seq()
            && back.urr().stats() == big_durable.urr().stats();
        record(
            &mut rows,
            &format!("storage/recover/snapshot-{}", label(n_big)),
            vec![ns],
            true,
        );
        Some(ns as f64 / 1e6)
    };

    let find = |rows: &[BenchStats], name: &str| -> u64 {
        rows.iter()
            .find(|r| r.name == name)
            .expect("benchmark ran")
            .min_ns
            .max(1)
    };
    let per_sec = |ns: u64, n: usize| n as f64 / (ns as f64 / 1e9);
    let append_mem_rate = per_sec(find(&rows, &append_mem), n_main);
    let append_fs_rate = per_sec(find(&rows, &append_fs), n_main);
    let mixed_ns = find(&rows, &mixed);
    let mixed_reads = per_sec(mixed_ns, readers * reads_per_thread);
    let mixed_writes = per_sec(mixed_ns, writer_batches * 4_096);
    let recovery_wal_ms = find(&rows, &recover_wal) as f64 / 1e6;
    let recovery_snap_ms = find(&rows, &recover_snap) as f64 / 1e6;
    println!(
        "=> journaled append: {append_mem_rate:.0}/s memory, {append_fs_rate:.0}/s fs; \
         recovery at {}: {recovery_wal_ms:.1} ms WAL-only, {recovery_snap_ms:.1} ms snapshot+tail",
        label(n_main)
    );
    println!(
        "=> mixed serving: {mixed_reads:.0} reads/s across {readers} frozen readers \
         against {mixed_writes:.0} journaled writes/s; recovered repository equal to live: \
         {recovered_equal}"
    );

    // Hand-rolled JSON (the workspace is offline; no serde).
    let mut json = String::from("{\n  \"suite\": \"urr-store-perf\",\n");
    json.push_str(&format!(
        "  \"note\": \"{n_main} reports over {clusters} clusters, 10% failures across \
         {SIGNATURES} signatures, journaled as interned 4096-record WAL frames; append rows \
         use a fresh repository per sample (interning untimed); recovery rows fork the live \
         MemoryStore into a crash image (untimed) and time DurableUrr::recover; the mixed row \
         runs {readers} protocol readers on a frozen snapshot against one journaling writer; \
         recovered_equal compares every query surface of a recovered repository to the live \
         one\",\n"
    ));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"p50_ns\": {}, \
             \"mean_ns\": {:.0}, \"max_ns\": {}{}}}{}\n",
            r.name,
            r.samples,
            r.min_ns,
            r.p50_ns,
            r.mean_ns,
            r.max_ns,
            if r.scale { ", \"scale\": true" } else { "" },
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"wal_append_memory_{}_reports_per_sec\": {append_mem_rate:.0},\n",
        label(n_main)
    ));
    json.push_str(&format!(
        "  \"wal_append_fs_{}_reports_per_sec\": {append_fs_rate:.0},\n",
        label(n_main)
    ));
    json.push_str(&format!("  \"mixed_readers\": {readers},\n"));
    json.push_str(&format!("  \"mixed_reads_per_sec\": {mixed_reads:.0},\n"));
    json.push_str(&format!("  \"mixed_writes_per_sec\": {mixed_writes:.0},\n"));
    json.push_str(&format!(
        "  \"recovery_wal_{}_ms\": {recovery_wal_ms:.2},\n",
        label(n_main)
    ));
    json.push_str(&format!(
        "  \"recovery_snapshot_{}_ms\": {recovery_snap_ms:.2},\n",
        label(n_main)
    ));
    if let Some(ms) = recovery_1m_ms {
        json.push_str(&format!(
            "  \"recovery_snapshot_{}_ms\": {ms:.2},\n",
            label(n_big)
        ));
    }
    json.push_str(&format!("  \"recovered_equal\": {recovered_equal}\n}}\n"));

    let path = csv
        .map(|d| d.join("BENCH_storage.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_storage.json"));
    std::fs::write(&path, json).expect("write BENCH_storage.json");
    println!("(wrote {})", path.display());
    let _ = std::fs::remove_dir_all(&scratch_root);

    // Hard invariant regardless of volume: a recovery that loses or
    // invents reports is a broken journal, not a slow one.
    assert!(
        recovered_equal,
        "recovered repository diverged from the live one; see {}",
        path.display()
    );
    // In-binary regression floors, deliberately far below the committed
    // headline so a noisy CI runner cannot flake the smoke while a real
    // collapse of the journaled path still fails loudly.
    if !smoke {
        assert!(
            append_mem_rate >= 50_000.0,
            "journaled in-memory append fell below 50k reports/s ({append_mem_rate:.0}/s)"
        );
        assert!(
            recovery_snap_ms <= 10_000.0,
            "snapshot+tail recovery at {} took {recovery_snap_ms:.0} ms (> 10 s)",
            label(n_main)
        );
    }
}

/// Benchmarks re-clustering after fleet drift — the batch drift engine
/// on the dense interned plane vs the retained reference loop — and
/// writes `BENCH_drift.json`, into the `--csv` directory when given,
/// the working directory otherwise.
///
/// The fleet is synthetic but adversarially bucketed: `envs`
/// environments (distinct parsed diffs), each split into 4 config
/// variants of `per_cluster` machines, so every candidate scan must
/// pick between 4 same-environment clusters. The drift batch is
/// power-law: a cubed uniform sample concentrates churn on the low
/// environments, like a hot config pushed rack by rack; each delta
/// rewrites a machine's config variant (deltas that land on the
/// machine's current variant are genuine no-ops and exercise the
/// fast path).
///
/// Three measurements:
/// * the paired batch comparison (`drift/100k/batch-engine` vs
///   `drift/100k/reference-loop`, interleaved samples, engine rebuild
///   and reference fleet-map clone untimed on their own sides);
/// * per-delta re-cluster latency on a persistent engine
///   (`drift/100k/per-delta`, one sample per delta; the document's
///   `recluster_p50_ns`/`recluster_p99_ns`);
/// * a single-shot 1M-machine batch (`drift/1m/batch-engine`, marked
///   `scale`; full runs only).
///
/// Before timing anything, the run drives both planes over the same
/// batch and cross-checks their `DriftStats` and output clusterings —
/// the `drift_counters_match` flag the bench gate requires — so the
/// speedup is provably a comparison of equivalent work.
///
/// `--smoke` shrinks the fleet (5k machines, 100 deltas, no 1M row) so
/// CI can exercise the whole path in debug builds. The per-benchmark
/// budget follows `MIRAGE_BENCH_MS` (default 150 ms).
fn drift_perf(csv: Option<&std::path::Path>, smoke: bool) {
    use std::collections::BTreeMap;
    use std::time::{Duration, Instant};

    use mirage_bench::harness::{black_box, fmt_ns, BenchStats, MIN_SAMPLES};
    use mirage_cluster::{
        clustering_from_groups, drift_reference, Clustering, DriftEngine, DriftOp, MachineDelta,
        MachineInfo,
    };
    use mirage_fingerprint::{DiffSet, Item};
    use mirage_telemetry::Telemetry;

    heading(if smoke {
        "Drift performance (smoke fleet): batch engine vs reference loop"
    } else {
        "Drift performance: batch engine vs reference loop (100k machines)"
    });

    const VARIANTS: usize = 4;
    let diameter = 1usize;
    let (envs, per_cluster, delta_count) = if smoke {
        (10, 125, 100)
    } else {
        (200, 125, 1000)
    };
    let n_main = envs * VARIANTS * per_cluster;
    let label = |n: usize| {
        if n >= 1_000_000 {
            format!("{}m", n / 1_000_000)
        } else {
            format!("{}k", n / 1_000)
        }
    };

    /// `envs` environments x 4 config variants x `per` machines, grouped
    /// into derived-consistent clusters.
    fn fleet(envs: usize, per: usize) -> (Clustering, Vec<MachineInfo>) {
        let mut groups = Vec::with_capacity(envs * VARIANTS);
        for e in 0..envs {
            for v in 0..VARIANTS {
                groups.push(
                    (0..per)
                        .map(|m| {
                            let mut diff = DiffSet::empty(format!("m-{e:04}-{v}-{m:04}"));
                            diff.parsed.insert(Item::new([format!("env{e}")]));
                            diff.content.insert(Item::new([format!("cfg{v}")]));
                            MachineInfo::new(diff)
                        })
                        .collect(),
                );
            }
        }
        clustering_from_groups(&groups)
    }

    /// Power-law drift batch: each delta forces its machine onto a
    /// random config variant (removing every variant first, so a delta
    /// onto the current variant is a no-op).
    fn drift_batch(seed: &mut u64, fleet: &[MachineInfo], count: usize) -> Vec<MachineDelta> {
        let mut rng = move || {
            *seed ^= *seed << 13;
            *seed ^= *seed >> 7;
            *seed ^= *seed << 17;
            *seed
        };
        let all_cfgs: Vec<Item> = (0..VARIANTS)
            .map(|v| Item::new([format!("cfg{v}")]))
            .collect();
        let total = fleet.len();
        (0..count)
            .map(|_| {
                let r = (rng() % total as u64) as f64 / total as f64;
                let idx = ((r * r * r) * total as f64) as usize;
                let to = (rng() % VARIANTS as u64) as usize;
                MachineDelta {
                    machine: fleet[idx.min(total - 1)].id().to_string(),
                    op: DriftOp::ConfigEdit {
                        add: vec![all_cfgs[to].clone()],
                        remove: all_cfgs.clone(),
                    },
                }
            })
            .collect()
    }

    /// Sorts `samples_ns`, prints one harness-style row, and records the
    /// statistics (plus p99) into `rows`.
    fn record(rows: &mut Vec<(BenchStats, u64)>, name: &str, scale: bool, mut samples: Vec<u64>) {
        samples.sort_unstable();
        let p99 = samples[(samples.len() * 99 / 100).min(samples.len() - 1)];
        let stats = BenchStats {
            name: name.to_string(),
            samples: samples.len(),
            min_ns: samples[0],
            p50_ns: samples[samples.len() / 2],
            mean_ns: samples.iter().sum::<u64>() as f64 / samples.len() as f64,
            max_ns: *samples.last().expect("non-empty"),
            bytes: None,
            scale,
        };
        println!(
            "{:<44} {:>8} {:>12} {:>12} {:>12}",
            stats.name,
            stats.samples,
            fmt_ns(stats.min_ns as f64),
            fmt_ns(stats.p50_ns as f64),
            fmt_ns(stats.mean_ns),
        );
        rows.push((stats, p99));
    }

    let mut seed = 0x9e3779b97f4a7c15u64;
    let (clustering, fleet_main) = fleet(envs, per_cluster);
    let deltas = drift_batch(&mut seed, &fleet_main, delta_count);
    assert_eq!(fleet_main.len(), n_main);

    // --- Cross-plane verification (untimed): the batch the benchmark
    // times must mean exactly the same thing to both planes.
    let mut verify_engine = DriftEngine::new(&clustering, &fleet_main, diameter);
    let engine_stats = verify_engine.recluster_batch(&deltas);
    verify_engine.validate().expect("engine invariants");
    let mut ref_map: BTreeMap<String, MachineInfo> = fleet_main
        .iter()
        .map(|m| (m.id().to_string(), m.clone()))
        .collect();
    let (ref_clustering, ref_stats) = drift_reference(
        &clustering,
        &mut ref_map,
        &deltas,
        diameter,
        &Telemetry::noop(),
    );
    let counters_match = engine_stats == ref_stats && verify_engine.clustering() == ref_clustering;
    println!(
        "=> verification: {} applied ({} moves, {} adoptions, {} singletons, {} no-ops), \
         {} distance evals; planes {}",
        engine_stats.applied,
        engine_stats.moves,
        engine_stats.adoptions,
        engine_stats.singletons,
        engine_stats.noops,
        engine_stats.dist_evals,
        if counters_match { "agree" } else { "DIVERGED" }
    );
    drop(verify_engine);
    drop(ref_clustering);

    let budget = Duration::from_millis(
        std::env::var("MIRAGE_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(150),
    );
    let mut rows: Vec<(BenchStats, u64)> = Vec::new();

    // --- Paired batch comparison, interleaved so both planes sample the
    // same machine conditions. Setup stays untimed on both sides: the
    // engine rebuild (pool lowering, bucket construction) for the batch
    // plane, the fleet-map clone for the reference plane.
    let engine_pass = || -> u64 {
        let mut engine = DriftEngine::new(&clustering, &fleet_main, diameter);
        let t0 = Instant::now();
        black_box(engine.recluster_batch(&deltas));
        t0.elapsed().as_nanos() as u64
    };
    let reference_pass = || -> u64 {
        let mut map = ref_map.clone();
        let t0 = Instant::now();
        black_box(drift_reference(
            &clustering,
            &mut map,
            &deltas,
            diameter,
            &Telemetry::noop(),
        ));
        t0.elapsed().as_nanos() as u64
    };
    black_box(engine_pass());
    black_box(reference_pass());
    let started = Instant::now();
    let mut engine_ns: Vec<u64> = Vec::new();
    let mut reference_ns: Vec<u64> = Vec::new();
    loop {
        engine_ns.push(engine_pass());
        reference_ns.push(reference_pass());
        if (started.elapsed() >= budget * 2 && engine_ns.len() >= MIN_SAMPLES)
            || engine_ns.len() >= 100
        {
            break;
        }
    }
    let engine_row = format!("drift/{}/batch-engine", label(n_main));
    let reference_row = format!("drift/{}/reference-loop", label(n_main));
    record(&mut rows, &engine_row, false, engine_ns);
    record(&mut rows, &reference_row, false, reference_ns);
    drop(ref_map);

    // --- Per-delta re-cluster latency on a persistent engine: the
    // "machine drifted, how stale is the clustering" number.
    let mut latency_engine = DriftEngine::new(&clustering, &fleet_main, diameter);
    let mut per_delta: Vec<u64> = Vec::with_capacity(deltas.len());
    for delta in &deltas {
        let t0 = Instant::now();
        black_box(latency_engine.recluster_batch(std::slice::from_ref(delta)));
        per_delta.push(t0.elapsed().as_nanos() as u64);
    }
    let per_delta_row = format!("drift/{}/per-delta", label(n_main));
    record(&mut rows, &per_delta_row, false, per_delta);
    drop(latency_engine);

    // --- 1M-machine scale batch (full runs only): one honest sample.
    let mut scale_line = String::new();
    if !smoke {
        let (clustering_big, fleet_big) = fleet(500, 500);
        let deltas_big = drift_batch(&mut seed, &fleet_big, 1000);
        let mut engine_big = DriftEngine::new(&clustering_big, &fleet_big, diameter);
        let t0 = Instant::now();
        let stats_big = black_box(engine_big.recluster_batch(&deltas_big));
        let ns = t0.elapsed().as_nanos() as u64;
        record(&mut rows, "drift/1m/batch-engine", true, vec![ns]);
        println!(
            "=> 1M-machine batch: {} deltas ({} moves) in {}",
            stats_big.applied + stats_big.noops,
            stats_big.moves,
            fmt_ns(ns as f64)
        );
        scale_line = format!(
            "  \"scale_1m_seconds\": {:.3},\n  \"scale_1m_moves\": {},\n",
            ns as f64 / 1e9,
            stats_big.moves
        );
    }

    let find = |name: &str| {
        rows.iter()
            .find(|(r, _)| r.name == name)
            .expect("benchmark ran")
    };
    let (fast, _) = find(&engine_row);
    let (slow, _) = find(&reference_row);
    let speedup = slow.min_ns as f64 / fast.min_ns.max(1) as f64;
    let (lat, lat_p99) = {
        let (lat, p99) = find(&per_delta_row);
        (lat, *p99)
    };
    let moves_per_sec = engine_stats.moves as f64 / (fast.min_ns.max(1) as f64 / 1e9);
    println!(
        "=> batch engine is {speedup:.2}x the reference loop at {} machines / {} deltas \
         (min-over-min); sustained {moves_per_sec:.0} moves/s",
        label(n_main),
        deltas.len()
    );
    println!(
        "=> re-cluster-after-drift latency: p50 {}, p99 {}",
        fmt_ns(lat.p50_ns as f64),
        fmt_ns(lat_p99 as f64)
    );

    // Hand-rolled JSON (the workspace is offline; no serde).
    let mut json = String::from("{\n  \"suite\": \"drift-perf\",\n");
    json.push_str(&format!(
        "  \"note\": \"{envs} environments x {VARIANTS} config variants x {per_cluster} \
         machines; {} power-law config-variant deltas per batch; batch engine = persistent \
         interned plane (engine rebuild untimed per sample), reference = recluster_one loop \
         over the retained plane (fleet-map clone untimed per sample); per-delta row times \
         single-delta batches on one persistent engine; both planes verified to produce \
         identical clusterings and drift counters on the measured batch before timing\",\n",
        deltas.len()
    ));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"machines\": {n_main},\n"));
    json.push_str(&format!("  \"deltas\": {},\n", deltas.len()));
    json.push_str("  \"results\": [\n");
    for (i, (r, _)) in rows.iter().enumerate() {
        let scale = if r.scale { ", \"scale\": true" } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"p50_ns\": {}, \
             \"mean_ns\": {:.0}, \"max_ns\": {}{scale}}}{}\n",
            r.name,
            r.samples,
            r.min_ns,
            r.p50_ns,
            r.mean_ns,
            r.max_ns,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"speedup_100k_vs_reference\": {speedup:.2},\n"));
    json.push_str(&format!(
        "  \"recluster_p50_ns\": {}, \"recluster_p99_ns\": {lat_p99},\n",
        lat.p50_ns
    ));
    json.push_str(&format!("  \"moves_per_sec\": {moves_per_sec:.0},\n"));
    json.push_str(&format!(
        "  \"batch\": {{\"applied\": {}, \"noops\": {}, \"moves\": {}, \"adoptions\": {}, \
         \"singletons\": {}, \"dist_evals\": {}}},\n",
        engine_stats.applied,
        engine_stats.noops,
        engine_stats.moves,
        engine_stats.adoptions,
        engine_stats.singletons,
        engine_stats.dist_evals
    ));
    json.push_str(&scale_line);
    json.push_str(&format!(
        "  \"drift_counters_match\": {counters_match}\n}}\n"
    ));

    let path = csv
        .map(|d| d.join("BENCH_drift.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_drift.json"));
    std::fs::write(&path, json).expect("write BENCH_drift.json");
    println!("(wrote {})", path.display());

    assert!(
        counters_match,
        "drift planes diverged on the measured batch; see {}",
        path.display()
    );
    // In-binary regression floor: the acceptance threshold on full runs
    // (the measured batch/reference gap is orders of magnitude wider, so
    // runner noise cannot flake this), and a sanity >= 1x on smoke
    // fleets where debug builds compress the gap.
    let floor = if smoke { 1.0 } else { 5.0 };
    assert!(
        speedup >= floor,
        "batch-engine speedup {speedup:.2}x fell below the {floor}x regression floor; see {}",
        path.display()
    );
}

/// Measures the sim-time journal's overhead on the paper's 100k-machine
/// Figure-10 scenario and writes `BENCH_trace.json` plus a
/// Perfetto-loadable Chrome `trace_event` document (`mirage-trace.json`)
/// — into the `--csv` directory when given, the working directory
/// otherwise.
///
/// Two harness rows: `trace/plain-run` (the uninstrumented Balanced
/// run) and `trace/journaled-run` (the same run with a journal-enabled
/// registry attached to both driver and protocol, full timeline spilled
/// so nothing is dropped). The headline `overhead_pct` is the paired
/// min-over-min difference; the non-smoke run asserts it stays under
/// 15%. The exported trace renders deployment waves as async slices
/// and a bounded sample of machines as named tracks.
///
/// `--smoke` shrinks the fleet to 8×125 so CI can exercise the whole
/// path in debug builds. The per-benchmark budget follows
/// `MIRAGE_BENCH_MS` (default 150 ms).
fn trace(csv: Option<&std::path::Path>, smoke: bool) {
    use std::sync::Arc;

    use mirage_bench::harness::Harness;
    use mirage_deploy::{Balanced, MachineId, ProblemId};
    use mirage_sim::{run, run_with_telemetry, ScenarioBuilder};
    use mirage_telemetry::json::Value;
    use mirage_telemetry::trace_export::chrome_trace;
    use mirage_telemetry::{Journal, Registry, Telemetry, TraceConfig};

    heading(if smoke {
        "Trace: journal overhead + Perfetto export (smoke fleet)"
    } else {
        "Trace: journal overhead + Perfetto export (100k machines)"
    });

    let scenario = if smoke {
        ScenarioBuilder::new()
            .clusters(8, 125, 1)
            .problem_in_clusters(deployment::PREVALENT, &[2, 3, 4])
            .problem_in_clusters(deployment::RARE_A, &[5])
            .problem_in_clusters(deployment::RARE_B, &[6])
            .build()
    } else {
        deployment::sound_scenario(deployment::ProblemPlacement::Late)
    };
    let machines = scenario.machine_count();

    // Paired overhead benchmark: the journaled closure attaches a bare
    // `Journal` as the recorder (no registry, no counters, no flight
    // ring), so the delta is the journal's own cost — the clock stores,
    // every record call, and the spill. The journal is reused across
    // samples (reset keeps its allocations warm) so one-time page
    // faults don't masquerade as per-run overhead.
    let mut h = Harness::new("trace-overhead");
    let bench_journal = Arc::new(Journal::with_spill(1 << 16));
    // Interleaved sampling: sequential rows would charge clock drift
    // (turbo decay, neighbours) entirely to the journaled run and
    // inflate the overhead ratio by tens of percent.
    h.bench_paired(
        "trace/plain-run",
        "trace/journaled-run",
        || run(&scenario, &mut Balanced::new(scenario.plan.clone(), 1.0)).failed_tests,
        || {
            bench_journal.reset();
            let telemetry = Telemetry::from_recorder(Arc::clone(&bench_journal) as _);
            let mut protocol =
                Balanced::new(scenario.plan.clone(), 1.0).with_telemetry(telemetry.clone());
            run_with_telemetry(&scenario, &mut protocol, telemetry).failed_tests
        },
    );
    let find = |name: &str| {
        h.results()
            .iter()
            .find(|r| r.name == name)
            .expect("benchmark ran")
    };
    let plain = find("trace/plain-run");
    let journaled = find("trace/journaled-run");
    let overhead_pct =
        (journaled.min_ns as f64 - plain.min_ns as f64) / plain.min_ns.max(1) as f64 * 100.0;
    println!("=> journaling overhead: {overhead_pct:.1}% (paired min-over-min)");

    // One retained journaled run feeds the Perfetto export.
    let registry = Arc::new(Registry::with_journal(1024, Journal::with_spill(1 << 16)));
    let telemetry = Telemetry::from_registry(Arc::clone(&registry));
    let mut protocol = Balanced::new(scenario.plan.clone(), 1.0).with_telemetry(telemetry.clone());
    let metrics = run_with_telemetry(&scenario, &mut protocol, telemetry);
    let journal = registry.journal();
    let entries = journal.entries();
    let run_end = metrics.completion_time.unwrap_or_else(|| journal.now());
    let doc = chrome_trace(
        &entries,
        run_end,
        &|m| scenario.plan.machine_name(MachineId(m)).to_string(),
        &|p| scenario.problems.name(ProblemId(p)).to_string(),
        &TraceConfig::default(),
    );
    let trace_events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);
    let dir = csv
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let trace_path = dir.join("mirage-trace.json");
    std::fs::write(&trace_path, doc.to_compact()).expect("write mirage-trace.json");
    println!(
        "  wrote {} ({trace_events} trace events over {} journal entries)",
        trace_path.display(),
        journal.total()
    );

    // BENCH_trace.json: harness rows, the overhead headline, journal
    // accounting, and the head of the trace for schema validation.
    let results = Value::arr(h.results().iter().map(|r| {
        Value::obj([
            ("name", Value::str(r.name.clone())),
            ("samples", Value::from(r.samples)),
            ("min_ns", Value::from(r.min_ns)),
            ("p50_ns", Value::from(r.p50_ns)),
            ("mean_ns", Value::from(r.mean_ns.round())),
            ("max_ns", Value::from(r.max_ns)),
        ])
    }));
    let sample = Value::arr(
        doc.get("traceEvents")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .take(24)
            .cloned(),
    );
    let bench = Value::obj([
        ("suite", Value::str("trace-overhead")),
        (
            "note",
            Value::str(format!(
                "{machines} machines under Balanced; journaled = driver + protocol attach a \
                 bare spilling Journal recorder (full timeline retained, nothing dropped); \
                 samples interleaved plain/journaled so clock drift cancels; overhead_pct = \
                 paired min-over-min; trace_sample = first 24 Chrome trace_event records of \
                 the exported Perfetto document"
            )),
        ),
        ("smoke", Value::from(smoke)),
        ("machines", Value::from(machines)),
        ("results", results),
        (
            "overhead_pct",
            Value::from((overhead_pct * 100.0).round() / 100.0),
        ),
        ("journal_total", Value::from(journal.total())),
        ("journal_dropped", Value::from(journal.dropped())),
        ("trace_events", Value::from(trace_events)),
        ("trace_sample", sample),
    ]);
    let path = dir.join("BENCH_trace.json");
    let mut text = bench.to_pretty();
    if !text.ends_with('\n') {
        text.push('\n');
    }
    std::fs::write(&path, text).expect("write BENCH_trace.json");
    println!("(wrote {})", path.display());

    // In-binary regression gate: the acceptance bound, full fleet only
    // (debug smoke builds are noise-dominated).
    if !smoke {
        assert!(
            overhead_pct < 15.0,
            "journaling overhead {overhead_pct:.1}% exceeds the 15% budget; see {}",
            path.display()
        );
    }
}

/// Runs the paper's staged deployment under 30% message loss with a
/// journal attached, folds the journal into per-wave health frames, and
/// writes `mirage-health.json` — into the `--csv` directory when given,
/// the working directory otherwise.
///
/// The printed table is the watchdog's verdict per wave: convergence
/// lag percentiles, failure rate, retry amplification, and the
/// `healthy`/`degraded`/`unhealthy` classification. Under this much
/// loss the retry machinery works overtime, so the run asserts that at
/// least one wave is flagged degraded or worse — the watchdog must
/// *notice* a degraded channel.
///
/// `--smoke` shrinks the fleet to 8×125 so CI can exercise the whole
/// path in debug builds.
fn health(csv: Option<&std::path::Path>, smoke: bool) {
    use std::sync::Arc;

    use mirage_deploy::Balanced;
    use mirage_sim::{run_with_telemetry, FaultSpec, ScenarioBuilder};
    use mirage_telemetry::health::{health_report_json, rollup};
    use mirage_telemetry::{HealthStatus, Journal, Registry, Telemetry, WatchdogConfig};

    heading(if smoke {
        "Health: per-wave rollup under 30% message loss (smoke fleet)"
    } else {
        "Health: per-wave rollup under 30% message loss (100k machines)"
    });

    let (clusters, size) = if smoke { (8, 125) } else { (20, 5_000) };
    let spec = FaultSpec::new(0x4EA1)
        .loss(0.30)
        .duplication(0.15)
        .delay(10)
        .retry(20, 4)
        .rep_timeout(4_000);
    let scenario = ScenarioBuilder::new()
        .clusters(clusters, size, 1)
        .problem_in_clusters(
            deployment::PREVALENT,
            &[clusters - 6, clusters - 5, clusters - 4],
        )
        .problem_in_clusters(deployment::RARE_A, &[clusters - 3])
        .problem_in_clusters(deployment::RARE_B, &[clusters - 2])
        .faults(spec)
        .build();

    let registry = Arc::new(Registry::with_journal(1024, Journal::with_spill(1 << 16)));
    let telemetry = Telemetry::from_registry(Arc::clone(&registry));
    let mut protocol = Balanced::new(scenario.plan.clone(), 1.0).with_telemetry(telemetry.clone());
    let metrics = run_with_telemetry(&scenario, &mut protocol, telemetry);
    println!(
        "  run: passed {}/{}, completion {:?}, retries {}, dropped {}",
        metrics.passed_count(),
        scenario.machine_count(),
        metrics.completion_time,
        metrics.retries_sent,
        metrics.msgs_dropped
    );

    let journal = registry.journal();
    let entries = journal.entries();
    let mut machine_cluster = vec![0u32; scenario.machine_count()];
    for cluster in &scenario.plan.clusters {
        for m in &cluster.members {
            machine_cluster[m.index()] = cluster.id as u32;
        }
    }
    let run_end = metrics.completion_time.unwrap_or_else(|| journal.now());
    let frames = rollup(
        &entries,
        &machine_cluster,
        run_end,
        &WatchdogConfig::default(),
    );

    println!(
        "\n  {:<5} {:<8} {:>8} {:>8} {:>9} {:>7} {:>7} {:>7} {:>8} {:>8} {:>10}",
        "wave",
        "cluster",
        "start",
        "end",
        "notified",
        "fail%",
        "retryx",
        "waived",
        "lag p50",
        "lag p99",
        "status"
    );
    for f in &frames {
        println!(
            "  {:<5} {:<8} {:>8} {:>8} {:>9} {:>7.2} {:>7.2} {:>7} {:>8} {:>8} {:>10}",
            f.wave,
            f.cluster.map_or("-".to_string(), |c| c.to_string()),
            f.start,
            f.end,
            f.notified,
            f.failure_rate * 100.0,
            f.retry_amplification,
            f.waivers,
            f.lag_p50,
            f.lag_p99,
            f.status.name()
        );
    }
    let flagged = frames
        .iter()
        .filter(|f| f.status >= HealthStatus::Degraded)
        .count();
    println!(
        "=> watchdog flagged {flagged} of {} waves degraded or worse under 30% loss",
        frames.len()
    );

    let dir = csv
        .map(std::path::Path::to_path_buf)
        .unwrap_or_else(|| std::path::PathBuf::from("."));
    let path = dir.join("mirage-health.json");
    let mut text = health_report_json(&frames).to_pretty();
    if !text.ends_with('\n') {
        text.push('\n');
    }
    std::fs::write(&path, text).expect("write mirage-health.json");
    println!("(wrote {})", path.display());

    assert!(
        flagged >= 1,
        "the watchdog flagged no waves under 30% message loss"
    );
}

/// Sweeps the fault injector's message-loss rate from 0% to 30% (with
/// duplication at half the loss rate and ±10-tick delivery delay) over
/// all three protocols on the paper's 100k-machine Figure-10 scenario,
/// and writes `BENCH_faults.json` — into the `--csv` directory when
/// given, the working directory otherwise.
///
/// Every run enables the vendor-side hardening (timed re-notification
/// with exponential backoff, timeout-based stage advancement), so the
/// sweep answers: *does staged deployment still converge, and at what
/// latency/overhead cost, when the channel degrades?*
///
/// `--smoke` shrinks the fleet to 4×250 so CI can exercise the whole
/// path in debug builds.
fn fault_sweep(csv: Option<&std::path::Path>, smoke: bool) {
    use mirage_sim::{FaultSpec, ScenarioBuilder};

    heading(if smoke {
        "Fault sweep (smoke fleet): convergence vs message-loss rate"
    } else {
        "Fault sweep: convergence vs message-loss rate (100k machines)"
    });

    let (clusters, size) = if smoke { (8, 125) } else { (20, 5_000) };
    let protocols = ["NoStaging", "Balanced", "FrontLoading"];
    let loss_pcts: &[u32] = &[0, 5, 10, 15, 20, 25, 30];

    struct Row {
        protocol: &'static str,
        loss_pct: u32,
        converged: bool,
        completion: Option<u64>,
        failed_tests: usize,
        msgs_dropped: u64,
        retries_sent: u64,
        rep_timeouts: u64,
    }
    let mut rows: Vec<Row> = Vec::new();

    for &loss_pct in loss_pcts {
        let loss = loss_pct as f64 / 100.0;
        // Deterministic per-cell seed so the sweep replays exactly.
        let spec = FaultSpec::new(0xFA17_0000 + loss_pct as u64)
            .loss(loss)
            .duplication(loss / 2.0)
            .delay(10)
            .rep_timeout(4_000);
        let scenario = ScenarioBuilder::new()
            .clusters(clusters, size, 1)
            .problem_in_clusters(
                deployment::PREVALENT,
                &[clusters - 6, clusters - 5, clusters - 4],
            )
            .problem_in_clusters(deployment::RARE_A, &[clusters - 3])
            .problem_in_clusters(deployment::RARE_B, &[clusters - 2])
            .faults(spec)
            .build();
        let total = scenario.machine_count();
        for protocol in protocols {
            let m = deployment::run_protocol(&scenario, protocol);
            let converged = m.passed_count() == total;
            println!(
                "  loss {loss_pct:>2}%  {protocol:<12}  passed {:>6}/{total}  completion {:?}  \
                 retries {}  dropped {}  waived {}",
                m.passed_count(),
                m.completion_time,
                m.retries_sent,
                m.msgs_dropped,
                m.rep_timeouts,
            );
            rows.push(Row {
                protocol,
                loss_pct,
                converged,
                completion: m.completion_time,
                failed_tests: m.failed_tests,
                msgs_dropped: m.msgs_dropped,
                retries_sent: m.retries_sent,
                rep_timeouts: m.rep_timeouts,
            });
        }
    }

    let all_converged = rows.iter().all(|r| r.converged);
    println!(
        "=> {} under every loss rate up to 30%",
        if all_converged {
            "all protocols converged to 100%"
        } else {
            "CONVERGENCE FAILURES (see rows)"
        }
    );

    // Hand-rolled JSON (the workspace is offline; no serde).
    let mut json = String::from("{\n  \"suite\": \"fault-sweep\",\n");
    json.push_str(&format!(
        "  \"note\": \"{} machines ({}x{}), problems placed late; duplication = loss/2, \
         delay uniform 0..=10, rep_timeout 4000, seeded per cell\",\n",
        clusters * size,
        clusters,
        size
    ));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"protocol\": \"{}\", \"loss_pct\": {}, \"converged\": {}, \
             \"completion_time\": {}, \"failed_tests\": {}, \"msgs_dropped\": {}, \
             \"retries_sent\": {}, \"rep_timeouts\": {}}}{}\n",
            r.protocol,
            r.loss_pct,
            r.converged,
            r.completion.map_or("null".to_string(), |t| t.to_string()),
            r.failed_tests,
            r.msgs_dropped,
            r.retries_sent,
            r.rep_timeouts,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"all_converged\": {all_converged}\n}}\n"));

    let path = csv
        .map(|d| d.join("BENCH_faults.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_faults.json"));
    std::fs::write(&path, json).expect("write BENCH_faults.json");
    println!("(wrote {})", path.display());
    assert!(
        all_converged,
        "fault sweep found non-converging runs; see {}",
        path.display()
    );
}

/// Runs the guarded strategy × message-loss × release-quality rollback
/// grid and writes `BENCH_rollback.json` — into the `--csv` directory
/// when given, the working directory otherwise.
///
/// Every cell drives the rollout controller end-to-end with a URR
/// guard wired in. A *good* release must converge under every strategy
/// and loss rate without tripping the guard (no false positives); a
/// *bad* release — the same regression seeded into every cluster —
/// must be contained: aborted with exposure inside the first-cohort
/// limit, or (classic staging) held at the representatives until the
/// vendor fix lands. The committed document is the evidence behind the
/// containment claim in EXPERIMENTS.md, so the run asserts the flags.
fn rollback_sweep(csv: Option<&std::path::Path>, smoke: bool) {
    use std::sync::Arc;

    use mirage_core::{GuardSettings, ProtocolChoice, RolloutPlan, RolloutStrategy};
    use mirage_report::Urr;
    use mirage_sim::{run_rollout, FaultSpec, ScenarioBuilder};

    heading(if smoke {
        "Rollback sweep (smoke fleet): guarded strategies vs a fleet-wide regression"
    } else {
        "Rollback sweep: guarded strategies vs a fleet-wide regression (100k machines)"
    });

    let (clusters, size) = if smoke { (8, 125) } else { (20, 5_000) };
    let machines = clusters * size;
    let loss_pcts: &[u32] = &[0, 10, 20, 30];
    let strategies = [
        RolloutStrategy::Staged { waves: 4 },
        RolloutStrategy::Canary {
            percentage: 1.0,
            bake_time: 100,
        },
        RolloutStrategy::Rolling {
            batch_size: machines / 10,
        },
        RolloutStrategy::BlueGreen,
    ];
    // The population floor catches the wide-but-shallow shape: a
    // fleet-wide signature failing one representative per cluster
    // (blue/green's first cohort) never reaches `min_reports` in any
    // single cluster, but its deduplicated population gives it away.
    let guard = GuardSettings {
        max_cluster_failure_rate: 0.3,
        max_failure_population: (clusters / 2).max(2),
        min_reports: 5,
        unhealthy_ticks: 2,
        healthy_ticks: 1,
    };

    struct Row {
        strategy: &'static str,
        loss_pct: u32,
        release: &'static str,
        converged: bool,
        rolled_back: bool,
        exposed: usize,
        exposure_limit: usize,
        completion: Option<u64>,
    }
    let mut rows: Vec<Row> = Vec::new();

    for &loss_pct in loss_pcts {
        let loss = loss_pct as f64 / 100.0;
        for (si, &strategy) in strategies.iter().enumerate() {
            for (bi, release) in ["good", "bad"].into_iter().enumerate() {
                // Deterministic per-cell seed so the sweep replays
                // exactly.
                let seed = 0xB0BA_C000 + (loss_pct as u64) * 16 + (si as u64) * 2 + bi as u64;
                let spec = FaultSpec::new(seed)
                    .loss(loss)
                    .duplication(loss / 2.0)
                    .delay(10);
                let urr = Arc::new(Urr::new());
                let mut builder = ScenarioBuilder::new()
                    .clusters(clusters, size, 1)
                    .faults(spec)
                    .with_urr(Arc::clone(&urr))
                    .with_strategy(strategy)
                    .with_guard(guard);
                if release == "bad" {
                    let everywhere: Vec<usize> = (0..clusters).collect();
                    builder = builder.problem_in_clusters("fleet-regression", &everywhere);
                }
                let scenario = builder.build();
                let exposure_limit =
                    RolloutPlan::new(scenario.plan.clone(), strategy).exposure_limit();
                let (m, outcome) = run_rollout(&scenario, ProtocolChoice::Balanced);
                let converged = m.converged(machines);
                let rolled_back = outcome.rollback.is_some();
                let exposed = outcome.rollback.map_or(0, |info| info.exposed_machines);
                println!(
                    "  loss {loss_pct:>2}%  {:<10}  {release:<4}  {:<11}  \
                     exposed {exposed:>6}/{exposure_limit:<6}  completion {:?}",
                    strategy.name(),
                    if rolled_back {
                        "ROLLED BACK"
                    } else if converged {
                        "converged"
                    } else {
                        "STUCK"
                    },
                    m.completion_time,
                );
                rows.push(Row {
                    strategy: strategy.name(),
                    loss_pct,
                    release,
                    converged,
                    rolled_back,
                    exposed,
                    exposure_limit,
                    completion: m.completion_time,
                });
            }
        }
    }

    let all_good_converged = rows
        .iter()
        .filter(|r| r.release == "good")
        .all(|r| r.converged && !r.rolled_back);
    let all_bad_contained = rows.iter().filter(|r| r.release == "bad").all(|r| {
        if r.rolled_back {
            r.exposed <= r.exposure_limit
        } else {
            r.converged
        }
    });
    let bad_canary_aborts = rows
        .iter()
        .filter(|r| r.release == "bad" && r.strategy == "canary")
        .all(|r| r.rolled_back);
    println!(
        "=> good releases: {}; bad releases: {}",
        if all_good_converged {
            "all converged, no false-positive aborts"
        } else {
            "CONVERGENCE FAILURES (see rows)"
        },
        if all_bad_contained && bad_canary_aborts {
            "all contained (canary aborted every one)"
        } else {
            "CONTAINMENT FAILURES (see rows)"
        }
    );

    // Hand-rolled JSON (the workspace is offline; no serde).
    let mut json = String::from("{\n  \"suite\": \"rollback-sweep\",\n");
    json.push_str(&format!(
        "  \"note\": \"{machines} machines ({clusters}x{size}); bad = one regression seeded \
         into every cluster; guard rate 0.3, population {}, min_reports 5, hysteresis 2/1; \
         duplication = loss/2, delay uniform 0..=10, seeded per cell\",\n",
        guard.max_failure_population
    ));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"machines\": {machines},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"strategy\": \"{}\", \"loss_pct\": {}, \"release\": \"{}\", \
             \"machines\": {machines}, \"converged\": {}, \"rolled_back\": {}, \
             \"exposed\": {}, \"exposure_limit\": {}, \"completion_time\": {}}}{}\n",
            r.strategy,
            r.loss_pct,
            r.release,
            r.converged,
            r.rolled_back,
            r.exposed,
            r.exposure_limit,
            r.completion.map_or("null".to_string(), |t| t.to_string()),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"all_good_converged\": {all_good_converged},\n"
    ));
    json.push_str(&format!(
        "  \"all_bad_contained\": {all_bad_contained}\n}}\n"
    ));

    let path = csv
        .map(|d| d.join("BENCH_rollback.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_rollback.json"));
    std::fs::write(&path, json).expect("write BENCH_rollback.json");
    println!("(wrote {})", path.display());
    assert!(
        all_good_converged,
        "a good release failed to converge (or was aborted); see {}",
        path.display()
    );
    assert!(
        all_bad_contained,
        "a bad release escaped containment; see {}",
        path.display()
    );
    assert!(
        bad_canary_aborts,
        "a guarded canary failed to abort a bad release; see {}",
        path.display()
    );
}

/// Runs a protocol × threshold × message-loss grid through the sharded
/// parallel driver, every cell reusing one [`mirage_sim::SimArena`],
/// and writes `BENCH_sweep.json` — into the `--csv` directory when
/// given, the working directory otherwise.
///
/// This is the sweep workload the arena exists for: dozens of
/// simulator runs back to back, where per-run queue and scratch
/// allocation would otherwise dominate the small cells. The grid
/// covers the three staged protocols at thresholds 1.0 and 0.9 under
/// 0/10/20% message loss (duplication at half the loss rate, ±10-tick
/// delay, vendor hardening on, seeded per cell so the sweep replays
/// exactly).
///
/// The worker count is `MIRAGE_SIM_THREADS` when set, 8 otherwise —
/// fixed rather than host-derived so the committed document does not
/// depend on the machine that produced it. Every cell must converge to
/// a full fleet pass; the run exits non-zero otherwise.
///
/// `--smoke` shrinks the fleet to 8×125 and the grid to threshold 1.0 ×
/// loss {0, 20}% so CI can exercise the whole path in debug builds.
fn sweep(csv: Option<&std::path::Path>, smoke: bool) {
    use std::time::Instant;

    use mirage_deploy::ProtocolChoice;
    use mirage_sim::{run_parallel_in, FaultSpec, ScenarioBuilder, SimArena};
    use mirage_telemetry::Telemetry;

    heading(if smoke {
        "Sweep (smoke fleet): protocol x threshold x loss grid, shared arena"
    } else {
        "Sweep: protocol x threshold x loss grid, shared arena (100k machines)"
    });

    let (clusters, size) = if smoke { (8, 125) } else { (20, 5_000) };
    let protocols = [
        ProtocolChoice::NoStaging,
        ProtocolChoice::Balanced,
        ProtocolChoice::FrontLoading,
    ];
    let thresholds: &[f64] = if smoke { &[1.0] } else { &[1.0, 0.9] };
    let loss_pcts: &[u32] = if smoke { &[0, 20] } else { &[0, 10, 20] };
    let workers = std::env::var("MIRAGE_SIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(8);

    struct Cell {
        protocol: &'static str,
        threshold: f64,
        loss_pct: u32,
        converged: bool,
        completion: Option<u64>,
        failed_tests: usize,
        escaped: usize,
        wall_ms: f64,
    }
    let mut cells: Vec<Cell> = Vec::new();
    let mut arena = SimArena::new();
    let sweep_started = Instant::now();

    for &loss_pct in loss_pcts {
        // One scenario per loss rate, shared by every protocol and
        // threshold cell at that rate.
        let mut builder = ScenarioBuilder::new()
            .clusters(clusters, size, 1)
            .problem_in_clusters(
                deployment::PREVALENT,
                &[clusters - 6, clusters - 5, clusters - 4],
            )
            .problem_in_clusters(deployment::RARE_A, &[clusters - 3])
            .problem_in_clusters(deployment::RARE_B, &[clusters - 2]);
        if loss_pct > 0 {
            let loss = f64::from(loss_pct) / 100.0;
            builder = builder.faults(
                FaultSpec::new(0x5EE9_0000 + u64::from(loss_pct))
                    .loss(loss)
                    .duplication(loss / 2.0)
                    .delay(10)
                    .rep_timeout(4_000),
            );
        }
        let scenario = builder.build();
        let total = scenario.machine_count();
        for &threshold in thresholds {
            for choice in protocols {
                let mut protocol = choice.build(scenario.plan.clone(), threshold);
                let t0 = Instant::now();
                let m = run_parallel_in(
                    &mut arena,
                    &scenario,
                    &mut protocol,
                    Telemetry::noop(),
                    workers,
                );
                let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
                let converged = m.passed_count() == total;
                println!(
                    "  loss {loss_pct:>2}%  thr {threshold:.1}  {:<12}  passed {:>6}/{total}  \
                     completion {:?}  failed {}  escaped {}  ({wall_ms:.1} ms)",
                    choice.name(),
                    m.passed_count(),
                    m.completion_time,
                    m.failed_tests,
                    m.escaped_problems,
                );
                cells.push(Cell {
                    protocol: choice.name(),
                    threshold,
                    loss_pct,
                    converged,
                    completion: m.completion_time,
                    failed_tests: m.failed_tests,
                    escaped: m.escaped_problems,
                    wall_ms,
                });
            }
        }
    }

    let all_converged = cells.iter().all(|c| c.converged);
    println!(
        "=> {} cells in {:.2} s on one arena ({workers} workers): {}",
        cells.len(),
        sweep_started.elapsed().as_secs_f64(),
        if all_converged {
            "all converged to a full fleet pass"
        } else {
            "CONVERGENCE FAILURES (see rows)"
        }
    );

    // Hand-rolled JSON (the workspace is offline; no serde).
    let mut json = String::from("{\n  \"suite\": \"sim-sweep\",\n");
    json.push_str(&format!(
        "  \"note\": \"{} machines ({}x{}), problems placed late; grid = protocol x \
         threshold x loss with duplication = loss/2, delay uniform 0..=10, rep_timeout \
         4000, seeded per loss rate; every cell runs through run_parallel_in on one \
         shared SimArena; wall_ms is informational (host-dependent)\",\n",
        clusters * size,
        clusters,
        size
    ));
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"workers\": {workers},\n"));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"protocol\": \"{}\", \"threshold\": {:.1}, \"loss_pct\": {}, \
             \"converged\": {}, \"completion_time\": {}, \"failed_tests\": {}, \
             \"escaped\": {}, \"wall_ms\": {:.1}}}{}\n",
            c.protocol,
            c.threshold,
            c.loss_pct,
            c.converged,
            c.completion.map_or("null".to_string(), |t| t.to_string()),
            c.failed_tests,
            c.escaped,
            c.wall_ms,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"all_converged\": {all_converged}\n}}\n"));

    let path = csv
        .map(|d| d.join("BENCH_sweep.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_sweep.json"));
    std::fs::write(&path, json).expect("write BENCH_sweep.json");
    println!("(wrote {})", path.display());
    assert!(
        all_converged,
        "sweep found non-converging cells; see {}",
        path.display()
    );
}

/// Benchmarks the deployment simulator's hot path and writes
/// `BENCH_sim.json` — into the `--csv` directory when given, the
/// working directory otherwise.
///
/// Workloads:
///
/// * the paper's 100k-machine Figure-10 scenario, *interned* driver vs
///   the retained *string-keyed reference* driver, paired per protocol
///   (NoStaging / Balanced / FrontLoading) so clock drift lands on both
///   sides equally;
/// * a 1,000,000-machine variant (100 clusters × 10 000) on the
///   interned sequential driver, per protocol;
/// * the sharded parallel driver under Balanced at 100k and 1M with
///   1/2/4/8 workers (`w1` delegates to the sequential oracle — it *is*
///   the one-worker configuration). Each sample clones the plan and
///   builds the protocol untimed, then times the run; the parallel rows
///   reuse a `SimArena` across samples, the sequential row's in-run
///   allocation being its real per-run cost;
/// * one single-shot `scale` row: 10M machines (1000×10 000), Balanced,
///   8 workers — the acceptance workload for the sub-10 s budget.
///
/// Before timing anything, the reference driver and the parallel driver
/// at 2/4/8 workers are asserted bit-identical to the sequential
/// interned driver on the 100k scenario (the same properties the seeded
/// proptests check on random scenarios). The per-benchmark budget
/// follows `MIRAGE_BENCH_MS` (default 150 ms).
fn sim_perf(csv: Option<&std::path::Path>) {
    use std::time::Instant;

    use mirage_bench::harness::{black_box, Harness};
    use mirage_deploy::reference::{
        NamedBalanced, NamedFrontLoading, NamedNoStaging, NamedProtocol,
    };
    use mirage_deploy::{Balanced, FrontLoading, NoStaging, Protocol};
    use mirage_sim::runner::reference::{run_reference, NamedScenario};
    use mirage_sim::{run, run_parallel_in, Scenario, ScenarioBuilder, SimArena};
    use mirage_telemetry::Telemetry;

    heading("Simulator performance (interned vs reference, sequential vs parallel)");

    let s100k = deployment::sound_scenario(deployment::ProblemPlacement::Late);
    let named = NamedScenario::from_scenario(&s100k);
    // 1M machines, problems placed late like the Figure-10 setup.
    let s1m = ScenarioBuilder::new()
        .clusters(100, 10_000, 1)
        .problem_in_clusters(deployment::PREVALENT, &[75, 80, 85])
        .problem_in_clusters(deployment::RARE_A, &[90])
        .problem_in_clusters(deployment::RARE_B, &[95])
        .build();

    type FastFactory = (&'static str, Box<dyn Fn(&Scenario) -> Box<dyn Protocol>>);
    let fast: Vec<FastFactory> = vec![
        (
            "NoStaging",
            Box::new(|s| Box::new(NoStaging::new(s.plan.clone()))),
        ),
        (
            "Balanced",
            Box::new(|s| Box::new(Balanced::new(s.plan.clone(), 1.0))),
        ),
        (
            "FrontLoading",
            Box::new(|s| Box::new(FrontLoading::new(s.plan.clone(), 1.0))),
        ),
    ];
    let slow = |name: &str, n: &NamedScenario| -> Box<dyn NamedProtocol> {
        match name {
            "NoStaging" => Box::new(NamedNoStaging::new(n.plan.clone())),
            "Balanced" => Box::new(NamedBalanced::new(n.plan.clone(), 1.0)),
            _ => Box::new(NamedFrontLoading::new(n.plan.clone(), 1.0)),
        }
    };

    // Sanity: the drivers agree on the full 100k scenario before any
    // timing (same equivalences the seeded proptests establish).
    for (name, make) in &fast {
        let fast_m = run(&s100k, make(&s100k).as_mut());
        let slow_m = run_reference(&named, slow(name, &named).as_mut());
        assert_eq!(
            fast_m, slow_m,
            "{name}: drivers diverged on the 100k scenario"
        );
    }
    {
        let mut arena = SimArena::new();
        let expect = run(&s100k, &mut Balanced::new(s100k.plan.clone(), 1.0));
        for workers in [2usize, 4, 8] {
            let mut p = Balanced::new(s100k.plan.clone(), 1.0);
            let got = run_parallel_in(&mut arena, &s100k, &mut p, Telemetry::noop(), workers);
            assert_eq!(
                expect, got,
                "parallel driver diverged at {workers} workers on the 100k scenario"
            );
        }
    }
    println!("  (reference and parallel drivers bit-identical to sequential on 100k)\n");

    let mut h = Harness::new("sim-perf");
    for (name, make) in &fast {
        h.bench_paired(
            &format!("sim/100k/interned/{name}"),
            &format!("sim/100k/reference/{name}"),
            || run(&s100k, make(&s100k).as_mut()).failed_tests,
            || run_reference(&named, slow(name, &named).as_mut()).failed_tests,
        );
    }
    for (name, make) in &fast {
        h.bench(&format!("sim/1m/interned/{name}"), || {
            run(&s1m, make(&s1m).as_mut()).failed_tests
        });
    }

    // Parallel-driver rows: per sample, the plan clone and protocol
    // construction stay untimed (identically on every row — at 1M the
    // clone alone dwarfs the run), then the run itself is timed. Each
    // row reuses its own arena across samples; `w1` delegates to the
    // sequential driver, whose internal allocation is its honest
    // per-run cost.
    fn par_ns(s: &Scenario, arena: &mut SimArena, workers: usize) -> u64 {
        let mut p = Balanced::new(s.plan.clone(), 1.0);
        let t0 = Instant::now();
        black_box(run_parallel_in(arena, s, &mut p, Telemetry::noop(), workers).failed_tests);
        t0.elapsed().as_nanos() as u64
    }
    for (s, size) in [(&s100k, "100k"), (&s1m, "1m")] {
        // The headline pair (w1 vs w8) samples strictly interleaved;
        // the intermediate counts pair up likewise.
        for (w_a, w_b) in [(1usize, 8usize), (2, 4)] {
            let mut arena_a = SimArena::new();
            let mut arena_b = SimArena::new();
            h.bench_paired_ns(
                &format!("sim/{size}/parallel/w{w_a}/Balanced"),
                &format!("sim/{size}/parallel/w{w_b}/Balanced"),
                || par_ns(s, &mut arena_a, w_a),
                || par_ns(s, &mut arena_b, w_b),
            );
        }
    }

    // The 10M acceptance workload: one honest sample (construction
    // untimed), marked `scale` so bench-check knows the single sample
    // is intentional.
    let s10m = ScenarioBuilder::new()
        .clusters(1_000, 10_000, 1)
        .problem_in_clusters(deployment::PREVALENT, &[750, 800, 850])
        .problem_in_clusters(deployment::RARE_A, &[900])
        .problem_in_clusters(deployment::RARE_B, &[950])
        .build();
    let mut arena10 = SimArena::new();
    let mut proto10 = Some(Balanced::new(s10m.plan.clone(), 1.0));
    h.bench_scale("sim/10m/parallel/w8/Balanced", || {
        let mut p = proto10.take().expect("bench_scale samples exactly once");
        run_parallel_in(&mut arena10, &s10m, &mut p, Telemetry::noop(), 8).failed_tests
    });

    // Hand-rolled JSON (the workspace is offline; no serde).
    let mut json = String::from("{\n  \"suite\": \"sim-perf\",\n");
    json.push_str(
        "  \"note\": \"100k = the paper's Figure-10 scenario (20x5000, problems late); \
         1m = 100x10000, 10m = 1000x10000 with the same late placement; reference = the \
         retained string-keyed BinaryHeap driver + protocols; parallel rows time the run \
         only (plan clone + protocol construction untimed on every row), reuse a SimArena \
         across samples, and w1 is the sequential oracle the sharded driver is \
         bit-identical to; scale rows are intentionally single-sample\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in h.results().iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"p50_ns\": {}, \
             \"mean_ns\": {:.0}, \"max_ns\": {}{}}}{}\n",
            r.name,
            r.samples,
            r.min_ns,
            r.p50_ns,
            r.mean_ns,
            r.max_ns,
            if r.scale { ", \"scale\": true" } else { "" },
            if i + 1 < h.results().len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let find = |name: &str| {
        h.results()
            .iter()
            .find(|r| r.name == name)
            .expect("benchmark ran")
    };
    json.push_str("  \"speedup_100k_vs_reference\": {\n");
    for (i, (name, _)) in fast.iter().enumerate() {
        let fast_r = find(&format!("sim/100k/interned/{name}"));
        let slow_r = find(&format!("sim/100k/reference/{name}"));
        let speedup = slow_r.min_ns as f64 / fast_r.min_ns.max(1) as f64;
        println!("=> {name}: 100k interned is {speedup:.2}x the string reference (min-over-min)");
        json.push_str(&format!(
            "    \"{name}\": {speedup:.2}{}\n",
            if i + 1 < fast.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    let b1m = find("sim/1m/interned/Balanced");
    let b1m_secs = b1m.min_ns as f64 / 1e9;
    println!("=> 1M-machine Balanced run: {b1m_secs:.2} s (min, sequential)");
    json.push_str(&format!("  \"balanced_1m_seconds\": {b1m_secs:.3},\n"));
    json.push_str(&format!(
        "  \"balanced_1m_under_10s\": {},\n",
        b1m_secs < 10.0
    ));
    let par_speedup = |size: &str| {
        let w1 = find(&format!("sim/{size}/parallel/w1/Balanced"));
        let w8 = find(&format!("sim/{size}/parallel/w8/Balanced"));
        w1.min_ns as f64 / w8.min_ns.max(1) as f64
    };
    let sp100k = par_speedup("100k");
    let sp1m = par_speedup("1m");
    println!(
        "=> parallel w8 vs w1 (Balanced, min-over-min): {sp100k:.2}x at 100k, {sp1m:.2}x at 1M"
    );
    json.push_str(&format!(
        "  \"parallel_speedup_100k_w8_vs_w1\": {sp100k:.2},\n"
    ));
    json.push_str(&format!("  \"parallel_speedup_1m_w8_vs_w1\": {sp1m:.2},\n"));
    let b10m = find("sim/10m/parallel/w8/Balanced");
    let b10m_secs = b10m.min_ns as f64 / 1e9;
    println!("=> 10M-machine Balanced run (8 workers): {b10m_secs:.2} s (single scale sample)");
    json.push_str(&format!("  \"balanced_10m_seconds\": {b10m_secs:.3},\n"));
    json.push_str(&format!(
        "  \"balanced_10m_under_10s\": {}\n}}\n",
        b10m_secs < 10.0
    ));

    let path = csv
        .map(|d| d.join("BENCH_sim.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_sim.json"));
    std::fs::write(&path, json).expect("write BENCH_sim.json");
    println!("(wrote {})", path.display());
}

/// Benchmarks the clustering hot path (dense fleets, one original
/// cluster each, diameter 2) and writes `BENCH_clustering.json` — into
/// the `--csv` directory when given, the working directory otherwise.
///
/// Alongside the fast-path numbers, the retained pre-PR naive QT loop
/// ([`mirage_cluster::qt_cluster_indices_reference`]) is benchmarked on
/// the dense-200 fleet, so the emitted JSON carries a live speedup
/// figure rather than a stale hardcoded baseline. The per-benchmark
/// budget follows `MIRAGE_BENCH_MS` (default 150 ms).
fn clustering_perf(csv: Option<&std::path::Path>) {
    use mirage_bench::harness::Harness;
    use mirage_cluster::{qt_cluster_indices_reference, ClusterEngine, MachineInfo};
    use mirage_fingerprint::{DiffSet, Item};

    heading("Clustering performance (hot-path benchmark)");

    /// Same worst-case shape as `benches/clustering.rs`: `groups`
    /// original clusters, per-machine content noise.
    fn population(n: usize, groups: usize) -> Vec<MachineInfo> {
        (0..n)
            .map(|i| {
                let mut diff = DiffSet::empty(format!("m{i:05}"));
                diff.parsed
                    .insert(Item::new(["group", &(i % groups).to_string()]));
                diff.content
                    .insert(Item::new(["noise", &(i / 3).to_string()]));
                MachineInfo::new(diff)
            })
            .collect()
    }

    let mut h = Harness::new("clustering-perf");
    let engine = ClusterEngine::new(2);
    for &n in &[200usize, 500, 1000] {
        let dense = population(n, 1);
        h.bench(&format!("clustering/scaling/dense-{n}"), || {
            engine.cluster(&dense).len()
        });
    }
    let spread = population(1000, 200);
    h.bench("clustering/scaling/spread-1000", || {
        engine.cluster(&spread).len()
    });
    // The pre-PR naive phase-2 loop on the same dense-200 fleet.
    let dense200 = population(200, 1);
    let refs: Vec<&MachineInfo> = dense200.iter().collect();
    h.bench("clustering/scaling/dense-200-reference-qt", || {
        qt_cluster_indices_reference(&refs, 2).len()
    });

    // Hand-rolled JSON (the workspace is offline; no serde).
    let mut json = String::from("{\n  \"suite\": \"clustering-perf\",\n");
    json.push_str(
        "  \"note\": \"dense-N = one original cluster of N machines, diameter 2; \
         dense-200-reference-qt = the retained pre-PR naive QT loop on the same fleet\",\n",
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in h.results().iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"min_ns\": {}, \"p50_ns\": {}, \
             \"mean_ns\": {:.0}, \"max_ns\": {}}}{}\n",
            r.name,
            r.samples,
            r.min_ns,
            r.p50_ns,
            r.mean_ns,
            r.max_ns,
            if i + 1 < h.results().len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    let find = |name: &str| {
        h.results()
            .iter()
            .find(|r| r.name == name)
            .expect("benchmark ran")
    };
    let fast = find("clustering/scaling/dense-200");
    let reference = find("clustering/scaling/dense-200-reference-qt");
    let speedup = reference.min_ns as f64 / fast.min_ns.max(1) as f64;
    json.push_str(&format!(
        "  \"dense_200_speedup_vs_reference\": {speedup:.2}\n}}\n"
    ));
    println!("=> dense-200 fast path is {speedup:.2}x the naive reference (min-over-min)");

    let path = csv
        .map(|d| d.join("BENCH_clustering.json"))
        .unwrap_or_else(|| std::path::PathBuf::from("BENCH_clustering.json"));
    std::fs::write(&path, json).expect("write BENCH_clustering.json");
    println!("(wrote {})", path.display());
}

/// Runs an instrumented deployment simulation plus a full instrumented
/// Apache ACL campaign and writes the combined registry snapshot (span
/// timings, counters, gauges, flight-event log) as JSON to `path`.
///
/// The simulation runs first so its high-volume per-machine events
/// cannot evict the campaign's flight log from the bounded ring; exact
/// per-kind event *counts* include evicted events either way.
fn telemetry_dump(path: &std::path::Path) {
    use std::sync::Arc;

    use mirage_core::{Campaign, ProtocolChoice, RolloutStrategy};
    use mirage_deploy::Balanced;
    use mirage_env::RunInput;
    use mirage_scenarios::apache::ApacheScenario;
    use mirage_sim::run_with_telemetry;
    use mirage_telemetry::{Registry, Telemetry};

    heading("Telemetry: instrumented simulation + Apache ACL campaign");
    let registry = Arc::new(Registry::new(8192));
    let telemetry = Telemetry::from_registry(Arc::clone(&registry));

    // 1. The paper's 100k-machine deployment simulation under Balanced.
    let sim_scenario = deployment::sound_scenario(deployment::ProblemPlacement::Late);
    let mut protocol =
        Balanced::new(sim_scenario.plan.clone(), 1.0).with_telemetry(telemetry.clone());
    let metrics = run_with_telemetry(&sim_scenario, &mut protocol, telemetry.clone());
    println!(
        "  sim: overhead {}, completion {:?}",
        metrics.failed_tests, metrics.completion_time
    );

    // 2. The full Apache ACL campaign (§4.2 world, real validation).
    let scenario = ApacheScenario::new();
    let upgrade = scenario.upgrade.clone();
    let mut campaign =
        Campaign::new(scenario.vendor, scenario.agents).with_telemetry(telemetry.clone());
    let classification = campaign
        .vendor
        .classify_reference("apache", &[RunInput::new("a"), RunInput::new("b")]);
    let reference = campaign.vendor.reference_fingerprint(&classification);
    let (_, plan) = campaign.rollout_plan(
        "apache",
        &reference,
        1,
        RolloutStrategy::Staged { waves: 1 },
    );
    let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
    println!(
        "  campaign: converged {}, rounds {}, releases {}, failed validations {}",
        result.converged(8),
        result.rounds,
        result.releases.len(),
        result.failed_validations
    );

    let snap = registry.snapshot();
    std::fs::write(path, snap.to_json()).expect("write telemetry snapshot");
    println!(
        "  wrote {} ({} counters, {} span paths, {} gauges, {} flight events)",
        path.display(),
        snap.counters.len(),
        snap.spans.len(),
        snap.gauges.len(),
        snap.events_total
    );
}

fn heading(title: &str) {
    println!("\n=== {title} ===\n");
}

fn fig1(csv: Option<&std::path::Path>) {
    heading("Figure 1: Upgrade frequencies (by experience)");
    let rows = survey::dataset();
    let fig = survey::figure1(&rows);
    let table: Vec<Vec<String>> = fig
        .iter()
        .map(|(freq, per_exp)| {
            let total: usize = per_exp.iter().sum();
            vec![
                freq.label().to_string(),
                per_exp[0].to_string(),
                per_exp[1].to_string(),
                per_exp[2].to_string(),
                per_exp[3].to_string(),
                format!("{total:>2} {}", bar(total, 20)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Upgrade frequency",
                "0-2y",
                "2-5y",
                "5-10y",
                ">10y",
                "Total"
            ],
            &table
        )
    );
    let stats = survey::stats(&rows);
    println!(
        "=> {:.0}% of administrators upgrade once a month or more (paper: 90%)",
        stats.monthly_or_more * 100.0
    );
    let (security, bug_fix, user_request, new_feature) = survey::reason_rank_averages(&rows);
    println!(
        "=> reason ranks: security {security:.1}, bug fix {bug_fix:.1}, user request {user_request:.1}, new feature {new_feature:.1} (paper: 1.6 / 2.2 / 3.3 / 3.5)"
    );
    if let Some(dir) = csv {
        let mut out = String::from("frequency,exp_0_2,exp_2_5,exp_5_10,exp_10_plus\n");
        for (freq, per_exp) in &fig {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                freq.label(),
                per_exp[0],
                per_exp[1],
                per_exp[2],
                per_exp[3]
            ));
        }
        std::fs::write(dir.join("fig1.csv"), out).expect("write fig1.csv");
        println!("(wrote {}/fig1.csv)", dir.display());
    }
}

fn fig2() {
    heading("Figure 2: Reluctance to upgrade");
    let rows = survey::dataset();
    let fig = survey::figure2(&rows);
    let table = vec![
        vec![
            "Refrain to install".to_string(),
            fig[&(true, false)].to_string(),
            fig[&(true, true)].to_string(),
        ],
        vec![
            "Does not refrain".to_string(),
            fig[&(false, false)].to_string(),
            fig[&(false, true)].to_string(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &["", "No testing strategy", "Have testing strategy"],
            &table
        )
    );
    let stats = survey::stats(&rows);
    println!(
        "=> {:.0}% refrain from installing; {:.0}% have a testing strategy (paper: 70% / 70%)",
        stats.refrain_fraction * 100.0,
        stats.strategy_fraction * 100.0
    );
}

fn fig3(csv: Option<&std::path::Path>) {
    heading("Figure 3: Perceived upgrade failure rate");
    let rows = survey::dataset();
    let fig = survey::figure3(&rows);
    let table: Vec<Vec<String>> = fig
        .iter()
        .map(|(pct, count)| vec![format!("{pct}%"), count.to_string(), bar(*count, 20)])
        .collect();
    println!(
        "{}",
        render_table(&["Failure rate", "Respondents", ""], &table)
    );
    let stats = survey::stats(&rows);
    println!(
        "=> average {:.1}%, median {:.0}%, {:.0}% answered 5-10% (paper: 8.6% / 5% / 66%)",
        stats.failure_rate_avg,
        stats.failure_rate_median,
        stats.failure_rate_5_to_10 * 100.0
    );
    if let Some(dir) = csv {
        let mut out = String::from("failure_rate_pct,respondents\n");
        for (pct, count) in &fig {
            out.push_str(&format!("{pct},{count}\n"));
        }
        std::fs::write(dir.join("fig3.csv"), out).expect("write fig3.csv");
        println!("(wrote {}/fig3.csv)", dir.display());
    }
}

fn table1(csv: Option<&std::path::Path>) {
    heading("Table 1: Effectiveness of the heuristic in identifying environmental resources");
    let rows: Vec<Vec<String>> = apps::all_models()
        .iter()
        .map(|model| {
            let row = model.table1_row();
            let perfect = model.with_rules_row().is_perfect();
            vec![
                row.app.clone(),
                row.files_total.to_string(),
                row.env_resources.to_string(),
                row.false_positives.to_string(),
                row.false_negatives.to_string(),
                row.vendor_rules.to_string(),
                if perfect { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "App",
                "Files total",
                "Env. resources",
                "False positives",
                "False negatives",
                "Required vendor rules",
                "Perfect with rules",
            ],
            &rows
        )
    );
    println!("=> paper: firefox 907/839/1/23/7, apache 400/251/133/0/2, php 215/206/0/0/0, mysql 286/250/0/33/1");
    if let Some(dir) = csv {
        let mut out = String::from(
            "app,files_total,env_resources,false_positives,false_negatives,vendor_rules\n",
        );
        for row in &rows {
            out.push_str(&format!("{}\n", row.join(",")));
        }
        std::fs::write(dir.join("table1.csv"), out).expect("write table1.csv");
        println!("(wrote {}/table1.csv)", dir.display());
    }
}

fn quality(q: ClusterQuality) -> &'static str {
    match q {
        ClusterQuality::Ideal => "ideal",
        ClusterQuality::Sound => "sound",
        ClusterQuality::Imperfect => "imperfect",
    }
}

fn print_clustering(
    clustering: &mirage_cluster::Clustering,
    score: &mirage_cluster::ClusteringScore,
    behavior: &std::collections::BTreeMap<String, String>,
) {
    for cluster in &clustering.clusters {
        let marks: Vec<String> = cluster
            .members
            .iter()
            .map(|m| match behavior.get(m).map(String::as_str) {
                Some(problem) => format!("{m} [{problem}]"),
                None => m.clone(),
            })
            .collect();
        println!("  {}: {}", cluster.id, marks.join(", "));
    }
    println!(
        "=> {} clusters, C = {}, w = {} ({})",
        score.clusters,
        score.unnecessary_clusters,
        score.misplaced,
        quality(score.quality())
    );
}

fn fig6() {
    heading("Figure 6: MySQL clustering with parsers for all environmental resources");
    let scenario = mysql::MySqlScenario::with_full_parsers();
    let (clustering, score) = scenario.cluster_and_score();
    print_clustering(&clustering, &score, &scenario.behavior);
    println!("   paper: 15 clusters, C = 12, w = 0 (sound)");
}

fn fig7() {
    heading("Figure 7: MySQL clustering with Mirage parsers only (diameter 3)");
    let scenario = mysql::MySqlScenario::with_mirage_parsers(3);
    let (clustering, score) = scenario.cluster_and_score();
    print_clustering(&clustering, &score, &scenario.behavior);
    println!("   paper: w = 2 (the userconfig machines are absorbed; imperfect)");
    let (z_clustering, z_score) = mysql::MySqlScenario::with_mirage_parsers(0).cluster_and_score();
    println!(
        "   ablation d = 0: {} clusters, w = {} (benign differences split too)",
        z_clustering.len(),
        z_score.misplaced
    );
}

fn merge() {
    heading("§4.2.1: Vendor drops my.cnf items to merge clusters");
    let scenario = mysql::MySqlScenario::with_full_parsers();
    let (full, _) = scenario.cluster_and_score();
    let (merged, score) = scenario.cluster_ignoring_mycnf();
    println!(
        "  clusters: {} -> {} after ignoring /etc/mysql/my.cnf items; w = {}",
        full.len(),
        merged.len(),
        score.misplaced
    );
    println!(
        "  paper: merging my.cnf-variant clusters speeds staging while problems stay separated"
    );
}

fn fig8() {
    heading("Figure 8: Firefox clustering with parsers for all environmental resources");
    let scenario = firefox::FirefoxScenario::with_full_parsers();
    let (clustering, score) = scenario.cluster_and_score();
    print_clustering(&clustering, &score, &scenario.behavior);
    println!("   paper: 4 clusters, C = 2, w = 0 (sound)");
}

fn fig9() {
    heading("Figure 9: Firefox clustering with Mirage parsers only");
    for d in [4usize, 6] {
        println!("-- diameter {d} --");
        let scenario = firefox::FirefoxScenario::with_mirage_parsers(d);
        let (clustering, score) = scenario.cluster_and_score();
        print_clustering(&clustering, &score, &scenario.behavior);
    }
    println!("   paper: d = 4 ideal (w = 0, C = 0); d = 6 imperfect (w = 3)");
}

fn print_curves(curves: &[deployment::Curve]) {
    for curve in curves {
        println!(
            "-- {} (overhead {}, complete at {:?}) --",
            curve.label, curve.overhead, curve.completion
        );
        for (t, f) in render_cdf(&curve.cdf, 12) {
            println!("    t={t:>5}  {:>5.2}  {}", f, bar((f * 20.0) as usize, 20));
        }
    }
}

fn write_curves_csv(dir: &std::path::Path, name: &str, curves: &[deployment::Curve]) {
    let mut out = String::from("label,time,fraction\n");
    for curve in curves {
        for (t, f) in &curve.cdf {
            out.push_str(&format!("{},{t},{f}\n", curve.label));
        }
    }
    std::fs::write(dir.join(name), out).expect("write csv");
    println!("(wrote {}/{name})", dir.display());
}

fn fig10(csv: Option<&std::path::Path>) {
    heading("Figure 10: CDF of per-cluster upgrade latency under sound clustering");
    let curves = deployment::figure10();
    print_curves(&curves);
    if let Some(dir) = csv {
        write_curves_csv(dir, "fig10.csv", &curves);
    }
    println!("   paper: NoStaging 75% immediately; Balanced(best) fastest staged start;");
    println!(
        "   FrontLoading delayed by front-loaded debugging but finishes its last cluster first."
    );
}

fn fig11(csv: Option<&std::path::Path>) {
    heading("Figure 11: CDF of upgrade latency under imperfect clustering");
    let curves = deployment::figure11();
    print_curves(&curves);
    if let Some(dir) = csv {
        write_curves_csv(dir, "fig11.csv", &curves);
    }
    println!(
        "   paper: a misplaced machine in the first cluster slows FrontLoading and Balanced-best;"
    );
    println!("   in the last cluster the effect is marginal; overall trends unchanged.");
}

fn overhead() {
    heading("§4.3.2: Upgrade overhead (machines that tested a faulty upgrade)");
    let rows: Vec<Vec<String>> = deployment::overhead_table()
        .into_iter()
        .map(|(label, overhead)| vec![label, overhead.to_string()])
        .collect();
    println!("{}", render_table(&["Protocol", "Overhead"], &rows));
    println!(
        "=> paper: NoStaging = m = {}, Balanced/RandomStaging = p = 3, FrontLoading = p + Cp = 5",
        deployment::problematic_machines()
    );
}
