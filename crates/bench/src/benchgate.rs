//! Validation of the committed `BENCH_*.json` documents.
//!
//! CI smoke steps regenerate benchmark JSONs and upload them, but the
//! *committed* copies in the repository root are what EXPERIMENTS.md
//! and the README cite — and nothing used to stop them from silently
//! drifting (stale schema after a harness change, hand-mangled numbers,
//! a truncated write). The `repro bench-check` subcommand runs the
//! checks in this module over every committed document and fails the
//! build when one no longer parses, no longer matches the expected
//! schema, or no longer satisfies the invariants the CI smokes rely on:
//!
//! * `BENCH_clustering.json` — harness rows well-formed, dense-200
//!   speedup vs the naive reference ≥ 1.0;
//! * `BENCH_sim.json` — harness rows well-formed, every protocol's 100k
//!   speedup vs the string-keyed reference ≥ 1.0, the parallel w1/w8
//!   rows present with the 1M w8-vs-w1 speedup above its regression
//!   floor, and both the 1M (sequential) and 10M (parallel, single
//!   `scale` sample) Balanced runs under their 10 s budgets;
//! * `BENCH_faults.json` — sweep rows well-formed, **every** loss rate
//!   converged (and `all_converged` agrees with the rows);
//! * `BENCH_sweep.json` — grid rows well-formed, every protocol ×
//!   threshold × loss cell converged on the shared-arena parallel
//!   driver (and `all_converged` agrees with the rows);
//! * `BENCH_urr.json` — harness rows well-formed, sharded ingest
//!   speedup vs `report::reference` ≥ 1.0, query p50 ≤ p99;
//! * `BENCH_trace.json` — harness rows well-formed, journaling overhead
//!   under the 15% acceptance budget on the full (non-smoke) fleet,
//!   nothing dropped from the journal, and the embedded Chrome
//!   `trace_event` sample schema-valid (string `name`, known `ph`
//!   phase, numeric `pid`/`tid`);
//! * `BENCH_drift.json` — harness rows well-formed and non-smoke, the
//!   100k batch-engine/reference-loop pair present with the batch
//!   engine at least 5x faster, re-cluster-after-drift p50 ≤ p99,
//!   positive sustained moves/s, the 1M scale row present, and the
//!   engine's drift counters verified equal to the reference plane's
//!   during the run (`drift_counters_match`);
//! * `BENCH_rollback.json` — strategy × loss × release rows
//!   well-formed, every *good*-release row converged with no rollback
//!   (the guard must not false-positive a healthy fleet), every
//!   *bad*-release row contained — aborted with exposure inside the
//!   first-cohort limit, or converged through the vendor-fix path
//!   without one — every bad `canary` row specifically rolled back
//!   (the headline containment claim), and `all_good_converged` /
//!   `all_bad_contained` agreeing with the rows;
//! * `BENCH_storage.json` — harness rows well-formed and non-smoke,
//!   the 100k WAL-append (memory and fs), recovery (WAL-only and
//!   snapshot+tail), and mixed read/write rows present plus the 1M
//!   single-shot recovery `scale` row, positive append and mixed
//!   read/write throughput, positive recovery times, and the run's
//!   recovered-equals-live verification flag (`recovered_equal`) true.
//!
//! Harness rows must carry at least [`MIN_SAMPLES`] samples unless
//! they are explicitly marked `"scale": true` — a single-observation
//! statistic is either an intentional scale run or a truncated write,
//! and the marker is how a document says which.
//!
//! Checks are pure functions over the document text so the negative
//! cases (corrupted JSON, missing keys, broken invariants) are unit
//! tested right here in the repro harness.

use std::fmt;

use crate::harness::MIN_SAMPLES;
use mirage_telemetry::json::Value;

/// Which committed benchmark document a text claims to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchKind {
    /// `BENCH_clustering.json` (suite `clustering-perf`).
    Clustering,
    /// `BENCH_sim.json` (suite `sim-perf`).
    Sim,
    /// `BENCH_faults.json` (suite `fault-sweep`).
    Faults,
    /// `BENCH_sweep.json` (suite `sim-sweep`).
    Sweep,
    /// `BENCH_urr.json` (suite `urr-perf`).
    Urr,
    /// `BENCH_trace.json` (suite `trace-overhead`).
    Trace,
    /// `BENCH_drift.json` (suite `drift-perf`).
    Drift,
    /// `BENCH_rollback.json` (suite `rollback-sweep`).
    Rollback,
    /// `BENCH_storage.json` (suite `urr-store-perf`).
    Storage,
}

impl BenchKind {
    /// Every kind with its committed file name.
    pub const ALL: [(BenchKind, &'static str); 9] = [
        (BenchKind::Clustering, "BENCH_clustering.json"),
        (BenchKind::Sim, "BENCH_sim.json"),
        (BenchKind::Faults, "BENCH_faults.json"),
        (BenchKind::Sweep, "BENCH_sweep.json"),
        (BenchKind::Urr, "BENCH_urr.json"),
        (BenchKind::Trace, "BENCH_trace.json"),
        (BenchKind::Drift, "BENCH_drift.json"),
        (BenchKind::Rollback, "BENCH_rollback.json"),
        (BenchKind::Storage, "BENCH_storage.json"),
    ];

    /// The `suite` value the document must carry.
    pub fn suite(self) -> &'static str {
        match self {
            BenchKind::Clustering => "clustering-perf",
            BenchKind::Sim => "sim-perf",
            BenchKind::Faults => "fault-sweep",
            BenchKind::Sweep => "sim-sweep",
            BenchKind::Urr => "urr-perf",
            BenchKind::Trace => "trace-overhead",
            BenchKind::Drift => "drift-perf",
            BenchKind::Rollback => "rollback-sweep",
            BenchKind::Storage => "urr-store-perf",
        }
    }
}

/// Why a benchmark document failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateError(pub String);

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

fn fail(msg: impl Into<String>) -> GateError {
    GateError(msg.into())
}

fn num(v: &Value, key: &str) -> Result<f64, GateError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| fail(format!("missing or non-numeric field '{key}'")))
}

fn string(v: &Value, key: &str) -> Result<String, GateError> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| fail(format!("missing or non-string field '{key}'")))
}

fn boolean(v: &Value, key: &str) -> Result<bool, GateError> {
    match v.get(key) {
        Some(Value::Bool(b)) => Ok(*b),
        _ => Err(fail(format!("missing or non-boolean field '{key}'"))),
    }
}

fn results(doc: &Value) -> Result<&[Value], GateError> {
    let rows = doc
        .get("results")
        .and_then(Value::as_array)
        .ok_or_else(|| fail("missing 'results' array"))?;
    if rows.is_empty() {
        return Err(fail("'results' array is empty"));
    }
    Ok(rows)
}

/// Validates one harness-style result row (the shape every `*-perf`
/// suite emits).
fn check_harness_row(row: &Value) -> Result<(), GateError> {
    let name = string(row, "name")?;
    for key in ["samples", "min_ns", "p50_ns", "mean_ns", "max_ns"] {
        let v = num(row, key).map_err(|e| fail(format!("row '{name}': {e}")))?;
        if v < 0.0 {
            return Err(fail(format!("row '{name}': '{key}' is negative")));
        }
    }
    let min = num(row, "min_ns")?;
    let max = num(row, "max_ns")?;
    if min > max {
        return Err(fail(format!("row '{name}': min_ns > max_ns")));
    }
    let samples = num(row, "samples")?;
    if samples < 1.0 {
        return Err(fail(format!("row '{name}': no samples")));
    }
    // Single-observation statistics are only acceptable when the row
    // explicitly says so: `"scale": true` marks an intentional
    // single-shot scale run; anything else under the floor is a
    // truncated or degenerate measurement.
    let scale = matches!(row.get("scale"), Some(Value::Bool(true)));
    if !scale && samples < MIN_SAMPLES as f64 {
        return Err(fail(format!(
            "row '{name}': {samples} sample(s); non-scale rows need at least {MIN_SAMPLES} \
             (mark intentional single-shots with \"scale\": true)"
        )));
    }
    Ok(())
}

/// Parses `text` and checks it is a well-formed, invariant-satisfying
/// document of `kind`. Returns the human-readable check lines on
/// success.
pub fn check(kind: BenchKind, text: &str) -> Result<Vec<String>, GateError> {
    let doc = Value::parse(text).map_err(|e| fail(format!("invalid JSON: {e}")))?;
    if string(&doc, "suite")? != kind.suite() {
        return Err(fail(format!(
            "wrong suite: expected '{}', found '{}'",
            kind.suite(),
            string(&doc, "suite")?
        )));
    }
    let mut notes = vec![format!("suite '{}' present", kind.suite())];
    match kind {
        BenchKind::Clustering => {
            let rows = results(&doc)?;
            for row in rows {
                check_harness_row(row)?;
            }
            notes.push(format!("{} harness rows well-formed", rows.len()));
            let speedup = num(&doc, "dense_200_speedup_vs_reference")?;
            if speedup < 1.0 {
                return Err(fail(format!(
                    "dense-200 speedup vs reference regressed below 1.0 ({speedup})"
                )));
            }
            notes.push(format!("dense-200 speedup vs reference: {speedup:.2}x"));
        }
        BenchKind::Sim => {
            let rows = results(&doc)?;
            for row in rows {
                check_harness_row(row)?;
            }
            notes.push(format!("{} harness rows well-formed", rows.len()));
            let speedups = doc
                .get("speedup_100k_vs_reference")
                .ok_or_else(|| fail("missing 'speedup_100k_vs_reference'"))?;
            for protocol in ["NoStaging", "Balanced", "FrontLoading"] {
                let s = num(speedups, protocol)?;
                if s < 1.0 {
                    return Err(fail(format!(
                        "{protocol}: 100k speedup vs reference regressed below 1.0 ({s})"
                    )));
                }
                notes.push(format!("{protocol} 100k speedup: {s:.2}x"));
            }
            if !boolean(&doc, "balanced_1m_under_10s")? {
                return Err(fail("balanced_1m_under_10s is false"));
            }
            notes.push(format!(
                "1M Balanced run: {:.3} s (< 10 s)",
                num(&doc, "balanced_1m_seconds")?
            ));
            // Parallel-driver rows: the w1/w8 pair the headline speedup
            // is computed from must exist, and the 1M speedup must stay
            // above its regression floor. The floor is deliberately
            // below the committed figure (~1.7x, measured run-only on a
            // single-core host where the gain is purely algorithmic —
            // batched pass absorption, placement merge) so runner noise
            // cannot flake the gate while a real regression toward 1.0x
            // still fails loudly.
            for required in ["sim/1m/parallel/w1/Balanced", "sim/1m/parallel/w8/Balanced"] {
                if !rows
                    .iter()
                    .any(|r| r.get("name").and_then(Value::as_str) == Some(required))
                {
                    return Err(fail(format!("missing harness row '{required}'")));
                }
            }
            let par = num(&doc, "parallel_speedup_1m_w8_vs_w1")?;
            if par < 1.25 {
                return Err(fail(format!(
                    "1M parallel w8-vs-w1 speedup regressed below the 1.25x floor ({par})"
                )));
            }
            notes.push(format!("1M parallel w8 vs w1 speedup: {par:.2}x"));
            if !boolean(&doc, "balanced_10m_under_10s")? {
                return Err(fail("balanced_10m_under_10s is false"));
            }
            notes.push(format!(
                "10M Balanced parallel run: {:.3} s (< 10 s)",
                num(&doc, "balanced_10m_seconds")?
            ));
        }
        BenchKind::Faults => {
            let rows = results(&doc)?;
            for row in rows {
                let protocol = string(row, "protocol")?;
                let loss = num(row, "loss_pct")?;
                for key in [
                    "failed_tests",
                    "msgs_dropped",
                    "retries_sent",
                    "rep_timeouts",
                ] {
                    num(row, key).map_err(|e| fail(format!("{protocol}@{loss}%: {e}")))?;
                }
                if !boolean(row, "converged")? {
                    return Err(fail(format!("{protocol} did not converge at loss {loss}%")));
                }
            }
            notes.push(format!("{} sweep rows, 100% convergence", rows.len()));
            if !boolean(&doc, "all_converged")? {
                return Err(fail("all_converged is false"));
            }
            notes.push("all_converged agrees with the rows".to_string());
        }
        BenchKind::Sweep => {
            let rows = results(&doc)?;
            let workers = num(&doc, "workers")?;
            if workers < 1.0 {
                return Err(fail("sweep ran with no workers"));
            }
            for row in rows {
                let protocol = string(row, "protocol")?;
                let threshold = num(row, "threshold")?;
                let loss = num(row, "loss_pct")?;
                for key in ["failed_tests", "escaped", "wall_ms"] {
                    num(row, key)
                        .map_err(|e| fail(format!("{protocol}@thr{threshold}/{loss}%: {e}")))?;
                }
                if !boolean(row, "converged")? {
                    return Err(fail(format!(
                        "{protocol} did not converge at threshold {threshold}, loss {loss}%"
                    )));
                }
            }
            notes.push(format!(
                "{} grid cells ({workers} workers), 100% convergence",
                rows.len()
            ));
            if !boolean(&doc, "all_converged")? {
                return Err(fail("all_converged is false"));
            }
            notes.push("all_converged agrees with the cells".to_string());
        }
        BenchKind::Urr => {
            let rows = results(&doc)?;
            for row in rows {
                check_harness_row(row)?;
            }
            notes.push(format!("{} harness rows well-formed", rows.len()));
            let speedup = num(&doc, "ingest_speedup_100k_vs_reference")?;
            if speedup < 1.0 {
                return Err(fail(format!(
                    "sharded ingest speedup vs reference regressed below 1.0 ({speedup})"
                )));
            }
            notes.push(format!(
                "sharded ingest speedup vs reference: {speedup:.2}x"
            ));
            let query = doc
                .get("query")
                .ok_or_else(|| fail("missing 'query' latency object"))?;
            for q in [
                "top_k",
                "failure_groups",
                "cluster_rates",
                "first_seen_window",
            ] {
                let p50 = num(query, &format!("{q}_p50_ns"))?;
                let p99 = num(query, &format!("{q}_p99_ns"))?;
                if p50 > p99 {
                    return Err(fail(format!("query '{q}': p50 > p99")));
                }
            }
            notes.push("query p50/p99 pairs present and ordered".to_string());
        }
        BenchKind::Trace => {
            let rows = results(&doc)?;
            for row in rows {
                check_harness_row(row)?;
            }
            for required in ["trace/plain-run", "trace/journaled-run"] {
                if !rows
                    .iter()
                    .any(|r| r.get("name").and_then(Value::as_str) == Some(required))
                {
                    return Err(fail(format!("missing harness row '{required}'")));
                }
            }
            notes.push(format!("{} harness rows well-formed", rows.len()));
            let overhead = num(&doc, "overhead_pct")?;
            if !boolean(&doc, "smoke")? {
                if overhead >= 15.0 {
                    return Err(fail(format!(
                        "journaling overhead {overhead}% breaches the 15% acceptance budget"
                    )));
                }
                notes.push(format!("journaling overhead {overhead}% (< 15%)"));
            }
            if num(&doc, "journal_dropped")? != 0.0 {
                return Err(fail("journal dropped entries (spill should retain all)"));
            }
            if num(&doc, "journal_total")? < 1.0 {
                return Err(fail("journal recorded no entries"));
            }
            if num(&doc, "trace_events")? < 1.0 {
                return Err(fail("exported trace has no events"));
            }
            let sample = doc
                .get("trace_sample")
                .and_then(Value::as_array)
                .ok_or_else(|| fail("missing 'trace_sample' array"))?;
            if sample.is_empty() {
                return Err(fail("'trace_sample' array is empty"));
            }
            for (i, ev) in sample.iter().enumerate() {
                let name =
                    string(ev, "name").map_err(|e| fail(format!("trace_sample[{i}]: {e}")))?;
                let ph = string(ev, "ph").map_err(|e| fail(format!("trace_sample[{i}]: {e}")))?;
                // The phases the exporter emits: metadata, async
                // begin/end, complete slices, and instants.
                if !["M", "b", "e", "X", "i"].contains(&ph.as_str()) {
                    return Err(fail(format!(
                        "trace_sample[{i}] ('{name}'): unknown trace_event phase '{ph}'"
                    )));
                }
                for key in ["pid", "tid"] {
                    num(ev, key).map_err(|e| fail(format!("trace_sample[{i}] ('{name}'): {e}")))?;
                }
                // Every non-metadata record is a timeline record and
                // needs a timestamp.
                if ph != "M" {
                    num(ev, "ts")
                        .map_err(|e| fail(format!("trace_sample[{i}] ('{name}'): {e}")))?;
                }
            }
            notes.push(format!(
                "{} sampled trace_event records schema-valid",
                sample.len()
            ));
        }
        BenchKind::Drift => {
            let rows = results(&doc)?;
            for row in rows {
                check_harness_row(row)?;
            }
            for required in [
                "drift/100k/batch-engine",
                "drift/100k/reference-loop",
                "drift/1m/batch-engine",
            ] {
                if !rows
                    .iter()
                    .any(|r| r.get("name").and_then(Value::as_str) == Some(required))
                {
                    return Err(fail(format!("missing harness row '{required}'")));
                }
            }
            notes.push(format!("{} harness rows well-formed", rows.len()));
            // The committed document must come from a full run: smoke
            // fleets are far too small for the speedup claim to mean
            // anything.
            if boolean(&doc, "smoke")? {
                return Err(fail(
                    "committed drift document is a --smoke run; commit a full run",
                ));
            }
            let speedup = num(&doc, "speedup_100k_vs_reference")?;
            if speedup < 5.0 {
                return Err(fail(format!(
                    "100k batch-engine speedup vs reference loop below the 5x floor ({speedup})"
                )));
            }
            notes.push(format!("100k batch vs reference speedup: {speedup:.2}x"));
            let p50 = num(&doc, "recluster_p50_ns")?;
            let p99 = num(&doc, "recluster_p99_ns")?;
            if p50 > p99 {
                return Err(fail("re-cluster-after-drift latency: p50 > p99"));
            }
            notes.push(format!(
                "re-cluster-after-drift p50/p99 present and ordered ({p50:.0}/{p99:.0} ns)"
            ));
            let moves = num(&doc, "moves_per_sec")?;
            if moves <= 0.0 {
                return Err(fail("sustained moves/s is not positive"));
            }
            notes.push(format!("sustained {moves:.0} moves/s"));
            // The run cross-checks the engine's published drift
            // counters against the reference plane's; a mismatch means
            // the measured workloads were not equivalent.
            if !boolean(&doc, "drift_counters_match")? {
                return Err(fail(
                    "drift_counters_match is false: measured planes diverged",
                ));
            }
            notes.push("drift counters verified equal across planes".to_string());
        }
        BenchKind::Rollback => {
            let rows = results(&doc)?;
            let mut bad_canary = 0usize;
            for row in rows {
                let strategy = string(row, "strategy")?;
                let loss = num(row, "loss_pct")?;
                let release = string(row, "release")?;
                let label = format!("{strategy}/{release}@{loss}%");
                if release != "good" && release != "bad" {
                    return Err(fail(format!("{label}: unknown release kind '{release}'")));
                }
                let machines = num(row, "machines").map_err(|e| fail(format!("{label}: {e}")))?;
                if machines < 1.0 {
                    return Err(fail(format!("{label}: empty fleet")));
                }
                let exposed = num(row, "exposed").map_err(|e| fail(format!("{label}: {e}")))?;
                let limit =
                    num(row, "exposure_limit").map_err(|e| fail(format!("{label}: {e}")))?;
                let converged =
                    boolean(row, "converged").map_err(|e| fail(format!("{label}: {e}")))?;
                let rolled_back =
                    boolean(row, "rolled_back").map_err(|e| fail(format!("{label}: {e}")))?;
                if release == "good" {
                    if rolled_back {
                        return Err(fail(format!(
                            "{label}: the guard aborted a good release (false positive)"
                        )));
                    }
                    if !converged {
                        return Err(fail(format!("{label}: good release did not converge")));
                    }
                } else {
                    if strategy == "canary" {
                        bad_canary += 1;
                        if !rolled_back {
                            return Err(fail(format!(
                                "{label}: a guarded canary must abort a bad release"
                            )));
                        }
                    }
                    if rolled_back {
                        if exposed > limit {
                            return Err(fail(format!(
                                "{label}: rollback exposed {exposed} machines, over the \
                                 {limit} first-cohort limit"
                            )));
                        }
                    } else if !converged {
                        return Err(fail(format!(
                            "{label}: bad release neither rolled back nor converged"
                        )));
                    }
                }
            }
            if bad_canary == 0 {
                return Err(fail(
                    "no bad-release canary rows: the headline containment claim is untested",
                ));
            }
            notes.push(format!(
                "{} sweep rows; {bad_canary} bad canary rows all aborted within the cohort limit",
                rows.len()
            ));
            if !boolean(&doc, "all_good_converged")? {
                return Err(fail("all_good_converged is false"));
            }
            if !boolean(&doc, "all_bad_contained")? {
                return Err(fail("all_bad_contained is false"));
            }
            notes.push("all_good_converged / all_bad_contained agree with the rows".to_string());
        }
        BenchKind::Storage => {
            let rows = results(&doc)?;
            for row in rows {
                check_harness_row(row)?;
            }
            for required in [
                "storage/wal/append-memory-100k",
                "storage/wal/append-fs-100k",
                "storage/recover/wal-100k",
                "storage/recover/snapshot-100k",
                "storage/serve/mixed-read-write-100k",
            ] {
                if !rows
                    .iter()
                    .any(|r| r.get("name").and_then(Value::as_str) == Some(required))
                {
                    return Err(fail(format!("missing harness row '{required}'")));
                }
            }
            // The 1M recovery measurement is a deliberate single-shot;
            // it must both exist and carry the scale marker.
            let scale_row = rows
                .iter()
                .find(|r| {
                    r.get("name").and_then(Value::as_str) == Some("storage/recover/snapshot-1m")
                })
                .ok_or_else(|| fail("missing harness row 'storage/recover/snapshot-1m'"))?;
            if !matches!(scale_row.get("scale"), Some(Value::Bool(true))) {
                return Err(fail(
                    "'storage/recover/snapshot-1m' is not marked \"scale\": true",
                ));
            }
            notes.push(format!(
                "{} harness rows well-formed incl. the 1M single-shot recovery row",
                rows.len()
            ));
            // Smoke volumes are far too small for the pinned recovery
            // and throughput numbers to mean anything.
            if boolean(&doc, "smoke")? {
                return Err(fail(
                    "committed storage document is a --smoke run; commit a full run",
                ));
            }
            // The run replays its own journal and compares every query
            // surface of the recovered repository against the live one;
            // a false flag means the WAL+snapshot path lost data.
            if !boolean(&doc, "recovered_equal")? {
                return Err(fail(
                    "recovered_equal is false: recovery diverged from the live repository",
                ));
            }
            notes
                .push("recovered repository verified equal to live across all queries".to_string());
            for key in [
                "wal_append_memory_100k_reports_per_sec",
                "wal_append_fs_100k_reports_per_sec",
                "mixed_reads_per_sec",
                "mixed_writes_per_sec",
            ] {
                let v = num(&doc, key)?;
                if v <= 0.0 {
                    return Err(fail(format!("'{key}' is not positive ({v})")));
                }
            }
            notes.push(format!(
                "append {:.0}/s mem, {:.0}/s fs; mixed {:.0} reads/s against {:.0} writes/s",
                num(&doc, "wal_append_memory_100k_reports_per_sec")?,
                num(&doc, "wal_append_fs_100k_reports_per_sec")?,
                num(&doc, "mixed_reads_per_sec")?,
                num(&doc, "mixed_writes_per_sec")?,
            ));
            for key in [
                "recovery_wal_100k_ms",
                "recovery_snapshot_100k_ms",
                "recovery_snapshot_1m_ms",
            ] {
                let v = num(&doc, key)?;
                if v <= 0.0 {
                    return Err(fail(format!("'{key}' is not positive ({v})")));
                }
            }
            notes.push(format!(
                "recovery {:.1} ms (WAL 100k), {:.1} ms (snapshot 100k), {:.1} ms (snapshot 1M)",
                num(&doc, "recovery_wal_100k_ms")?,
                num(&doc, "recovery_snapshot_100k_ms")?,
                num(&doc, "recovery_snapshot_1m_ms")?,
            ));
        }
    }
    Ok(notes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness_row(name: &str) -> String {
        format!(
            "{{\"name\": \"{name}\", \"samples\": 5, \"min_ns\": 100, \
             \"p50_ns\": 120, \"mean_ns\": 130, \"max_ns\": 200}}"
        )
    }

    fn scale_row(name: &str) -> String {
        format!(
            "{{\"name\": \"{name}\", \"samples\": 1, \"min_ns\": 100, \
             \"p50_ns\": 100, \"mean_ns\": 100, \"max_ns\": 100, \"scale\": true}}"
        )
    }

    fn sim_doc(par_speedup: f64) -> String {
        format!(
            "{{\"suite\": \"sim-perf\", \"results\": [{}, {}, {}, {}], \
             \"speedup_100k_vs_reference\": {{\"NoStaging\": 7.2, \"Balanced\": 9.1, \
             \"FrontLoading\": 10.7}}, \"balanced_1m_seconds\": 0.26, \
             \"balanced_1m_under_10s\": true, \
             \"parallel_speedup_100k_w8_vs_w1\": 1.5, \
             \"parallel_speedup_1m_w8_vs_w1\": {par_speedup}, \
             \"balanced_10m_seconds\": 4.2, \"balanced_10m_under_10s\": true}}",
            harness_row("sim/100k/interned/Balanced"),
            harness_row("sim/1m/parallel/w1/Balanced"),
            harness_row("sim/1m/parallel/w8/Balanced"),
            scale_row("sim/10m/parallel/w8/Balanced"),
        )
    }

    fn sweep_doc(converged: bool) -> String {
        format!(
            "{{\"suite\": \"sim-sweep\", \"smoke\": false, \"workers\": 8, \"results\": [\
             {{\"protocol\": \"Balanced\", \"threshold\": 0.9, \"loss_pct\": 20, \
             \"converged\": {converged}, \"completion_time\": 16273, \"failed_tests\": 5, \
             \"escaped\": 0, \"wall_ms\": 39.8}}], \"all_converged\": {converged}}}"
        )
    }

    fn urr_doc(speedup: f64) -> String {
        format!(
            "{{\"suite\": \"urr-perf\", \"results\": [{}],\n\
             \"ingest_speedup_100k_vs_reference\": {speedup},\n\
             \"query\": {{\"top_k_p50_ns\": 1, \"top_k_p99_ns\": 2,\n\
             \"failure_groups_p50_ns\": 1, \"failure_groups_p99_ns\": 2,\n\
             \"cluster_rates_p50_ns\": 1, \"cluster_rates_p99_ns\": 2,\n\
             \"first_seen_window_p50_ns\": 1, \"first_seen_window_p99_ns\": 2}}}}",
            harness_row("urr/ingest/sharded-100k")
        )
    }

    #[test]
    fn valid_documents_pass() {
        let clustering = format!(
            "{{\"suite\": \"clustering-perf\", \"results\": [{}], \
             \"dense_200_speedup_vs_reference\": 11.6}}",
            harness_row("clustering/scaling/dense-200")
        );
        assert!(check(BenchKind::Clustering, &clustering).is_ok());

        let notes = check(BenchKind::Sim, &sim_doc(1.7)).unwrap();
        assert!(
            notes.iter().any(|n| n.contains("parallel w8 vs w1")),
            "{notes:?}"
        );

        let faults = "{\"suite\": \"fault-sweep\", \"results\": [\
             {\"protocol\": \"Balanced\", \"loss_pct\": 30, \"converged\": true, \
             \"completion_time\": 100, \"failed_tests\": 3, \"msgs_dropped\": 5, \
             \"retries_sent\": 4, \"rep_timeouts\": 0}], \"all_converged\": true}";
        assert!(check(BenchKind::Faults, faults).is_ok());

        assert!(check(BenchKind::Sweep, &sweep_doc(true)).is_ok());

        assert!(check(BenchKind::Urr, &urr_doc(6.4)).is_ok());
    }

    #[test]
    fn sample_floor_enforced_unless_scale_marked() {
        // Two samples and no marker: a truncated measurement.
        let two_samples = "{\"suite\": \"clustering-perf\", \"results\": [\
             {\"name\": \"r\", \"samples\": 2, \"min_ns\": 100, \"p50_ns\": 120, \
             \"mean_ns\": 130, \"max_ns\": 200}], \
             \"dense_200_speedup_vs_reference\": 2.0}";
        let err = check(BenchKind::Clustering, two_samples).unwrap_err();
        assert!(err.to_string().contains("\"scale\": true"), "{err}");

        // The same row explicitly marked as a scale run passes.
        let marked = two_samples.replace("\"samples\": 2", "\"samples\": 2, \"scale\": true");
        assert!(check(BenchKind::Clustering, &marked).is_ok());

        // `"scale": false` is not a marker.
        let unmarked = two_samples.replace("\"samples\": 2", "\"samples\": 2, \"scale\": false");
        assert!(check(BenchKind::Clustering, &unmarked).is_err());
    }

    #[test]
    fn parallel_speedup_floor_enforced() {
        let err = check(BenchKind::Sim, &sim_doc(1.1)).unwrap_err();
        assert!(err.to_string().contains("1.25x floor"), "{err}");

        // The w1/w8 pair must be present for the headline to mean
        // anything.
        let missing = sim_doc(1.7).replace("sim/1m/parallel/w8/Balanced", "sim/1m/other");
        let err = check(BenchKind::Sim, &missing).unwrap_err();
        assert!(err.to_string().contains("w8"), "{err}");

        // The 10M budget flag is load-bearing.
        let slow10m = sim_doc(1.7).replace(
            "\"balanced_10m_under_10s\": true",
            "\"balanced_10m_under_10s\": false",
        );
        let err = check(BenchKind::Sim, &slow10m).unwrap_err();
        assert!(err.to_string().contains("balanced_10m_under_10s"), "{err}");
    }

    #[test]
    fn sweep_non_convergence_fails() {
        let err = check(BenchKind::Sweep, &sweep_doc(false)).unwrap_err();
        assert!(err.to_string().contains("did not converge"), "{err}");

        // Flag flipped while the rows still say converged.
        let flag_only =
            sweep_doc(true).replace("\"all_converged\": true", "\"all_converged\": false");
        assert!(check(BenchKind::Sweep, &flag_only).is_err());
    }

    #[test]
    fn corrupted_json_fails() {
        // Truncated write — the exact failure mode the gate exists for.
        let truncated = &urr_doc(6.4)[..40];
        let err = check(BenchKind::Urr, truncated).unwrap_err();
        assert!(err.to_string().contains("invalid JSON"), "{err}");
    }

    #[test]
    fn wrong_suite_fails() {
        let err = check(BenchKind::Sim, &urr_doc(6.4)).unwrap_err();
        assert!(err.to_string().contains("wrong suite"), "{err}");
    }

    #[test]
    fn missing_keys_fail() {
        let no_results = "{\"suite\": \"urr-perf\"}";
        assert!(check(BenchKind::Urr, no_results).is_err());
        let empty_results = "{\"suite\": \"urr-perf\", \"results\": []}";
        assert!(check(BenchKind::Urr, empty_results).is_err());
        let bad_row = "{\"suite\": \"clustering-perf\", \"results\": [{\"name\": \"x\"}], \
             \"dense_200_speedup_vs_reference\": 2.0}";
        let err = check(BenchKind::Clustering, bad_row).unwrap_err();
        assert!(err.to_string().contains("row 'x'"), "{err}");
    }

    #[test]
    fn hand_mangled_invariants_fail() {
        // Speedup edited below 1.0.
        let err = check(BenchKind::Urr, &urr_doc(0.4)).unwrap_err();
        assert!(err.to_string().contains("below 1.0"), "{err}");

        // A non-converged sweep row.
        let faults = "{\"suite\": \"fault-sweep\", \"results\": [\
             {\"protocol\": \"Balanced\", \"loss_pct\": 30, \"converged\": false, \
             \"completion_time\": null, \"failed_tests\": 3, \"msgs_dropped\": 5, \
             \"retries_sent\": 4, \"rep_timeouts\": 0}], \"all_converged\": true}";
        let err = check(BenchKind::Faults, faults).unwrap_err();
        assert!(err.to_string().contains("did not converge"), "{err}");

        // all_converged flag flipped while rows still say true.
        let faults = "{\"suite\": \"fault-sweep\", \"results\": [\
             {\"protocol\": \"Balanced\", \"loss_pct\": 0, \"converged\": true, \
             \"completion_time\": 1, \"failed_tests\": 0, \"msgs_dropped\": 0, \
             \"retries_sent\": 0, \"rep_timeouts\": 0}], \"all_converged\": false}";
        assert!(check(BenchKind::Faults, faults).is_err());

        // min > max in a harness row.
        let sim = "{\"suite\": \"sim-perf\", \"results\": [\
             {\"name\": \"r\", \"samples\": 3, \"min_ns\": 500, \"p50_ns\": 120, \
             \"mean_ns\": 130, \"max_ns\": 200}], \
             \"speedup_100k_vs_reference\": {\"NoStaging\": 2.0, \"Balanced\": 2.0, \
             \"FrontLoading\": 2.0}, \"balanced_1m_seconds\": 0.3, \
             \"balanced_1m_under_10s\": true}";
        let err = check(BenchKind::Sim, sim).unwrap_err();
        assert!(err.to_string().contains("min_ns > max_ns"), "{err}");
    }

    fn trace_doc(overhead: f64, smoke: bool, dropped: u64, ph: &str) -> String {
        format!(
            "{{\"suite\": \"trace-overhead\", \"smoke\": {smoke}, \"machines\": 1000,\n\
             \"results\": [{}, {}],\n\
             \"overhead_pct\": {overhead}, \"journal_total\": 3000,\n\
             \"journal_dropped\": {dropped}, \"trace_events\": 10,\n\
             \"trace_sample\": [\
             {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 0}},\
             {{\"name\": \"stage 0\", \"ph\": \"{ph}\", \"id\": 0, \"ts\": 0, \
             \"pid\": 1, \"tid\": 0}}]}}",
            harness_row("trace/plain-run"),
            harness_row("trace/journaled-run"),
        )
    }

    #[test]
    fn valid_trace_document_passes() {
        let notes = check(BenchKind::Trace, &trace_doc(9.1, false, 0, "b")).unwrap();
        assert!(notes.iter().any(|n| n.contains("overhead")), "{notes:?}");
        // Smoke documents skip the overhead budget (debug builds are
        // noise-dominated) but still get the schema checks.
        assert!(check(BenchKind::Trace, &trace_doc(80.0, true, 0, "b")).is_ok());
    }

    #[test]
    fn trace_invariant_breaches_fail() {
        // Overhead over the acceptance budget on a full-fleet document.
        let err = check(BenchKind::Trace, &trace_doc(15.0, false, 0, "b")).unwrap_err();
        assert!(err.to_string().contains("15% acceptance budget"), "{err}");

        // Dropped journal entries: the spill was mis-configured.
        let err = check(BenchKind::Trace, &trace_doc(9.1, false, 7, "b")).unwrap_err();
        assert!(err.to_string().contains("dropped"), "{err}");

        // Unknown trace_event phase in the sampled export.
        let err = check(BenchKind::Trace, &trace_doc(9.1, false, 0, "Q")).unwrap_err();
        assert!(
            err.to_string().contains("unknown trace_event phase"),
            "{err}"
        );

        // A timeline record without a timestamp.
        let no_ts = trace_doc(9.1, false, 0, "b").replace("\"ts\": 0, ", "");
        let err = check(BenchKind::Trace, &no_ts).unwrap_err();
        assert!(err.to_string().contains("'ts'"), "{err}");

        // A required harness row is missing.
        let doc = format!(
            "{{\"suite\": \"trace-overhead\", \"smoke\": false, \
             \"results\": [{}], \"overhead_pct\": 9.1, \"journal_total\": 1, \
             \"journal_dropped\": 0, \"trace_events\": 1, \"trace_sample\": []}}",
            harness_row("trace/plain-run")
        );
        let err = check(BenchKind::Trace, &doc).unwrap_err();
        assert!(err.to_string().contains("trace/journaled-run"), "{err}");
    }

    fn drift_doc(speedup: f64, smoke: bool, p50: u64, p99: u64, counters_match: bool) -> String {
        format!(
            "{{\"suite\": \"drift-perf\", \"smoke\": {smoke}, \"machines\": 100000,\n\
             \"results\": [{}, {}, {}],\n\
             \"speedup_100k_vs_reference\": {speedup},\n\
             \"recluster_p50_ns\": {p50}, \"recluster_p99_ns\": {p99},\n\
             \"moves_per_sec\": 51234.0, \"drift_counters_match\": {counters_match}}}",
            harness_row("drift/100k/batch-engine"),
            harness_row("drift/100k/reference-loop"),
            scale_row("drift/1m/batch-engine"),
        )
    }

    #[test]
    fn valid_drift_document_passes() {
        let notes = check(BenchKind::Drift, &drift_doc(8.4, false, 900, 4200, true)).unwrap();
        assert!(notes.iter().any(|n| n.contains("speedup")), "{notes:?}");
        assert!(notes.iter().any(|n| n.contains("moves/s")), "{notes:?}");
    }

    #[test]
    fn drift_invariant_breaches_fail() {
        // Speedup below the 5x acceptance floor.
        let err = check(BenchKind::Drift, &drift_doc(3.2, false, 900, 4200, true)).unwrap_err();
        assert!(err.to_string().contains("5x floor"), "{err}");

        // A committed smoke run is not an acceptable headline document.
        let err = check(BenchKind::Drift, &drift_doc(8.4, true, 900, 4200, true)).unwrap_err();
        assert!(err.to_string().contains("--smoke"), "{err}");

        // Latency percentiles out of order.
        let err = check(BenchKind::Drift, &drift_doc(8.4, false, 4200, 900, true)).unwrap_err();
        assert!(err.to_string().contains("p50 > p99"), "{err}");

        // The run's cross-plane counter check failed.
        let err = check(BenchKind::Drift, &drift_doc(8.4, false, 900, 4200, false)).unwrap_err();
        assert!(err.to_string().contains("drift_counters_match"), "{err}");

        // The reference pair row is required for the speedup to mean
        // anything.
        let missing =
            drift_doc(8.4, false, 900, 4200, true).replace("drift/100k/reference-loop", "other");
        let err = check(BenchKind::Drift, &missing).unwrap_err();
        assert!(err.to_string().contains("reference-loop"), "{err}");

        // The 1M scale row is part of the committed surface.
        let missing =
            drift_doc(8.4, false, 900, 4200, true).replace("drift/1m/batch-engine", "other");
        let err = check(BenchKind::Drift, &missing).unwrap_err();
        assert!(err.to_string().contains("drift/1m"), "{err}");

        // Zero moves/s means the workload measured nothing.
        let zeroed = drift_doc(8.4, false, 900, 4200, true)
            .replace("\"moves_per_sec\": 51234.0", "\"moves_per_sec\": 0");
        let err = check(BenchKind::Drift, &zeroed).unwrap_err();
        assert!(err.to_string().contains("moves/s"), "{err}");
    }

    fn rollback_doc(good_rolled_back: bool, exposed: u64, contained: bool) -> String {
        format!(
            "{{\"suite\": \"rollback-sweep\", \"smoke\": false, \"machines\": 100000,\n\
             \"results\": [\
             {{\"strategy\": \"canary\", \"loss_pct\": 0, \"release\": \"good\", \
             \"machines\": 100000, \"converged\": true, \"rolled_back\": {good_rolled_back}, \
             \"exposed\": 0, \"exposure_limit\": 1000, \"completion_time\": 61000}},\
             {{\"strategy\": \"canary\", \"loss_pct\": 30, \"release\": \"bad\", \
             \"machines\": 100000, \"converged\": false, \"rolled_back\": true, \
             \"exposed\": {exposed}, \"exposure_limit\": 1000, \"completion_time\": null}},\
             {{\"strategy\": \"staged\", \"loss_pct\": 0, \"release\": \"bad\", \
             \"machines\": 100000, \"converged\": true, \"rolled_back\": false, \
             \"exposed\": 0, \"exposure_limit\": 25000, \"completion_time\": 90000}}],\n\
             \"all_good_converged\": true, \"all_bad_contained\": {contained}}}"
        )
    }

    #[test]
    fn valid_rollback_document_passes() {
        let notes = check(BenchKind::Rollback, &rollback_doc(false, 620, true)).unwrap();
        assert!(notes.iter().any(|n| n.contains("bad canary")), "{notes:?}");
    }

    #[test]
    fn rollback_invariant_breaches_fail() {
        // The guard aborted a good release: a false positive.
        let err = check(BenchKind::Rollback, &rollback_doc(true, 620, true)).unwrap_err();
        assert!(err.to_string().contains("false positive"), "{err}");

        // Exposure over the first-cohort limit: the abort fired after
        // the bad release had already widened.
        let err = check(BenchKind::Rollback, &rollback_doc(false, 1400, true)).unwrap_err();
        assert!(err.to_string().contains("first-cohort limit"), "{err}");

        // Flag flipped while the rows still satisfy containment.
        let err = check(BenchKind::Rollback, &rollback_doc(false, 620, false)).unwrap_err();
        assert!(err.to_string().contains("all_bad_contained"), "{err}");

        // A bad canary that never rolled back.
        let no_abort = rollback_doc(false, 620, true).replace(
            "\"converged\": false, \"rolled_back\": true",
            "\"converged\": false, \"rolled_back\": false",
        );
        let err = check(BenchKind::Rollback, &no_abort).unwrap_err();
        assert!(err.to_string().contains("must abort"), "{err}");

        // A bad staged row that neither rolled back nor converged: the
        // regression escaped and nothing stopped it.
        let escaped = rollback_doc(false, 620, true).replace(
            "\"converged\": true, \"rolled_back\": false, \
             \"exposed\": 0, \"exposure_limit\": 25000",
            "\"converged\": false, \"rolled_back\": false, \
             \"exposed\": 0, \"exposure_limit\": 25000",
        );
        let err = check(BenchKind::Rollback, &escaped).unwrap_err();
        assert!(err.to_string().contains("neither rolled back"), "{err}");

        // Without a bad canary row the headline claim is untested.
        let no_canary = rollback_doc(false, 620, true).replace(
            "\"strategy\": \"canary\", \"loss_pct\": 30",
            "\"strategy\": \"rolling\", \"loss_pct\": 30",
        );
        let err = check(BenchKind::Rollback, &no_canary).unwrap_err();
        assert!(err.to_string().contains("no bad-release canary"), "{err}");

        // Missing row field.
        let no_exposed = rollback_doc(false, 620, true).replace("\"exposed\": 620, ", "");
        let err = check(BenchKind::Rollback, &no_exposed).unwrap_err();
        assert!(err.to_string().contains("'exposed'"), "{err}");
    }

    fn storage_doc(smoke: bool, recovered_equal: bool, fs_rate: f64) -> String {
        format!(
            "{{\"suite\": \"urr-store-perf\", \"smoke\": {smoke}, \"reports\": 100000,\n\
             \"results\": [{}, {}, {}, {}, {}, {}],\n\
             \"wal_append_memory_100k_reports_per_sec\": 2500000.0,\n\
             \"wal_append_fs_100k_reports_per_sec\": {fs_rate},\n\
             \"mixed_reads_per_sec\": 800000.0, \"mixed_writes_per_sec\": 400000.0,\n\
             \"recovery_wal_100k_ms\": 85.0, \"recovery_snapshot_100k_ms\": 12.0,\n\
             \"recovery_snapshot_1m_ms\": 130.0,\n\
             \"recovered_equal\": {recovered_equal}}}",
            harness_row("storage/wal/append-memory-100k"),
            harness_row("storage/wal/append-fs-100k"),
            harness_row("storage/recover/wal-100k"),
            harness_row("storage/recover/snapshot-100k"),
            harness_row("storage/serve/mixed-read-write-100k"),
            scale_row("storage/recover/snapshot-1m"),
        )
    }

    #[test]
    fn valid_storage_document_passes() {
        let notes = check(BenchKind::Storage, &storage_doc(false, true, 600000.0)).unwrap();
        assert!(notes.iter().any(|n| n.contains("recovered")), "{notes:?}");
        assert!(notes.iter().any(|n| n.contains("reads/s")), "{notes:?}");
        assert!(notes.iter().any(|n| n.contains("recovery")), "{notes:?}");
    }

    #[test]
    fn storage_invariant_breaches_fail() {
        // A committed smoke run pins nothing.
        let err = check(BenchKind::Storage, &storage_doc(true, true, 600000.0)).unwrap_err();
        assert!(err.to_string().contains("--smoke"), "{err}");

        // The run's own recovery-equals-live verification failed.
        let err = check(BenchKind::Storage, &storage_doc(false, false, 600000.0)).unwrap_err();
        assert!(err.to_string().contains("recovered_equal"), "{err}");

        // A zero throughput means the workload measured nothing.
        let err = check(BenchKind::Storage, &storage_doc(false, true, 0.0)).unwrap_err();
        assert!(
            err.to_string()
                .contains("wal_append_fs_100k_reports_per_sec"),
            "{err}"
        );

        // Every 100k row is part of the committed surface.
        let missing =
            storage_doc(false, true, 600000.0).replace("storage/recover/snapshot-100k", "other");
        let err = check(BenchKind::Storage, &missing).unwrap_err();
        assert!(err.to_string().contains("snapshot-100k"), "{err}");

        // ... as is the 1M single-shot recovery row.
        let missing =
            storage_doc(false, true, 600000.0).replace("storage/recover/snapshot-1m", "other");
        let err = check(BenchKind::Storage, &missing).unwrap_err();
        assert!(err.to_string().contains("snapshot-1m"), "{err}");

        // The 1M row must carry the scale marker, not sneak a
        // single-sample measurement past the harness floor.
        let unmarked =
            storage_doc(false, true, 600000.0).replace("\"scale\": true", "\"scale\": false");
        let err = check(BenchKind::Storage, &unmarked).unwrap_err();
        assert!(err.to_string().contains("sample"), "{err}");

        // A non-positive recovery time is a clock error, not a result.
        let zeroed = storage_doc(false, true, 600000.0).replace(
            "\"recovery_wal_100k_ms\": 85.0",
            "\"recovery_wal_100k_ms\": 0",
        );
        let err = check(BenchKind::Storage, &zeroed).unwrap_err();
        assert!(err.to_string().contains("recovery_wal_100k_ms"), "{err}");

        // Missing scalar field.
        let gone =
            storage_doc(false, true, 600000.0).replace("\"mixed_reads_per_sec\": 800000.0, ", "");
        let err = check(BenchKind::Storage, &gone).unwrap_err();
        assert!(err.to_string().contains("mixed_reads_per_sec"), "{err}");
    }

    #[test]
    fn kind_metadata() {
        assert_eq!(BenchKind::ALL.len(), 9);
        assert_eq!(BenchKind::Urr.suite(), "urr-perf");
        assert_eq!(BenchKind::Sweep.suite(), "sim-sweep");
        assert_eq!(BenchKind::Trace.suite(), "trace-overhead");
        assert_eq!(BenchKind::Drift.suite(), "drift-perf");
        assert_eq!(BenchKind::Rollback.suite(), "rollback-sweep");
        assert_eq!(BenchKind::Storage.suite(), "urr-store-perf");
        assert_eq!(BenchKind::ALL[0].1, "BENCH_clustering.json");
        assert_eq!(BenchKind::ALL[3].1, "BENCH_sweep.json");
        assert_eq!(BenchKind::ALL[5].1, "BENCH_trace.json");
        assert_eq!(BenchKind::ALL[6].1, "BENCH_drift.json");
        assert_eq!(BenchKind::ALL[7].1, "BENCH_rollback.json");
        assert_eq!(BenchKind::ALL[8].1, "BENCH_storage.json");
    }
}
