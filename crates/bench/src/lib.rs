//! Shared formatting helpers for the reproduction harness and benches.
//!
//! The `repro` binary (see `src/bin/repro.rs`) regenerates every table
//! and figure of the paper's evaluation and prints them in the same
//! row/series structure the paper reports; this library holds the plain
//! text rendering utilities it uses plus the std-only micro-benchmark
//! [`harness`] the `benches/` targets are built on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod benchgate;
pub mod harness;

use mirage_sim::SimTime;

/// Renders a simple aligned ASCII table.
///
/// # Examples
///
/// ```
/// use mirage_bench::render_table;
/// let out = render_table(
///     &["App", "Files"],
///     &[vec!["php".into(), "215".into()]],
/// );
/// assert!(out.contains("php"));
/// assert!(out.contains("Files"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<String>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            line.push_str(&format!("{cell:<w$}  "));
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(
        headers.iter().map(|h| h.to_string()).collect(),
        &widths,
    ));
    out.push('\n');
    out.push_str(
        &"-".repeat(
            widths
                .iter()
                .map(|w| w + 2)
                .sum::<usize>()
                .saturating_sub(2),
        ),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row.clone(), &widths));
        out.push('\n');
    }
    out
}

/// Renders a CDF as a fixed set of sample rows (time → fraction).
///
/// CDFs with many distinct steps are subsampled to at most `max_rows`
/// evenly spaced points, always keeping the first and last.
pub fn render_cdf(points: &[(SimTime, f64)], max_rows: usize) -> Vec<(SimTime, f64)> {
    if points.len() <= max_rows || max_rows < 2 {
        return points.to_vec();
    }
    let mut sampled = Vec::with_capacity(max_rows);
    for i in 0..max_rows {
        let idx = i * (points.len() - 1) / (max_rows - 1);
        sampled.push(points[idx]);
    }
    sampled.dedup();
    sampled
}

/// Renders a horizontal ASCII bar.
pub fn bar(value: usize, scale: usize) -> String {
    let width = (value * 40).checked_div(scale).unwrap_or(0);
    "#".repeat(width.max(usize::from(value > 0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let out = render_table(
            &["a", "long-header"],
            &[
                vec!["xxxx".into(), "1".into()],
                vec!["y".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a     long-header"));
    }

    #[test]
    fn cdf_subsampling_keeps_endpoints() {
        let points: Vec<(SimTime, f64)> = (0..100).map(|i| (i, i as f64 / 100.0)).collect();
        let sampled = render_cdf(&points, 10);
        assert!(sampled.len() <= 10);
        assert_eq!(sampled.first(), Some(&(0, 0.0)));
        assert_eq!(sampled.last(), Some(&(99, 0.99)));
        // Short CDFs pass through untouched.
        assert_eq!(render_cdf(&points[..5], 10), points[..5].to_vec());
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(0, 100), "");
        assert!(!bar(1, 100).is_empty());
        assert!(bar(100, 100).len() >= 40);
    }
}
