//! A minimal, std-only micro-benchmark harness.
//!
//! The bench targets in `benches/` are plain binaries (`harness =
//! false`); each builds a [`Harness`], registers closures with
//! [`Harness::bench`], and prints one aligned result row per benchmark:
//! sample count, min / median / mean times, and optional throughput.
//!
//! Timing uses [`std::time::Instant`] around whole closure invocations.
//! Each benchmark warms up once, then samples until either the
//! per-benchmark wall-time budget is spent or a sample cap is reached,
//! so sub-microsecond and multi-second workloads both finish promptly.
//! Regular benchmarks always take at least three samples, even past
//! the budget, so the committed statistics are never a single
//! observation; workloads too large for that get explicit single-shot
//! rows through [`Harness::bench_scale`], marked `scale` so the
//! bench-check gate can tell the two apart. Set `MIRAGE_BENCH_MS` to
//! grow or shrink the per-benchmark budget.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Summary statistics for one benchmark, all times in nanoseconds.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Benchmark name, e.g. `rabin/chunking/avg-4096`.
    pub name: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample.
    pub min_ns: u64,
    /// Median sample.
    pub p50_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Bytes processed per iteration (for throughput rows).
    pub bytes: Option<u64>,
    /// Single-shot scale row (see [`Harness::bench_scale`]): exactly
    /// one sample by design, exempt from the minimum-sample gate.
    pub scale: bool,
}

impl BenchStats {
    /// Throughput in MiB/s based on the minimum (best) sample.
    pub fn mib_per_sec(&self) -> Option<f64> {
        let bytes = self.bytes? as f64;
        if self.min_ns == 0 {
            return None;
        }
        Some(bytes / (1 << 20) as f64 / (self.min_ns as f64 / 1e9))
    }
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Floor on timed samples for regular benchmarks: statistics from one
/// or two observations are noise, so the budget loop keeps sampling
/// until it has at least this many.
pub const MIN_SAMPLES: usize = 3;

/// A benchmark suite: runs closures and prints aligned result rows.
pub struct Harness {
    target: Duration,
    max_samples: usize,
    results: Vec<BenchStats>,
}

impl Harness {
    /// Creates a suite and prints its header.
    ///
    /// The per-benchmark time budget defaults to 150 ms and can be
    /// overridden with the `MIRAGE_BENCH_MS` environment variable.
    pub fn new(suite: &str) -> Self {
        let ms = std::env::var("MIRAGE_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(150);
        println!("== {suite} (budget {ms} ms/bench) ==");
        println!(
            "{:<44} {:>8} {:>12} {:>12} {:>12}",
            "benchmark", "samples", "min", "median", "mean"
        );
        Harness {
            target: Duration::from_millis(ms),
            max_samples: 1_000,
            results: Vec::new(),
        }
    }

    /// Times `f`, records its statistics, and prints one result row.
    ///
    /// The closure's return value is passed through [`black_box`] so the
    /// optimiser cannot delete the measured work.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) -> &BenchStats {
        self.run(name, None, f)
    }

    /// Like [`Harness::bench`], additionally reporting MiB/s throughput
    /// for a workload that processes `bytes` bytes per iteration.
    pub fn bench_bytes<R>(&mut self, name: &str, bytes: u64, f: impl FnMut() -> R) -> &BenchStats {
        self.run(name, Some(bytes), f)
    }

    /// Times two closures with strictly interleaved samples (A, B, A,
    /// B, …) and records one result row for each.
    ///
    /// Sequential benchmarks silently charge slow drift — turbo-clock
    /// decay, thermal throttling, background load — to whichever
    /// closure runs later, which can dwarf the real difference in a
    /// paired comparison (an overhead measurement, an A/B of two
    /// implementations). Interleaving lands the drift on both sides
    /// equally, so `min(A)` and `min(B)` come from the same
    /// environment. The pair shares a doubled time budget.
    pub fn bench_paired<RA, RB>(
        &mut self,
        name_a: &str,
        name_b: &str,
        mut fa: impl FnMut() -> RA,
        mut fb: impl FnMut() -> RB,
    ) {
        // One untimed warmup each to populate caches and lazy state.
        black_box(fa());
        black_box(fb());
        let started = Instant::now();
        let mut samples_a: Vec<u64> = Vec::new();
        let mut samples_b: Vec<u64> = Vec::new();
        loop {
            let t0 = Instant::now();
            black_box(fa());
            samples_a.push(t0.elapsed().as_nanos() as u64);
            let t0 = Instant::now();
            black_box(fb());
            samples_b.push(t0.elapsed().as_nanos() as u64);
            if (started.elapsed() >= self.target * 2 && samples_a.len() >= MIN_SAMPLES)
                || samples_a.len() >= self.max_samples
            {
                break;
            }
        }
        self.record(name_a, None, false, samples_a);
        self.record(name_b, None, false, samples_b);
    }

    /// Like [`Harness::bench_paired`], but each closure returns the
    /// nanoseconds of its own timed region.
    ///
    /// Use this when per-sample setup must stay out of the statistics —
    /// cloning a large deployment plan, resetting a reusable arena —
    /// on *both* sides of the pair, while samples remain strictly
    /// interleaved. The closures are trusted to time symmetric regions;
    /// an asymmetric exclusion would bias the comparison.
    pub fn bench_paired_ns(
        &mut self,
        name_a: &str,
        name_b: &str,
        mut fa: impl FnMut() -> u64,
        mut fb: impl FnMut() -> u64,
    ) {
        // One untimed warmup each to populate caches and lazy state.
        black_box(fa());
        black_box(fb());
        let started = Instant::now();
        let mut samples_a: Vec<u64> = Vec::new();
        let mut samples_b: Vec<u64> = Vec::new();
        loop {
            samples_a.push(fa());
            samples_b.push(fb());
            if (started.elapsed() >= self.target * 2 && samples_a.len() >= MIN_SAMPLES)
                || samples_a.len() >= self.max_samples
            {
                break;
            }
        }
        self.record(name_a, None, false, samples_a);
        self.record(name_b, None, false, samples_b);
    }

    /// Times `f` exactly once — no warmup, one sample — and records the
    /// row marked as a *scale* run.
    ///
    /// For workloads so large that even [`MIN_SAMPLES`] repetitions are
    /// unaffordable (a 10M-machine simulation), one honest sample beats
    /// none; the `scale` marker tells `bench-check` the single sample
    /// is intentional rather than a truncated run.
    pub fn bench_scale<R>(&mut self, name: &str, mut f: impl FnMut() -> R) -> &BenchStats {
        let t0 = Instant::now();
        black_box(f());
        let sample = t0.elapsed().as_nanos() as u64;
        self.record(name, None, true, vec![sample]);
        self.results.last().expect("just pushed")
    }

    fn run<R>(&mut self, name: &str, bytes: Option<u64>, mut f: impl FnMut() -> R) -> &BenchStats {
        // One untimed warmup to populate caches and lazy state.
        black_box(f());
        let started = Instant::now();
        let mut samples_ns: Vec<u64> = Vec::new();
        // Always take at least one timed sample; keep sampling while
        // budget remains.
        loop {
            let t0 = Instant::now();
            black_box(f());
            samples_ns.push(t0.elapsed().as_nanos() as u64);
            if (started.elapsed() >= self.target && samples_ns.len() >= MIN_SAMPLES)
                || samples_ns.len() >= self.max_samples
            {
                break;
            }
        }
        self.record(name, bytes, false, samples_ns);
        self.results.last().expect("just pushed")
    }

    fn record(&mut self, name: &str, bytes: Option<u64>, scale: bool, mut samples_ns: Vec<u64>) {
        samples_ns.sort_unstable();
        let stats = BenchStats {
            name: name.to_string(),
            samples: samples_ns.len(),
            min_ns: samples_ns[0],
            p50_ns: samples_ns[samples_ns.len() / 2],
            mean_ns: samples_ns.iter().sum::<u64>() as f64 / samples_ns.len() as f64,
            max_ns: *samples_ns.last().expect("non-empty"),
            bytes,
            scale,
        };
        let throughput = stats
            .mib_per_sec()
            .map(|t| format!("  {t:.0} MiB/s"))
            .unwrap_or_default();
        println!(
            "{:<44} {:>8} {:>12} {:>12} {:>12}{throughput}",
            stats.name,
            stats.samples,
            fmt_ns(stats.min_ns as f64),
            fmt_ns(stats.p50_ns as f64),
            fmt_ns(stats.mean_ns),
        );
        self.results.push(stats);
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchStats] {
        &self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_sane_stats() {
        std::env::set_var("MIRAGE_BENCH_MS", "5");
        let mut h = Harness::new("test-suite");
        let mut count = 0u64;
        let stats = h.bench("busy-loop", || {
            count += 1;
            (0..1000u64).sum::<u64>()
        });
        assert!(stats.samples >= MIN_SAMPLES, "{}", stats.samples);
        assert!(!stats.scale);
        assert!(stats.min_ns <= stats.p50_ns);
        assert!(stats.p50_ns <= stats.max_ns);
        assert!(count as usize >= stats.samples);
        assert_eq!(h.results().len(), 1);
        let one_shot = h.bench_scale("one-shot", || (0..1000u64).sum::<u64>());
        assert_eq!(one_shot.samples, 1);
        assert!(one_shot.scale);
        assert_eq!(h.results().len(), 2);
        std::env::remove_var("MIRAGE_BENCH_MS");
    }

    #[test]
    fn paired_ns_records_reported_regions() {
        std::env::set_var("MIRAGE_BENCH_MS", "1");
        let mut h = Harness::new("paired-ns-suite");
        h.bench_paired_ns("a", "b", || 100, || 200);
        let a = &h.results()[0];
        let b = &h.results()[1];
        assert_eq!(a.name, "a");
        assert!(a.samples >= MIN_SAMPLES);
        assert_eq!(a.samples, b.samples, "interleaved pairs sample in lockstep");
        // The recorded statistics are exactly the reported regions, not
        // closure wall time.
        assert_eq!((a.min_ns, a.max_ns), (100, 100));
        assert_eq!((b.min_ns, b.max_ns), (200, 200));
        assert!(!a.scale && !b.scale);
        std::env::remove_var("MIRAGE_BENCH_MS");
    }

    #[test]
    fn throughput_and_formatting() {
        let stats = BenchStats {
            name: "x".into(),
            samples: 1,
            min_ns: 1_000_000, // 1 ms
            p50_ns: 1_000_000,
            mean_ns: 1_000_000.0,
            max_ns: 1_000_000,
            bytes: Some(1 << 20), // 1 MiB in 1 ms = 1000 MiB/s
            scale: false,
        };
        let t = stats.mib_per_sec().unwrap();
        assert!((t - 1000.0).abs() < 1e-6, "{t}");
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
