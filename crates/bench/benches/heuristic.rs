//! Environmental-resource identification cost (paper §4.1, Table 1).
//!
//! Runs the four-part heuristic over the Table 1 application models and
//! isolates the longest-common-prefix computation's scaling in trace
//! count and length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mirage_heuristic::identify::{init_phase_paths, read_only_everywhere};
use mirage_scenarios::apps;
use mirage_trace::{OpenMode, RunId, SyscallEvent, Trace};

fn bench_table1_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic/table1");
    for model in apps::all_models() {
        group.bench_function(model.name, |b| {
            b.iter(|| model.table1_row().false_positives)
        });
    }
    group.finish();
}

fn synthetic_traces(runs: usize, files: usize) -> Vec<Trace> {
    (0..runs)
        .map(|r| {
            let mut t = Trace::new("m", "app", RunId(r as u64));
            for i in 0..files {
                t.push(SyscallEvent::Open {
                    path: format!("/shared/f{i:05}"),
                    mode: OpenMode::ReadOnly,
                });
            }
            // Divergent tail so the LCP has to stop.
            t.push(SyscallEvent::Open {
                path: format!("/data/run{r}"),
                mode: OpenMode::ReadOnly,
            });
            t
        })
        .collect()
}

fn bench_lcp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("heuristic/lcp");
    for &files in &[100usize, 1_000, 10_000] {
        let traces = synthetic_traces(4, files);
        group.bench_with_input(BenchmarkId::new("files", files), &traces, |b, traces| {
            b.iter(|| init_phase_paths(traces).len())
        });
    }
    group.finish();
}

fn bench_readonly_scaling(c: &mut Criterion) {
    let traces = synthetic_traces(8, 2_000);
    c.bench_function("heuristic/read-only-all-traces", |b| {
        b.iter(|| read_only_everywhere(&traces).len())
    });
}

criterion_group!(
    benches,
    bench_table1_models,
    bench_lcp_scaling,
    bench_readonly_scaling
);
criterion_main!(benches);
