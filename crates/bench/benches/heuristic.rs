//! Environmental-resource identification cost (paper §4.1, Table 1).
//!
//! Runs the four-part heuristic over the Table 1 application models and
//! isolates the longest-common-prefix computation's scaling in trace
//! count and length.

use mirage_bench::harness::Harness;
use mirage_heuristic::identify::{init_phase_paths, read_only_everywhere};
use mirage_scenarios::apps;
use mirage_trace::{OpenMode, RunId, SyscallEvent, Trace};

fn synthetic_traces(runs: usize, files: usize) -> Vec<Trace> {
    (0..runs)
        .map(|r| {
            let mut t = Trace::new("m", "app", RunId(r as u64));
            for i in 0..files {
                t.push(SyscallEvent::Open {
                    path: format!("/shared/f{i:05}"),
                    mode: OpenMode::ReadOnly,
                });
            }
            // Divergent tail so the LCP has to stop.
            t.push(SyscallEvent::Open {
                path: format!("/data/run{r}"),
                mode: OpenMode::ReadOnly,
            });
            t
        })
        .collect()
}

fn main() {
    let mut h = Harness::new("heuristic");

    for model in apps::all_models() {
        h.bench(&format!("heuristic/table1/{}", model.name), || {
            model.table1_row().false_positives
        });
    }

    for &files in &[100usize, 1_000, 10_000] {
        let traces = synthetic_traces(4, files);
        h.bench(&format!("heuristic/lcp/files-{files}"), || {
            init_phase_paths(&traces).len()
        });
    }

    let traces = synthetic_traces(8, 2_000);
    h.bench("heuristic/read-only-all-traces", || {
        read_only_everywhere(&traces).len()
    });
}
