//! Sandbox validation throughput (paper §3.3).
//!
//! Measures booting the copy-on-write sandbox, applying an upgrade, and
//! replaying recorded runs — the per-machine cost of user-machine
//! testing that staged deployment tries to spend on as few machines as
//! possible.

use criterion::{criterion_group, criterion_main, Criterion};

use mirage_scenarios::{firefox, mysql};
use mirage_testing::{Sandbox, Validator};

fn bench_sandbox_boot(c: &mut Criterion) {
    let scenario = mysql::MySqlScenario::with_full_parsers();
    let machine = &scenario.agents[0].machine;
    c.bench_function("validation/sandbox-boot", |b| {
        b.iter(|| Sandbox::boot(machine).base_file_count())
    });
}

fn bench_validate_mysql_upgrade(c: &mut Criterion) {
    let scenario = mysql::MySqlScenario::with_full_parsers();
    let mut group = c.benchmark_group("validation/mysql-upgrade");
    // A healthy machine and a problem machine (the PHP one).
    for id in ["ubt-ms4", "ubt-ms4/php4"] {
        let agent = scenario
            .agents
            .iter()
            .find(|a| a.machine.id == id)
            .expect("agent");
        group.bench_function(id, |b| {
            b.iter(|| {
                Validator::new()
                    .validate(
                        &agent.machine,
                        &scenario.vendor.repo,
                        &scenario.upgrade,
                        &agent.runs,
                    )
                    .passed()
            })
        });
    }
    group.finish();
}

fn bench_validate_firefox_upgrade(c: &mut Criterion) {
    let scenario = firefox::FirefoxScenario::with_full_parsers();
    let agent = scenario
        .agents
        .iter()
        .find(|a| a.machine.id == "firefox15-from10")
        .expect("agent");
    c.bench_function("validation/firefox-2.0-legacy", |b| {
        b.iter(|| {
            Validator::new()
                .validate(
                    &agent.machine,
                    &scenario.vendor.repo,
                    &scenario.upgrade,
                    &agent.runs,
                )
                .passed()
        })
    });
}

criterion_group!(
    benches,
    bench_sandbox_boot,
    bench_validate_mysql_upgrade,
    bench_validate_firefox_upgrade
);
criterion_main!(benches);
