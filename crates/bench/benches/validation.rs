//! Sandbox validation throughput (paper §3.3).
//!
//! Measures booting the copy-on-write sandbox, applying an upgrade, and
//! replaying recorded runs — the per-machine cost of user-machine
//! testing that staged deployment tries to spend on as few machines as
//! possible.

use mirage_bench::harness::Harness;
use mirage_scenarios::{firefox, mysql};
use mirage_testing::{Sandbox, Validator};

fn main() {
    let mut h = Harness::new("validation");

    let scenario = mysql::MySqlScenario::with_full_parsers();
    let machine = &scenario.agents[0].machine;
    h.bench("validation/sandbox-boot", || {
        Sandbox::boot(machine).base_file_count()
    });

    // A healthy machine and a problem machine (the PHP one).
    for id in ["ubt-ms4", "ubt-ms4/php4"] {
        let agent = scenario
            .agents
            .iter()
            .find(|a| a.machine.id == id)
            .expect("agent");
        h.bench(&format!("validation/mysql-upgrade/{id}"), || {
            Validator::new()
                .validate(
                    &agent.machine,
                    &scenario.vendor.repo,
                    &scenario.upgrade,
                    &agent.runs,
                )
                .passed()
        });
    }

    let scenario = firefox::FirefoxScenario::with_full_parsers();
    let agent = scenario
        .agents
        .iter()
        .find(|a| a.machine.id == "firefox15-from10")
        .expect("agent");
    h.bench("validation/firefox-2.0-legacy", || {
        Validator::new()
            .validate(
                &agent.machine,
                &scenario.vendor.repo,
                &scenario.upgrade,
                &agent.runs,
            )
            .passed()
    });
}
