//! Deployment-simulator throughput and protocol sweeps (paper §4.3).
//!
//! Runs the full 100 000-machine Figure 10 scenario per protocol, and
//! sweeps the two design knobs DESIGN.md calls out for ablation:
//! representatives per cluster and the advancement threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mirage_deploy::{Balanced, FrontLoading, NoStaging};
use mirage_scenarios::deployment::{sound_scenario, ProblemPlacement};
use mirage_sim::{run, ScenarioBuilder};

fn bench_protocols_full_scale(c: &mut Criterion) {
    let scenario = sound_scenario(ProblemPlacement::Late);
    let mut group = c.benchmark_group("simulator/fig10-100k");
    group.sample_size(10);
    group.bench_function("NoStaging", |b| {
        b.iter(|| run(&scenario, &mut NoStaging::new(scenario.plan.clone())).failed_tests)
    });
    group.bench_function("Balanced", |b| {
        b.iter(|| run(&scenario, &mut Balanced::new(scenario.plan.clone(), 1.0)).failed_tests)
    });
    group.bench_function("FrontLoading", |b| {
        b.iter(|| {
            run(
                &scenario,
                &mut FrontLoading::new(scenario.plan.clone(), 1.0),
            )
            .failed_tests
        })
    });
    group.finish();
}

fn bench_reps_per_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/reps-sweep");
    group.sample_size(10);
    for reps in [1usize, 3, 10] {
        let scenario = ScenarioBuilder::new()
            .clusters(20, 1_000, reps)
            .problem_in_clusters("prevalent", &[15, 16, 17])
            .problem_in_clusters("rare", &[19])
            .build();
        group.bench_with_input(BenchmarkId::new("reps", reps), &scenario, |b, s| {
            b.iter(|| run(s, &mut Balanced::new(s.plan.clone(), 1.0)).completion_time)
        });
    }
    group.finish();
}

fn bench_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/threshold-sweep");
    group.sample_size(10);
    for threshold in [0.5f64, 0.9, 1.0] {
        let scenario = ScenarioBuilder::new()
            .clusters(20, 1_000, 1)
            .problem_in_clusters("prevalent", &[15, 16, 17])
            .misplaced_machine(2, "odd")
            .threshold(threshold)
            .build();
        group.bench_with_input(
            BenchmarkId::new("threshold", format!("{threshold}")),
            &scenario,
            |b, s| {
                b.iter(|| run(s, &mut Balanced::new(s.plan.clone(), s.threshold)).completion_time)
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_protocols_full_scale,
    bench_reps_per_cluster,
    bench_threshold
);
criterion_main!(benches);
