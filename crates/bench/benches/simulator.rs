//! Deployment-simulator throughput and protocol sweeps (paper §4.3).
//!
//! Runs the full 100 000-machine Figure 10 scenario per protocol, and
//! sweeps the two design knobs DESIGN.md calls out for ablation:
//! representatives per cluster and the advancement threshold.

use std::sync::Arc;

use mirage_bench::harness::Harness;
use mirage_deploy::{Balanced, FrontLoading, NoStaging};
use mirage_scenarios::deployment::{sound_scenario, ProblemPlacement};
use mirage_sim::{run, run_with_telemetry, ScenarioBuilder};
use mirage_telemetry::{Registry, Telemetry};

fn main() {
    let mut h = Harness::new("simulator");

    let scenario = sound_scenario(ProblemPlacement::Late);
    h.bench("simulator/fig10-100k/NoStaging", || {
        run(&scenario, &mut NoStaging::new(scenario.plan.clone())).failed_tests
    });
    h.bench("simulator/fig10-100k/Balanced", || {
        run(&scenario, &mut Balanced::new(scenario.plan.clone(), 1.0)).failed_tests
    });
    h.bench("simulator/fig10-100k/FrontLoading", || {
        run(
            &scenario,
            &mut FrontLoading::new(scenario.plan.clone(), 1.0),
        )
        .failed_tests
    });

    // Telemetry overhead on the same 100k-machine run: the noop handle
    // (instrumentation compiled in, recorder absent) and a live registry
    // recording counters, spans, gauges and flight events.
    h.bench("simulator/fig10-100k/Balanced-telemetry-noop", || {
        run_with_telemetry(
            &scenario,
            &mut Balanced::new(scenario.plan.clone(), 1.0).with_telemetry(Telemetry::noop()),
            Telemetry::noop(),
        )
        .failed_tests
    });
    h.bench("simulator/fig10-100k/Balanced-telemetry-live", || {
        let registry = Arc::new(Registry::new(8192));
        let telemetry = Telemetry::from_registry(registry);
        run_with_telemetry(
            &scenario,
            &mut Balanced::new(scenario.plan.clone(), 1.0).with_telemetry(telemetry.clone()),
            telemetry,
        )
        .failed_tests
    });

    for reps in [1usize, 3, 10] {
        let scenario = ScenarioBuilder::new()
            .clusters(20, 1_000, reps)
            .problem_in_clusters("prevalent", &[15, 16, 17])
            .problem_in_clusters("rare", &[19])
            .build();
        h.bench(&format!("simulator/reps-sweep/reps-{reps}"), || {
            run(&scenario, &mut Balanced::new(scenario.plan.clone(), 1.0)).completion_time
        });
    }

    for threshold in [0.5f64, 0.9, 1.0] {
        let scenario = ScenarioBuilder::new()
            .clusters(20, 1_000, 1)
            .problem_in_clusters("prevalent", &[15, 16, 17])
            .misplaced_machine(2, "odd")
            .threshold(threshold)
            .build();
        h.bench(&format!("simulator/threshold-sweep/{threshold}"), || {
            run(
                &scenario,
                &mut Balanced::new(scenario.plan.clone(), scenario.threshold),
            )
            .completion_time
        });
    }
}
