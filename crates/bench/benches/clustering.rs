//! Clustering cost: linear phase 1, quadratic phase 2 (paper §3.2.3).
//!
//! The paper notes phase 1 runs in time proportional to the number of
//! machines while phase 2 is quadratic in the size of each original
//! cluster — this bench exhibits both scalings, plus the end-to-end
//! clustering of the paper's own MySQL and Firefox fleets.

use mirage_bench::harness::Harness;
use mirage_cluster::{ClusterEngine, MachineInfo};
use mirage_fingerprint::{DiffSet, Item};
use mirage_scenarios::{firefox, mysql};

/// A population whose parsed diffs split machines into `groups` original
/// clusters and whose content items are per-machine noise (worst case
/// for phase 2).
fn population(n: usize, groups: usize) -> Vec<MachineInfo> {
    (0..n)
        .map(|i| {
            let mut diff = DiffSet::empty(format!("m{i:05}"));
            diff.parsed
                .insert(Item::new(["group", &(i % groups).to_string()]));
            diff.content
                .insert(Item::new(["noise", &(i / 3).to_string()]));
            MachineInfo::new(diff)
        })
        .collect()
}

fn main() {
    let mut h = Harness::new("clustering");

    for &n in &[50usize, 100, 200] {
        // Many original clusters: phase 2 inputs stay small (linear-ish).
        let spread = population(n, n / 5);
        let engine = ClusterEngine::new(2);
        h.bench(&format!("clustering/scaling/spread-{n}"), || {
            engine.cluster(&spread).len()
        });
        // One original cluster: phase 2 dominates (quadratic).
        let dense = population(n, 1);
        h.bench(&format!("clustering/scaling/dense-{n}"), || {
            engine.cluster(&dense).len()
        });
    }

    // Larger dense fleets. These only complete in a micro-bench budget
    // because phase 2 runs on the interned distance kernel with
    // incremental merge aggregates and a threaded distance matrix; the
    // naive loop was already dominated by dense-200.
    for &n in &[500usize, 1000] {
        let dense = population(n, 1);
        let engine = ClusterEngine::new(2);
        h.bench(&format!("clustering/scaling/dense-{n}"), || {
            engine.cluster(&dense).len()
        });
    }

    let mysql_scenario = mysql::MySqlScenario::with_full_parsers();
    let mysql_inputs = mysql_scenario.fleet_inputs();
    h.bench("clustering/mysql-table2-full-parsers", || {
        mysql_scenario.vendor.cluster(&mysql_inputs).len()
    });

    let mysql_rabin = mysql::MySqlScenario::with_mirage_parsers(3);
    let rabin_inputs = mysql_rabin.fleet_inputs();
    h.bench("clustering/mysql-table2-mirage-parsers", || {
        mysql_rabin.vendor.cluster(&rabin_inputs).len()
    });

    let ff = firefox::FirefoxScenario::with_mirage_parsers(4);
    let ff_inputs = ff.fleet_inputs();
    h.bench("clustering/firefox-table3-d4", || {
        ff.vendor.cluster(&ff_inputs).len()
    });

    // End-to-end per-machine cost: trace -> classify -> fingerprint ->
    // diff. This is the distributed user-side work.
    let scenario = mysql::MySqlScenario::with_full_parsers();
    let classification = scenario.vendor.classify_reference(
        "mysqld",
        &[
            mirage_env::RunInput::new("a"),
            mirage_env::RunInput::new("b"),
        ],
    );
    let reference = scenario.vendor.reference_fingerprint(&classification);
    let agent = &scenario.agents[7];
    h.bench("clustering/per-machine-pipeline", || {
        agent
            .clustering_input("mysqld", &scenario.vendor, &reference)
            .diff
            .len()
    });
}
