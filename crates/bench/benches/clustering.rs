//! Clustering cost: linear phase 1, quadratic phase 2 (paper §3.2.3).
//!
//! The paper notes phase 1 runs in time proportional to the number of
//! machines while phase 2 is quadratic in the size of each original
//! cluster — this bench exhibits both scalings, plus the end-to-end
//! clustering of the paper's own MySQL and Firefox fleets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mirage_cluster::{ClusterEngine, MachineInfo};
use mirage_fingerprint::{DiffSet, Item};
use mirage_scenarios::{firefox, mysql};

/// A population whose parsed diffs split machines into `groups` original
/// clusters and whose content items are per-machine noise (worst case
/// for phase 2).
fn population(n: usize, groups: usize) -> Vec<MachineInfo> {
    (0..n)
        .map(|i| {
            let mut diff = DiffSet::empty(format!("m{i:05}"));
            diff.parsed
                .insert(Item::new(["group", &(i % groups).to_string()]));
            diff.content
                .insert(Item::new(["noise", &(i / 3).to_string()]));
            MachineInfo::new(diff)
        })
        .collect()
}

fn bench_phase_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering/scaling");
    group.sample_size(10);
    for &n in &[50usize, 100, 200] {
        // Many original clusters: phase 2 inputs stay small (linear-ish).
        let spread = population(n, n / 5);
        group.bench_with_input(BenchmarkId::new("spread", n), &spread, |b, machines| {
            let engine = ClusterEngine::new(2);
            b.iter(|| engine.cluster(machines).len())
        });
        // One original cluster: phase 2 dominates (quadratic).
        let dense = population(n, 1);
        group.bench_with_input(BenchmarkId::new("dense", n), &dense, |b, machines| {
            let engine = ClusterEngine::new(2);
            b.iter(|| engine.cluster(machines).len())
        });
    }
    group.finish();
}

fn bench_paper_fleets(c: &mut Criterion) {
    let mysql_scenario = mysql::MySqlScenario::with_full_parsers();
    let mysql_inputs = mysql_scenario.fleet_inputs();
    c.bench_function("clustering/mysql-table2-full-parsers", |b| {
        b.iter(|| mysql_scenario.vendor.cluster(&mysql_inputs).len())
    });

    let mysql_rabin = mysql::MySqlScenario::with_mirage_parsers(3);
    let rabin_inputs = mysql_rabin.fleet_inputs();
    c.bench_function("clustering/mysql-table2-mirage-parsers", |b| {
        b.iter(|| mysql_rabin.vendor.cluster(&rabin_inputs).len())
    });

    let ff = firefox::FirefoxScenario::with_mirage_parsers(4);
    let ff_inputs = ff.fleet_inputs();
    c.bench_function("clustering/firefox-table3-d4", |b| {
        b.iter(|| ff.vendor.cluster(&ff_inputs).len())
    });
}

fn bench_fingerprint_pipeline(c: &mut Criterion) {
    // End-to-end per-machine cost: trace -> classify -> fingerprint ->
    // diff. This is the distributed user-side work.
    let scenario = mysql::MySqlScenario::with_full_parsers();
    let classification = scenario.vendor.classify_reference(
        "mysqld",
        &[
            mirage_env::RunInput::new("a"),
            mirage_env::RunInput::new("b"),
        ],
    );
    let reference = scenario.vendor.reference_fingerprint(&classification);
    let agent = &scenario.agents[7];
    c.bench_function("clustering/per-machine-pipeline", |b| {
        b.iter(|| {
            agent
                .clustering_input("mysqld", &scenario.vendor, &reference)
                .diff
                .len()
        })
    });
}

criterion_group!(
    benches,
    bench_phase_scaling,
    bench_paper_fleets,
    bench_fingerprint_pipeline
);
criterion_main!(benches);
