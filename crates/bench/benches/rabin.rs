//! Rabin fingerprinting / content-defined chunking throughput.
//!
//! Ablation for the paper's 4 KB default chunk size: smaller averages
//! give finer diffs at proportional fingerprinting cost; a config file
//! below the minimum chunk size always collapses to one chunk, which is
//! exactly the imprecision behind Figure 7's unsound clustering.

use mirage_bench::harness::Harness;
use mirage_fingerprint::{Chunker, ChunkerParams, RabinHasher};

fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

fn main() {
    let mut h = Harness::new("rabin");

    let data = pseudo_random(1 << 20, 7);
    h.bench_bytes("rabin/rolling-hash/1MiB", data.len() as u64, || {
        let mut hasher = RabinHasher::new(48);
        let mut acc = 0u64;
        for &byte in &data {
            acc ^= hasher.push(byte);
        }
        acc
    });

    let data = pseudo_random(1 << 20, 11);
    for avg in [1024usize, 4096, 16384] {
        let params = ChunkerParams {
            window: 48,
            min_size: avg / 4,
            avg_size: avg,
            max_size: avg * 4,
        };
        let chunker = Chunker::new(params);
        h.bench_bytes(
            &format!("rabin/chunking/avg-{avg}"),
            data.len() as u64,
            || chunker.chunk(&data).len(),
        );
    }

    // Typical my.cnf-sized inputs: the chunker must be cheap on the
    // fleet's many small resources, not just bulk data.
    let small = pseudo_random(600, 3);
    let chunker = Chunker::paper_default();
    h.bench("rabin/small-config", || chunker.chunk(&small).len());
}
