//! Rabin fingerprinting / content-defined chunking throughput.
//!
//! Ablation for the paper's 4 KB default chunk size: smaller averages
//! give finer diffs at proportional fingerprinting cost; a config file
//! below the minimum chunk size always collapses to one chunk, which is
//! exactly the imprecision behind Figure 7's unsound clustering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mirage_fingerprint::{Chunker, ChunkerParams, RabinHasher};

fn pseudo_random(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

fn bench_rolling_hash(c: &mut Criterion) {
    let data = pseudo_random(1 << 20, 7);
    let mut group = c.benchmark_group("rabin/rolling-hash");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("1MiB", |b| {
        b.iter(|| {
            let mut hasher = RabinHasher::new(48);
            let mut acc = 0u64;
            for &byte in &data {
                acc ^= hasher.push(byte);
            }
            acc
        })
    });
    group.finish();
}

fn bench_chunking(c: &mut Criterion) {
    let data = pseudo_random(1 << 20, 11);
    let mut group = c.benchmark_group("rabin/chunking");
    group.throughput(Throughput::Bytes(data.len() as u64));
    for avg in [1024usize, 4096, 16384] {
        let params = ChunkerParams {
            window: 48,
            min_size: avg / 4,
            avg_size: avg,
            max_size: avg * 4,
        };
        group.bench_with_input(BenchmarkId::new("avg", avg), &params, |b, params| {
            let chunker = Chunker::new(*params);
            b.iter(|| chunker.chunk(&data).len())
        });
    }
    group.finish();
}

fn bench_small_config_files(c: &mut Criterion) {
    // Typical my.cnf-sized inputs: the chunker must be cheap on the
    // fleet's many small resources, not just bulk data.
    let small = pseudo_random(600, 3);
    let chunker = Chunker::paper_default();
    c.bench_function("rabin/small-config", |b| {
        b.iter(|| chunker.chunk(&small).len())
    });
}

criterion_group!(
    benches,
    bench_rolling_hash,
    bench_chunking,
    bench_small_config_files
);
criterion_main!(benches);
