//! The Table 1 application models (paper §4.1).
//!
//! Table 1 scores the environmental-resource heuristic on one desktop
//! application (Firefox) and three server applications (Apache, PHP,
//! MySQL). The real applications are unavailable here, so each is
//! modelled as a synthetic file population plus a behaviour spec whose
//! trace structure reproduces the *mechanism* behind each paper number:
//!
//! | App | Files | Env | FP | FN | Rules | Mechanism |
//! |---|---|---|---|---|---|---|
//! | firefox | 907 | 839 | 1 | 23 | 7 | extensions/themes/fonts load on demand (missed); a session log touched at startup (false positive) |
//! | apache  | 400 | 251 | 133 | 0 | 2 | the access log is touched during initialisation and popular HTML documents are read-only in every run |
//! | php     | 215 | 206 | 0 | 0 | 0 | clean init phase + late-bound `.so` extensions caught by the type rule |
//! | mysql   | 286 | 250 | 0 | 33 | 1 | the database directory holds configuration data but `/var` is excluded by default |
//!
//! The harness runs the real heuristic over real traces of these models;
//! nothing in the FP/FN columns is hard-coded.

use mirage_env::{
    ApplicationSpec, File, LateTrigger, Machine, MachineBuilder, Package, RunInput, Version,
    VersionReq,
};
use mirage_env::{FileContent, IniDoc, Repository};
use mirage_fingerprint::ResourceKind;
use mirage_heuristic::{evaluate, identify, Classification, EvalResult, HeuristicConfig, RuleSet};
use mirage_trace::{RunId, Trace};

/// A Table 1 application model.
pub struct AppModel {
    /// Application name (the Table 1 row label).
    pub name: &'static str,
    /// The machine hosting the application.
    pub machine: Machine,
    /// The traced workloads.
    pub inputs: Vec<RunInput>,
    /// The vendor rules required for a perfect classification.
    pub rules: RuleSet,
    /// The heuristic configuration.
    pub config: HeuristicConfig,
}

impl AppModel {
    /// Collects the model's traces.
    pub fn traces(&self) -> Vec<Trace> {
        self.inputs
            .iter()
            .enumerate()
            .map(|(i, input)| self.machine.run_app(self.name, input, RunId(i as u64)))
            .collect()
    }

    /// Runs the heuristic, with or without the vendor rules.
    pub fn classify(&self, with_rules: bool) -> Classification {
        let traces = self.traces();
        let manifest: std::collections::BTreeSet<String> = self
            .machine
            .pkgs
            .manifest(self.name)
            .unwrap_or_default()
            .into_iter()
            .collect();
        let kind_of = |path: &str| self.machine.fs.get(path).map(|f| f.kind);
        let empty = RuleSet::new();
        let rules = if with_rules { &self.rules } else { &empty };
        identify(&traces, &manifest, &kind_of, &self.config, rules)
    }

    /// Ground truth for a path.
    pub fn truth(&self, path: &str) -> bool {
        self.machine
            .fs
            .get(path)
            .map(|f| f.truth_env)
            .unwrap_or(false)
    }

    /// Produces the Table 1 row: heuristic-only FP/FN plus the number of
    /// vendor rules needed for a perfect classification.
    pub fn table1_row(&self) -> EvalResult {
        let classification = self.classify(false);
        let truth = |p: &str| self.truth(p);
        evaluate(self.name, &classification, &truth, self.rules.len())
    }

    /// Returns the row after applying the vendor rules (must be perfect).
    pub fn with_rules_row(&self) -> EvalResult {
        let classification = self.classify(true);
        let truth = |p: &str| self.truth(p);
        evaluate(self.name, &classification, &truth, self.rules.len())
    }
}

fn config_file(path: String) -> File {
    File::new(
        path,
        ResourceKind::Config,
        FileContent::Ini(IniDoc::new().section("main").key("id", "x")),
    )
}

/// Builds the PHP model: 215 files, 206 environmental resources,
/// no misclassifications, no rules.
pub fn php_model() -> AppModel {
    let mut repo = Repository::new();
    let mut pkg = Package::new("php", Version::new(4, 4, 6)).with_file(File::executable(
        "/usr/bin/php",
        "php",
        446,
    ));
    for i in 0..60 {
        pkg = pkg.with_file(File::library(
            format!("/usr/lib/php/libphp-{i}.so"),
            format!("libphp-{i}"),
            "4.4",
            i,
        ));
    }
    repo.publish(pkg);

    let mut spec = ApplicationSpec::new("php", "php", "/usr/bin/php");
    let mut builder = MachineBuilder::new("php-host").install(&repo, "php", VersionReq::Any);
    for i in 0..60 {
        spec = spec.reads(format!("/usr/lib/php/libphp-{i}.so"));
    }
    // 139 configuration files read during initialisation.
    builder = builder.file(config_file("/etc/php/php.ini".into()));
    spec = spec.reads("/etc/php/php.ini");
    for i in 0..138 {
        let path = format!("/etc/php/conf.d/{i:03}.ini");
        builder = builder.file(config_file(path.clone()));
        spec = spec.reads(path);
    }
    // Six late-bound extensions, each loaded by exactly one workload —
    // only the vendor-type rule (shared libraries) can catch them.
    for i in 0..6 {
        let path = format!("/usr/lib/php/ext/ext-{i}.so");
        builder = builder.file(File::library(
            path.clone(),
            format!("ext-{i}"),
            "4.4",
            100 + i,
        ));
        spec = spec.late(path, LateTrigger::OnInput(format!("ext{i}")));
    }
    // Nine scripts (data), three per workload.
    for i in 0..9 {
        builder = builder.file(File::new(
            format!("/srv/scripts/s{i}.php"),
            ResourceKind::Text,
            FileContent::Text(vec![format!("<?php echo {i}; ?>")]),
        ));
    }
    let machine = builder.app(spec).build();
    let inputs = (0..3)
        .map(|w| {
            let mut input = RunInput::new(format!("workload-{w}"));
            for s in 0..3 {
                input = input.data(format!("/srv/scripts/s{}.php", w * 3 + s));
            }
            input
                .tag(format!("ext{}", w * 2))
                .tag(format!("ext{}", w * 2 + 1))
        })
        .collect();
    AppModel {
        name: "php",
        machine,
        inputs,
        rules: RuleSet::new(),
        config: HeuristicConfig::paper_default(),
    }
}

/// Builds the Apache model: 400 files, 251 environmental resources,
/// 133 false positives (access log + popular HTML), 2 rules.
pub fn apache_model() -> AppModel {
    let mut repo = Repository::new();
    let mut pkg = Package::new("apache", Version::new(1, 3, 26)).with_file(File::executable(
        "/usr/sbin/httpd",
        "httpd",
        1326,
    ));
    for i in 0..80 {
        pkg = pkg.with_file(File::library(
            format!("/usr/lib/apache/mod_{i}.so"),
            format!("mod_{i}"),
            "1.3",
            i,
        ));
    }
    repo.publish(pkg);

    let mut spec = ApplicationSpec::new("apache", "apache", "/usr/sbin/httpd");
    let mut builder = MachineBuilder::new("apache-host").install(&repo, "apache", VersionReq::Any);
    for i in 0..80 {
        spec = spec.reads(format!("/usr/lib/apache/mod_{i}.so"));
    }
    for i in 0..170 {
        let path = format!("/etc/apache/conf/{i:03}.conf");
        builder = builder.file(config_file(path.clone()));
        spec = spec.reads(path);
    }
    // The access log is touched during initialisation (false positive 1).
    builder = builder.file(File::log("/srv/logs/access.log", vec!["-".into()]));
    spec = spec.reads("/srv/logs/access.log");
    // 132 popular pages served in every run (false positives 2..133) and
    // 16 unpopular pages each served in exactly one run.
    for i in 0..132 {
        builder = builder.file(File::html(
            format!("/srv/www/htdocs/popular{i:03}.html"),
            format!("page {i}"),
        ));
    }
    for i in 0..16 {
        builder = builder.file(File::html(
            format!("/srv/www/htdocs/rare{i:02}.html"),
            format!("rare {i}"),
        ));
    }
    let machine = builder.app(spec).build();
    let inputs = (0..4)
        .map(|w| {
            let mut input = RunInput::new(format!("traffic-{w}"));
            // A unique page first, so the initialisation LCP ends before
            // the popular set.
            for r in 0..4 {
                input = input.data(format!("/srv/www/htdocs/rare{:02}.html", w * 4 + r));
            }
            for i in 0..132 {
                input = input.data(format!("/srv/www/htdocs/popular{i:03}.html"));
            }
            input
        })
        .collect();
    AppModel {
        name: "apache",
        machine,
        inputs,
        rules: RuleSet::new()
            .exclude("/srv/www/htdocs/**")
            .exclude("/srv/logs/**"),
        config: HeuristicConfig::paper_default(),
    }
}

/// Builds the MySQL model: 286 files, 250 environmental resources,
/// 33 false negatives (the database directory), 1 rule.
pub fn mysql_model() -> AppModel {
    let mut repo = Repository::new();
    let mut pkg = Package::new("mysql", Version::new(4, 1, 22)).with_file(File::executable(
        "/usr/sbin/mysqld",
        "mysqld",
        4122,
    ));
    for i in 0..40 {
        pkg = pkg.with_file(File::library(
            format!("/usr/lib/mysql/lib{i}.so"),
            format!("lib{i}"),
            "4.1",
            i,
        ));
    }
    repo.publish(pkg);

    let mut spec = ApplicationSpec::new("mysql", "mysql", "/usr/sbin/mysqld");
    let mut builder = MachineBuilder::new("mysql-host").install(&repo, "mysql", VersionReq::Any);
    for i in 0..40 {
        spec = spec.reads(format!("/usr/lib/mysql/lib{i}.so"));
    }
    for i in 0..176 {
        let path = format!("/etc/mysql/conf.d/{i:03}.cnf");
        builder = builder.file(config_file(path.clone()));
        spec = spec.reads(path);
    }
    // The 33 system tables: read at startup, genuinely environmental
    // (they carry grant/config data), but under /var.
    for i in 0..33 {
        let path = format!("/var/lib/mysql/mysql/sys{i:02}.frm");
        builder = builder.file(File::data(path.clone(), i as u64, 256).env_resource());
        spec = spec.reads(path);
    }
    // 36 user-database files, write-accessed, varying per run.
    for i in 0..36 {
        builder = builder.file(File::data(
            format!("/var/lib/mysql/userdb/t{i:02}.ibd"),
            100 + i as u64,
            256,
        ));
    }
    spec.logic.writes_data = true;
    let machine = builder.app(spec).build();
    let inputs = (0..3)
        .map(|w| {
            let mut input = RunInput::new(format!("queries-{w}"));
            for t in 0..12 {
                input = input.data(format!("/var/lib/mysql/userdb/t{:02}.ibd", w * 12 + t));
            }
            input
        })
        .collect();
    AppModel {
        name: "mysql",
        machine,
        inputs,
        rules: RuleSet::new().include("/var/lib/mysql/mysql/**"),
        config: HeuristicConfig::paper_default(),
    }
}

/// Builds the Firefox model: 907 files, 839 environmental resources,
/// 1 false positive, 23 false negatives, 7 rules.
pub fn firefox_model() -> AppModel {
    let mut repo = Repository::new();
    let mut pkg = Package::new("firefox", Version::new(1, 5, 7)).with_file(File::executable(
        "/usr/bin/firefox",
        "firefox",
        1507,
    ));
    for i in 0..120 {
        pkg = pkg.with_file(File::library(
            format!("/usr/lib/firefox/lib{i}.so"),
            format!("lib{i}"),
            "1.5",
            i,
        ));
    }
    repo.publish(pkg);

    let mut spec = ApplicationSpec::new("firefox", "firefox", "/usr/bin/firefox");
    let mut builder =
        MachineBuilder::new("firefox-host").install(&repo, "firefox", VersionReq::Any);
    for i in 0..120 {
        spec = spec.reads(format!("/usr/lib/firefox/lib{i}.so"));
    }
    for i in 0..695 {
        let path = format!("/usr/lib/firefox/chrome/{i:03}.manifest");
        builder = builder.file(config_file(path.clone()));
        spec = spec.reads(path);
    }
    // The session log is replayed at startup: the one false positive.
    builder = builder.file(File::log(
        "/home/user/.mozilla/session.log",
        vec!["last-session".into()],
    ));
    spec = spec.reads("/home/user/.mozilla/session.log");
    // 23 on-demand resources the heuristic misses: extensions, themes,
    // fonts, split over system and per-user directories (hence 6 include
    // rules) — each loaded by exactly one workload.
    let late_paths: Vec<(String, ResourceKind)> = (0..5)
        .map(|i| {
            (
                format!("/usr/lib/firefox/extensions/e{i}.xpi"),
                ResourceKind::Extension,
            )
        })
        .chain((0..5).map(|i| {
            (
                format!("/home/user/.mozilla/extensions/u{i}.xpi"),
                ResourceKind::Extension,
            )
        }))
        .chain((0..3).map(|i| {
            (
                format!("/usr/lib/firefox/themes/t{i}.jar"),
                ResourceKind::Theme,
            )
        }))
        .chain((0..3).map(|i| {
            (
                format!("/home/user/.mozilla/themes/v{i}.jar"),
                ResourceKind::Theme,
            )
        }))
        .chain((0..4).map(|i| (format!("/usr/share/fonts/f{i}.ttf"), ResourceKind::Font)))
        .chain((0..3).map(|i| (format!("/home/user/.fonts/g{i}.ttf"), ResourceKind::Font)))
        .collect();
    for (i, (path, kind)) in late_paths.iter().enumerate() {
        builder = builder.file(File::new(
            path.clone(),
            *kind,
            FileContent::Binary {
                seed: i as u64,
                len: 128,
            },
        ));
        spec = spec.late(path.clone(), LateTrigger::OnInput(format!("late{i}")));
    }
    // 67 cache files, each touched by exactly one workload.
    for i in 0..67 {
        builder = builder.file(File::data(
            format!("/home/user/.mozilla/cache/c{i:02}"),
            500 + i as u64,
            64,
        ));
    }
    let machine = builder.app(spec).build();
    // Four workloads covering the 23 late resources (6+6+6+5) and the 67
    // cache files (17+17+17+16).
    let inputs = (0..4usize)
        .map(|w| {
            let mut input = RunInput::new(format!("browse-{w}"));
            for l in (0..23).filter(|l| l % 4 == w) {
                input = input.tag(format!("late{l}"));
            }
            for c in (0..67).filter(|c| c % 4 == w) {
                input = input.data(format!("/home/user/.mozilla/cache/c{c:02}"));
            }
            input
        })
        .collect();
    AppModel {
        name: "firefox",
        machine,
        inputs,
        rules: RuleSet::new()
            .exclude("/home/user/.mozilla/session.log")
            .include("/usr/lib/firefox/extensions/*.xpi")
            .include("/home/user/.mozilla/extensions/*.xpi")
            .include("/usr/lib/firefox/themes/*.jar")
            .include("/home/user/.mozilla/themes/*.jar")
            .include("/usr/share/fonts/*.ttf")
            .include("/home/user/.fonts/*.ttf"),
        config: HeuristicConfig::paper_default(),
    }
}

/// All four Table 1 models in the paper's row order.
pub fn all_models() -> Vec<AppModel> {
    vec![firefox_model(), apache_model(), php_model(), mysql_model()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_row(model: &AppModel, files: usize, env: usize, fp: usize, fn_: usize, rules: usize) {
        let row = model.table1_row();
        assert_eq!(row.files_total, files, "{}: files total", model.name);
        assert_eq!(row.env_resources, env, "{}: env resources", model.name);
        assert_eq!(row.false_positives, fp, "{}: false positives", model.name);
        assert_eq!(row.false_negatives, fn_, "{}: false negatives", model.name);
        assert_eq!(row.vendor_rules, rules, "{}: rules", model.name);
        let fixed = model.with_rules_row();
        assert!(
            fixed.is_perfect(),
            "{}: rules must yield a perfect classification, got FP={} FN={}",
            model.name,
            fixed.false_positives,
            fixed.false_negatives
        );
    }

    #[test]
    fn php_row_matches_table1() {
        assert_row(&php_model(), 215, 206, 0, 0, 0);
    }

    #[test]
    fn apache_row_matches_table1() {
        assert_row(&apache_model(), 400, 251, 133, 0, 2);
    }

    #[test]
    fn mysql_row_matches_table1() {
        assert_row(&mysql_model(), 286, 250, 0, 33, 1);
    }

    #[test]
    fn firefox_row_matches_table1() {
        assert_row(&firefox_model(), 907, 839, 1, 23, 7);
    }

    #[test]
    fn all_models_cover_table1() {
        let names: Vec<&str> = all_models().iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["firefox", "apache", "php", "mysql"]);
    }
}
