//! The MySQL clustering evaluation (paper §4.2.1, Table 2, Figures 6–7).
//!
//! Twenty-one machine configurations reconstruct Table 2: two
//! distributions (Fedora Core 5, Ubuntu 6.06), an optional libc upgrade,
//! PHP 4.4.6 (optionally with Apache 1.3.9 compiled against it), and
//! five kinds of `my.cnf` configuration change. Two real upgrade
//! problems are injected for the MySQL 4→5 upgrade:
//!
//! * **php-broken-dep** — PHP compiled against `libmysqlclient` 4.x
//!   crashes once the upgrade drags in the 5.x library (the paper's
//!   \[24\]); triggers wherever PHP is installed (bold entries).
//! * **mycnf-legacy** — machines with a user-level `$HOME/.my.cnf`
//!   fail to start the upgraded server (legacy-configuration problem;
//!   bold-italic entries).
//!
//! Interpretation note: Table 2 is ambiguous about which machines carry
//! `/etc/mysql/my.cnf` by default. We model Fedora as shipping one and
//! Ubuntu base as not (`withconfig` *adds* it, matching its
//! description); the comment/directive variants therefore carry the file
//! with the described edit applied to the standard content. This
//! reproduces the paper's headline numbers exactly: 15 clusters, C = 12,
//! w = 0 with full parsers (Figure 6) and w = 2 with Mirage parsers only
//! at diameter 3 (Figure 7).

use std::collections::BTreeMap;

use mirage_cluster::{Clustering, ClusteringScore, MachineInfo};
use mirage_core::{UserAgent, Vendor};
use mirage_env::{
    ApplicationSpec, EnvPredicate, File, IniDoc, MachineBuilder, Package, ProblemEffect,
    ProblemSpec, Repository, RunInput, Upgrade, Version, VersionReq,
};
use mirage_fingerprint::parsers::{mirage_default_registry, IniConfigParser};
use mirage_fingerprint::{Glob, ImportanceFilter, ParserRegistry};

/// Distribution of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distro {
    /// Fedora Core 5 (libc 2.5, ships `/etc/mysql/my.cnf`).
    Fc5,
    /// Ubuntu 6.06 Dapper Drake (libc 2.3, no default `my.cnf`).
    Ubt,
}

/// How a machine's `/etc/mysql/my.cnf` differs from the standard one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MyCnf {
    /// No `/etc/mysql/my.cnf` at all.
    Absent,
    /// The standard file.
    Standard,
    /// Standard with extra comments.
    CommentAdded,
    /// Standard with a comment removed.
    CommentDeleted,
    /// Standard plus an extra configuration directive.
    DirectiveAdded,
    /// Standard minus one directive.
    DirectiveDeleted,
}

/// One Table 2 configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Machine name as printed in Table 2.
    pub name: &'static str,
    /// Distribution.
    pub distro: Distro,
    /// Whether libc was upgraded (Ubuntu only in Table 2).
    pub libc_upgraded: bool,
    /// `my.cnf` state.
    pub mycnf: MyCnf,
    /// Has a user-level `$HOME/.my.cnf` (triggers the legacy problem).
    pub user_config: bool,
    /// PHP 4.4.6 installed (triggers the broken-dependency problem).
    pub php4: bool,
    /// Apache 1.3.9 compiled with PHP support installed.
    pub ap139: bool,
}

/// The full Table 2 machine list.
pub fn table2_configs() -> Vec<MachineConfig> {
    fn cfg(name: &'static str, distro: Distro) -> MachineConfig {
        MachineConfig {
            name,
            distro,
            libc_upgraded: false,
            mycnf: match distro {
                Distro::Fc5 => MyCnf::Standard,
                Distro::Ubt => MyCnf::Absent,
            },
            user_config: false,
            php4: false,
            ap139: false,
        }
    }
    let mut configs = vec![cfg("fc5-ms4", Distro::Fc5)];
    configs.push(MachineConfig {
        php4: true,
        ..cfg("fc5-ms4/php4", Distro::Fc5)
    });
    configs.push(MachineConfig {
        php4: true,
        ap139: true,
        ..cfg("fc5-ms4/php4/ap139", Distro::Fc5)
    });
    configs.push(MachineConfig {
        php4: true,
        mycnf: MyCnf::CommentAdded,
        ..cfg("fc5-ms4/php4-comments", Distro::Fc5)
    });
    configs.push(cfg("ubt-ms4", Distro::Ubt));
    configs.push(cfg("ubt-ms4(2)", Distro::Ubt));
    configs.push(MachineConfig {
        php4: true,
        ..cfg("ubt-ms4/php4", Distro::Ubt)
    });
    configs.push(MachineConfig {
        php4: true,
        ap139: true,
        ..cfg("ubt-ms4/php4/ap139", Distro::Ubt)
    });
    configs.push(MachineConfig {
        mycnf: MyCnf::Standard,
        ..cfg("ubt-ms4/withconfig", Distro::Ubt)
    });
    configs.push(MachineConfig {
        user_config: true,
        ..cfg("ubt-ms4/userconfig", Distro::Ubt)
    });
    configs.push(MachineConfig {
        mycnf: MyCnf::DirectiveAdded,
        ..cfg("ubt-ms4/confdirective-added", Distro::Ubt)
    });
    configs.push(MachineConfig {
        mycnf: MyCnf::DirectiveDeleted,
        ..cfg("ubt-ms4/confdirective-deleted", Distro::Ubt)
    });
    configs.push(MachineConfig {
        mycnf: MyCnf::CommentAdded,
        ..cfg("ubt-ms4/comment-added", Distro::Ubt)
    });
    configs.push(MachineConfig {
        mycnf: MyCnf::CommentDeleted,
        ..cfg("ubt-ms4/comment-deleted", Distro::Ubt)
    });
    for (suffix, mycnf, user_config) in [
        ("", MyCnf::Absent, false),
        ("/withconfig", MyCnf::Standard, false),
        ("/userconfig", MyCnf::Absent, true),
        ("/confdirective-added", MyCnf::DirectiveAdded, false),
        ("/confdirective-deleted", MyCnf::DirectiveDeleted, false),
        ("/comment-added", MyCnf::CommentAdded, false),
        ("/comment-deleted", MyCnf::CommentDeleted, false),
    ] {
        let name: &'static str = match suffix {
            "" => "ubt-ms4/libc-upg",
            "/withconfig" => "ubt-ms4/libc-upg/withconfig",
            "/userconfig" => "ubt-ms4/libc-upg/userconfig",
            "/confdirective-added" => "ubt-ms4/libc-upg/confdirective-added",
            "/confdirective-deleted" => "ubt-ms4/libc-upg/confdirective-deleted",
            "/comment-added" => "ubt-ms4/libc-upg/comment-added",
            _ => "ubt-ms4/libc-upg/comment-deleted",
        };
        configs.push(MachineConfig {
            libc_upgraded: true,
            mycnf,
            user_config,
            ..cfg(name, Distro::Ubt)
        });
    }
    configs
}

/// The standard `my.cnf` content.
pub fn standard_mycnf() -> IniDoc {
    IniDoc::new()
        .comment("The MySQL database server configuration file.")
        .section("mysqld")
        .key("datadir", "/srv/mysql-data")
        .key("port", "3306")
        .directive("skip-external-locking")
        .comment("Fine tuning")
        .key("key_buffer", "16M")
        .section("client")
        .key("socket", "/run/mysqld.sock")
}

fn mycnf_for(variant: MyCnf) -> Option<IniDoc> {
    let standard = standard_mycnf();
    match variant {
        MyCnf::Absent => None,
        MyCnf::Standard => Some(standard),
        MyCnf::CommentAdded => Some(standard.comment("Edited by the local admin.")),
        MyCnf::CommentDeleted => {
            let mut doc = IniDoc::new();
            // Remove the first comment line.
            let mut removed = false;
            for line in standard.lines {
                if !removed && matches!(line, mirage_env::IniLine::Comment(_)) {
                    removed = true;
                    continue;
                }
                doc.lines.push(line);
            }
            Some(doc)
        }
        MyCnf::DirectiveAdded => Some({
            let mut doc = standard;
            doc.lines.insert(
                4,
                mirage_env::IniLine::KeyValue("max_connections".into(), "200".into()),
            );
            doc
        }),
        MyCnf::DirectiveDeleted => Some({
            let mut doc = standard;
            doc.remove_key("skip-external-locking");
            doc
        }),
    }
}

/// The `mysqld` application behaviour spec.
pub fn mysqld_spec() -> ApplicationSpec {
    ApplicationSpec::new("mysqld", "mysql", "/usr/sbin/mysqld")
        .reads("/lib/libc.so.6")
        .reads("/usr/lib/libmysqlclient.so")
        .probes("/etc/mysql/my.cnf")
        .probes("$HOME/.my.cnf")
}

/// The shared package repository: MySQL 4.1.22 and 5.0.27, PHP, Apache.
pub fn repository() -> Repository {
    let mut repo = Repository::new();
    repo.publish(
        Package::new("mysql", Version::new(4, 1, 22))
            .with_file(File::executable("/usr/sbin/mysqld", "mysqld", 4122))
            .with_file(File::library(
                "/usr/lib/libmysqlclient.so",
                "libmysqlclient",
                "4.1",
                4122,
            )),
    );
    repo.publish(
        Package::new("php", Version::new(4, 4, 6)).with_file(File::executable(
            "/usr/bin/php",
            "php",
            446,
        )),
    );
    repo.publish(
        Package::new("apache", Version::new(1, 3, 9)).with_file(File::executable(
            "/usr/sbin/httpd",
            "httpd",
            139,
        )),
    );
    repo
}

/// Builds one Table 2 machine.
pub fn build_machine(config: &MachineConfig, repo: &Repository) -> mirage_env::Machine {
    let (libc_version, libc_build) = match (config.distro, config.libc_upgraded) {
        (Distro::Fc5, _) => ("2.5", 250u64),
        (Distro::Ubt, false) => ("2.3", 236),
        (Distro::Ubt, true) => ("2.4", 240),
    };
    let mut builder = MachineBuilder::new(config.name)
        .file(File::library(
            "/lib/libc.so.6",
            "libc",
            libc_version,
            libc_build,
        ))
        .env_var("HOME", "/root")
        .install(repo, "mysql", VersionReq::Exact(Version::new(4, 1, 22)))
        .app(mysqld_spec());
    if let Some(doc) = mycnf_for(config.mycnf) {
        builder = builder.file(File::config("/etc/mysql/my.cnf", doc));
    }
    if config.user_config {
        builder = builder.file(File::config(
            "/root/.my.cnf",
            IniDoc::new().section("client").key("user", "root"),
        ));
    }
    if config.php4 {
        builder = builder.install(repo, "php", VersionReq::Any).app(
            ApplicationSpec::new("php", "php", "/usr/bin/php")
                .reads("/usr/lib/libmysqlclient.so")
                .reads("/lib/libc.so.6"),
        );
    }
    if config.ap139 {
        builder = builder.install(repo, "apache", VersionReq::Any).app(
            ApplicationSpec::new("apache", "apache", "/usr/sbin/httpd")
                .reads("/lib/libc.so.6")
                .sharing_with("php"),
        );
    }
    builder.build()
}

/// The vendor's reference machine: a plain Ubuntu 6.06 installation.
pub fn vendor_reference(repo: &Repository) -> mirage_env::Machine {
    build_machine(
        &MachineConfig {
            name: "vendor-reference",
            distro: Distro::Ubt,
            libc_upgraded: false,
            mycnf: MyCnf::Absent,
            user_config: false,
            php4: false,
            ap139: false,
        },
        repo,
    )
}

/// The MySQL 4→5 upgrade with its two injected problems.
pub fn mysql5_upgrade() -> Upgrade {
    let mut repo_pkg = Package::new("mysql", Version::new(5, 0, 27)).with_file(File::executable(
        "/usr/sbin/mysqld",
        "mysqld",
        5027,
    ));
    repo_pkg = repo_pkg.with_file(File::library(
        "/usr/lib/libmysqlclient.so",
        "libmysqlclient",
        "5.0",
        5027,
    ));
    Upgrade::new(
        repo_pkg,
        vec![
            ProblemSpec::new(
                "php-broken-dep",
                "PHP compiled against libmysqlclient 4.x crashes with 5.x",
                EnvPredicate::AllOf(vec![
                    EnvPredicate::AppInstalled("php".into()),
                    EnvPredicate::LibVersion {
                        path: "/usr/lib/libmysqlclient.so".into(),
                        version: "5.0".into(),
                    },
                ]),
                ProblemEffect::CrashOnStart { app: "php".into() },
            ),
            ProblemSpec::new(
                "mycnf-legacy",
                "server fails to start with a legacy $HOME/.my.cnf",
                EnvPredicate::FileExists("/root/.my.cnf".into()),
                ProblemEffect::FailToStart {
                    app: "mysqld".into(),
                },
            ),
        ],
    )
}

/// The parser registry with vendor-provided MySQL parsers (Figure 6).
pub fn full_registry() -> ParserRegistry {
    let mut registry = mirage_default_registry();
    registry.register_vendor_glob(Glob::new("/etc/mysql/**"), Box::new(IniConfigParser));
    registry.register_vendor_glob(Glob::new("**/.my.cnf"), Box::new(IniConfigParser));
    registry
}

/// Ground-truth behaviour of each machine under [`mysql5_upgrade`].
pub fn behavior_map() -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for config in table2_configs() {
        if config.php4 {
            map.insert(config.name.to_string(), "php-broken-dep".to_string());
        } else if config.user_config {
            map.insert(config.name.to_string(), "mycnf-legacy".to_string());
        }
    }
    map
}

/// The assembled scenario.
pub struct MySqlScenario {
    /// The vendor (reference machine, registry, repository, diameter).
    pub vendor: Vendor,
    /// One agent per Table 2 machine, traces collected.
    pub agents: Vec<UserAgent>,
    /// The MySQL 5 upgrade with injected problems.
    pub upgrade: Upgrade,
    /// Ground-truth behaviours for scoring.
    pub behavior: BTreeMap<String, String>,
}

impl MySqlScenario {
    /// Builds the scenario with vendor parsers (Figure 6 configuration).
    pub fn with_full_parsers() -> Self {
        Self::build(full_registry(), 3)
    }

    /// Builds the scenario with Mirage parsers only and the given
    /// phase-2 diameter (Figure 7 configuration).
    pub fn with_mirage_parsers(diameter: usize) -> Self {
        Self::build(mirage_default_registry(), diameter)
    }

    fn build(registry: ParserRegistry, diameter: usize) -> Self {
        let repo = repository();
        let reference = vendor_reference(&repo);
        let vendor = Vendor::new(reference, repo)
            .with_registry(registry)
            .with_diameter(diameter);
        let mut agents = Vec::new();
        for config in table2_configs() {
            let machine = build_machine(&config, &vendor.repo);
            let mut agent = UserAgent::new(machine);
            agent.collect("mysqld", RunInput::new("startup-1"));
            agent.collect("mysqld", RunInput::new("startup-2"));
            agents.push(agent);
        }
        MySqlScenario {
            vendor,
            agents,
            upgrade: mysql5_upgrade(),
            behavior: behavior_map(),
        }
    }

    /// Computes the fleet's clustering inputs.
    pub fn fleet_inputs(&self) -> Vec<MachineInfo> {
        let classification = self
            .vendor
            .classify_reference("mysqld", &[RunInput::new("a"), RunInput::new("b")]);
        let reference = self.vendor.reference_fingerprint(&classification);
        self.agents
            .iter()
            .map(|a| a.clustering_input("mysqld", &self.vendor, &reference))
            .collect()
    }

    /// Runs the clustering and scores it against ground truth.
    pub fn cluster_and_score(&self) -> (Clustering, ClusteringScore) {
        let inputs = self.fleet_inputs();
        let clustering = self.vendor.cluster(&inputs);
        let score = ClusteringScore::compute(&clustering, &self.behavior);
        (clustering, score)
    }

    /// Reruns the clustering with the vendor ignoring all
    /// `/etc/mysql/my.cnf` items (the §4.2.1 cluster-merging discussion).
    pub fn cluster_ignoring_mycnf(&self) -> (Clustering, ClusteringScore) {
        let inputs = self.fleet_inputs();
        let engine = mirage_cluster::ClusterEngine::new(self.vendor.diameter)
            .with_importance(ImportanceFilter::new().drop_prefix(["/etc/mysql/my.cnf"]));
        let clustering = engine.cluster(&inputs);
        let score = ClusteringScore::compute(&clustering, &self.behavior);
        (clustering, score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_cluster::ClusterQuality;

    #[test]
    fn fleet_has_21_machines() {
        assert_eq!(table2_configs().len(), 21);
        let scenario = MySqlScenario::with_full_parsers();
        assert_eq!(scenario.agents.len(), 21);
    }

    #[test]
    fn figure6_full_parsers_sound_15_clusters() {
        let scenario = MySqlScenario::with_full_parsers();
        let (clustering, score) = scenario.cluster_and_score();
        clustering.validate_partition().unwrap();
        assert_eq!(score.misplaced, 0, "clustering must be sound");
        assert_eq!(
            clustering.len(),
            15,
            "paper: 15 clusters; got {:#?}",
            clustering
                .clusters
                .iter()
                .map(|c| c.members.clone())
                .collect::<Vec<_>>()
        );
        assert_eq!(score.unnecessary_clusters, 12, "paper: C = 12");
        assert_eq!(score.quality(), ClusterQuality::Sound);
        // The two identical Ubuntu machines share a cluster.
        let base = clustering.cluster_of("ubt-ms4").unwrap();
        assert!(base.contains("ubt-ms4(2)"));
        // Comment-only edits cluster with the standard config.
        let withcfg = clustering.cluster_of("ubt-ms4/withconfig").unwrap();
        assert!(withcfg.contains("ubt-ms4/comment-added"));
        assert!(withcfg.contains("ubt-ms4/comment-deleted"));
        // PHP-problem machines never share a cluster with healthy ones.
        let php = clustering.cluster_of("ubt-ms4/php4").unwrap();
        for m in &php.members {
            assert_eq!(
                scenario.behavior.get(m).map(String::as_str),
                Some("php-broken-dep")
            );
        }
    }

    #[test]
    fn figure7_mirage_parsers_d3_w2() {
        let scenario = MySqlScenario::with_mirage_parsers(3);
        let (clustering, score) = scenario.cluster_and_score();
        clustering.validate_partition().unwrap();
        assert_eq!(score.misplaced, 2, "paper: w = 2 at diameter 3");
        // The PHP machines are still clustered correctly (all-php
        // clusters).
        let php = clustering.cluster_of("ubt-ms4/php4").unwrap();
        for m in &php.members {
            assert_eq!(
                scenario.behavior.get(m).map(String::as_str),
                Some("php-broken-dep")
            );
        }
    }

    #[test]
    fn figure7_diameter_zero_is_sound_but_fragmented() {
        let scenario = MySqlScenario::with_mirage_parsers(0);
        let (clustering, score) = scenario.cluster_and_score();
        assert_eq!(score.misplaced, 0, "d = 0 separates the benign diffs too");
        let (_, d3_score) = MySqlScenario::with_mirage_parsers(3).cluster_and_score();
        let d3_clusters = d3_score.clusters;
        assert!(
            clustering.len() > d3_clusters,
            "d = 0 must create more clusters than d = 3"
        );
    }

    #[test]
    fn mycnf_importance_merge_keeps_problems_separate() {
        let scenario = MySqlScenario::with_full_parsers();
        let (full, full_score) = scenario.cluster_and_score();
        let (merged, merged_score) = scenario.cluster_ignoring_mycnf();
        assert!(merged.len() < full.len(), "ignoring my.cnf merges clusters");
        assert_eq!(merged_score.misplaced, 0, "problems remain separated");
        assert_eq!(full_score.misplaced, 0);
        // userconfig machines (the my.cnf problem) still isolated.
        let user = merged.cluster_of("ubt-ms4/userconfig").unwrap();
        for m in &user.members {
            assert_eq!(
                scenario.behavior.get(m).map(String::as_str),
                Some("mycnf-legacy")
            );
        }
    }

    #[test]
    fn problems_trigger_on_the_right_machines() {
        let repo = repository();
        let upgrade = mysql5_upgrade();
        for config in table2_configs() {
            let machine = build_machine(&config, &repo);
            // Problems evaluate against the post-upgrade state; simulate
            // by checking the trigger on a sandboxed upgrade.
            let mut sandbox = mirage_testing::Sandbox::boot(&machine);
            sandbox.apply_upgrade(&repo, &upgrade).unwrap();
            let active: Vec<String> = upgrade
                .active_problems(&sandbox.machine)
                .into_iter()
                .map(|p| p.id.0.clone())
                .collect();
            if config.php4 {
                assert!(
                    active.contains(&"php-broken-dep".to_string()),
                    "{}",
                    config.name
                );
            }
            if config.user_config {
                assert!(
                    active.contains(&"mycnf-legacy".to_string()),
                    "{}",
                    config.name
                );
            }
            if !config.php4 && !config.user_config {
                assert!(
                    active.is_empty(),
                    "{} should be healthy: {active:?}",
                    config.name
                );
            }
        }
    }
}
