//! Faithful reconstructions of the paper's evaluation scenarios.
//!
//! Each module rebuilds one piece of the paper's §2/§4 evaluation on top
//! of the simulated-environment substrate:
//!
//! * [`survey`] — the 50-administrator survey dataset behind Figures
//!   1–3, constructed to match every aggregate the paper reports
//!   (frequencies, reason ranks, failure-rate histogram with average
//!   8.6 % and median 5 %, and the headline percentages).
//! * [`apps`] — the four application models (Firefox, Apache, PHP,
//!   MySQL) behind Table 1's heuristic-effectiveness numbers.
//! * [`mysql`] — the 21-machine MySQL fleet of Table 2 with the real
//!   PHP broken-dependency problem \[24\] and the `.my.cnf`
//!   legacy-configuration problem, behind Figures 6 and 7.
//! * [`firefox`] — the 6-machine Firefox fleet of Table 3 with the
//!   Firefox 2.0 legacy-preferences problem \[11\], behind Figures 8
//!   and 9.
//! * [`deployment`] — the 100 000-machine, 20-cluster simulation
//!   scenarios behind Figures 10 and 11 and the §4.3.2 upgrade-overhead
//!   analysis.
//! * [`apache`] — two more §2.3 problem case studies run end to end:
//!   the Apache 1.3.26 Include/ACL legacy-configuration problem \[3\]
//!   and the SlimServer 6.5.1 improper-packaging problem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub mod apache;
pub mod apps;
pub mod deployment;
pub mod firefox;
pub mod mysql;
pub mod survey;
