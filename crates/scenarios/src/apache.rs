//! Two more of the paper's real-world upgrade problems (§2.3), end to
//! end: the Apache 1.3.24→1.3.26 Include/ACL incompatibility \[3\]
//! ("incompatibility with legacy configurations") and the
//! SlimServer 6.5.1 database omission ("improper packaging").
//!
//! * **Apache**: configurations that `Include` an access-control file
//!   stop working after the 1.3.26 upgrade; the admin had to move the
//!   included contents into the main configuration file. Machines with
//!   the `Include` directive form their own cluster (one differing
//!   parsed item under the vendor's `httpd.conf` parser), so staging
//!   confines the failure to that cluster's representative.
//! * **SlimServer**: the 6.5.1 package did not upgrade the database, so
//!   the server "would not start due to a changed database format" —
//!   modelled as a trigger on the *absence* of the new-format database
//!   file, which the corrected package ships.

use std::collections::BTreeMap;

use mirage_cluster::{Clustering, ClusteringScore};
use mirage_core::{UserAgent, Vendor};
use mirage_env::{
    ApplicationSpec, EnvPredicate, File, FileContent, MachineBuilder, Package, ProblemEffect,
    ProblemSpec, Repository, RunInput, Upgrade, Version, VersionReq,
};
use mirage_fingerprint::parsers::{mirage_default_registry, HttpdConfParser};
use mirage_fingerprint::{Glob, ParserRegistry, ResourceKind};

/// Path of the main Apache configuration file.
pub const HTTPD_CONF: &str = "/etc/apache/httpd.conf";
/// Path of the included access-control file.
pub const ACL_CONF: &str = "/etc/apache/acl.conf";

fn httpd_conf(with_include: bool, keepalive: Option<&str>) -> File {
    let mut lines = vec![
        "# Apache HTTP server configuration".to_string(),
        "ServerRoot /srv/apache".to_string(),
        "Listen 80".to_string(),
    ];
    if let Some(v) = keepalive {
        lines.push(format!("KeepAlive {v}"));
    }
    lines.push("<Directory /srv/www>".to_string());
    lines.push("Options Indexes".to_string());
    lines.push("</Directory>".to_string());
    if with_include {
        lines.push(format!("Include {ACL_CONF}"));
    }
    File::new(HTTPD_CONF, ResourceKind::Config, FileContent::Text(lines)).env_resource()
}

/// The Apache repository: 1.3.24 installed everywhere.
pub fn repository() -> Repository {
    let mut repo = Repository::new();
    repo.publish(
        Package::new("apache", Version::new(1, 3, 24)).with_file(File::executable(
            "/usr/sbin/httpd",
            "httpd",
            1324,
        )),
    );
    repo
}

/// The Apache application spec.
pub fn apache_spec() -> ApplicationSpec {
    ApplicationSpec::new("apache", "apache", "/usr/sbin/httpd")
        .reads(HTTPD_CONF)
        .probes(ACL_CONF)
}

/// One fleet machine: `include_acl` reproduces the problem
/// configuration; `keepalive` is a benign config variation.
pub fn build_machine(
    name: &str,
    include_acl: bool,
    keepalive: Option<&str>,
    repo: &Repository,
) -> mirage_env::Machine {
    let mut builder = MachineBuilder::new(name)
        .install(repo, "apache", VersionReq::Any)
        .app(apache_spec())
        .file(httpd_conf(include_acl, keepalive));
    if include_acl {
        builder = builder.file(
            File::new(
                ACL_CONF,
                ResourceKind::Config,
                FileContent::Text(vec![
                    "<Directory /srv/www/private>".into(),
                    "Order deny,allow".into(),
                    "</Directory>".into(),
                ]),
            )
            .env_resource(),
        );
    }
    builder.build()
}

/// The 1.3.26 upgrade with the Include/ACL problem \[3\].
pub fn acl_upgrade() -> Upgrade {
    Upgrade::new(
        Package::new("apache", Version::new(1, 3, 26)).with_file(File::executable(
            "/usr/sbin/httpd",
            "httpd",
            1326,
        )),
        vec![ProblemSpec::new(
            "acl-include",
            "1.3.26 breaks configurations that Include an ACL file",
            EnvPredicate::FileContains {
                path: HTTPD_CONF.into(),
                needle: format!("Include {ACL_CONF}"),
            },
            ProblemEffect::FailToStart {
                app: "apache".into(),
            },
        )],
    )
}

/// The vendor registry with the `httpd.conf` parser.
pub fn full_registry() -> ParserRegistry {
    let mut registry = mirage_default_registry();
    registry.register_vendor_glob(Glob::new("/etc/apache/**"), Box::new(HttpdConfParser));
    registry
}

/// The assembled Apache scenario: 8 machines, 2 with the ACL include.
pub struct ApacheScenario {
    /// The vendor.
    pub vendor: Vendor,
    /// The fleet agents.
    pub agents: Vec<UserAgent>,
    /// The 1.3.26 upgrade.
    pub upgrade: Upgrade,
    /// Ground-truth behaviours.
    pub behavior: BTreeMap<String, String>,
}

impl ApacheScenario {
    /// Builds the scenario.
    pub fn new() -> Self {
        let repo = repository();
        let reference = build_machine("vendor-reference", false, None, &repo);
        let vendor = Vendor::new(reference, repo)
            .with_registry(full_registry())
            .with_diameter(0);
        let mut agents = Vec::new();
        let mut behavior = BTreeMap::new();
        for i in 0..8 {
            let include_acl = i >= 6;
            let keepalive = if (3..6).contains(&i) {
                Some("On")
            } else {
                None
            };
            let name = format!("ap{i}");
            let machine = build_machine(&name, include_acl, keepalive, &vendor.repo);
            if include_acl {
                behavior.insert(name.clone(), "acl-include".to_string());
            }
            let mut agent = UserAgent::new(machine);
            agent.collect("apache", RunInput::new("serve-1"));
            agent.collect("apache", RunInput::new("serve-2"));
            agents.push(agent);
        }
        ApacheScenario {
            vendor,
            agents,
            upgrade: acl_upgrade(),
            behavior,
        }
    }

    /// Clusters the fleet and scores it.
    pub fn cluster_and_score(&self) -> (Clustering, ClusteringScore) {
        let classification = self
            .vendor
            .classify_reference("apache", &[RunInput::new("a"), RunInput::new("b")]);
        let reference = self.vendor.reference_fingerprint(&classification);
        let inputs: Vec<_> = self
            .agents
            .iter()
            .map(|a| a.clustering_input("apache", &self.vendor, &reference))
            .collect();
        let clustering = self.vendor.cluster(&inputs);
        let score = ClusteringScore::compute(&clustering, &self.behavior);
        (clustering, score)
    }
}

impl Default for ApacheScenario {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds the SlimServer improper-packaging scenario: the 6.5.1 package
/// forgets to upgrade the database, so the server cannot start until
/// the corrected package ships the new-format file.
pub fn slimserver_scenario() -> (Repository, mirage_env::Machine, Upgrade, Upgrade) {
    let mut repo = Repository::new();
    repo.publish(
        Package::new("slimserver", Version::new(6, 5, 0))
            .with_file(File::executable("/usr/bin/slimserver", "slimserver", 650))
            .with_file(File::data("/srv/slimserver/library.db", 1, 512).env_resource()),
    );
    let machine = MachineBuilder::new("media-host")
        .install(&repo, "slimserver", VersionReq::Any)
        .app(
            ApplicationSpec::new("slimserver", "slimserver", "/usr/bin/slimserver")
                .reads("/srv/slimserver/library.db")
                .probes("/srv/slimserver/library-v2.db"),
        )
        .build();
    // 6.5.1: ships the new server but NOT the new-format database.
    let broken = Upgrade::new(
        Package::new("slimserver", Version::new(6, 5, 1)).with_file(File::executable(
            "/usr/bin/slimserver",
            "slimserver",
            651,
        )),
        vec![ProblemSpec::new(
            "missing-db-upgrade",
            "6.5.1 requires the v2 database format the package never ships",
            EnvPredicate::FileAbsent("/srv/slimserver/library-v2.db".into()),
            ProblemEffect::FailToStart {
                app: "slimserver".into(),
            },
        )],
    );
    // 6.5.2: the corrected package includes the migrated database, so the
    // problem's trigger can no longer hold.
    let fixed = Upgrade::new(
        Package::new("slimserver", Version::new(6, 5, 2))
            .with_file(File::executable("/usr/bin/slimserver", "slimserver", 652))
            .with_file(File::data("/srv/slimserver/library-v2.db", 2, 512).env_resource()),
        vec![broken.problems[0].clone()],
    );
    (repo, machine, broken, fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_core::{Campaign, ProtocolChoice, RolloutPlan, RolloutStrategy};
    use mirage_deploy::DeployPlan;
    use mirage_testing::{FailureKind, Validator};

    #[test]
    fn acl_machines_cluster_separately() {
        let scenario = ApacheScenario::new();
        let (clustering, score) = scenario.cluster_and_score();
        clustering.validate_partition().unwrap();
        // Three groups: plain, keepalive, acl-include.
        assert_eq!(clustering.len(), 3);
        assert_eq!(score.misplaced, 0);
        let acl = clustering.cluster_of("ap6").unwrap();
        assert!(acl.contains("ap7"));
        assert_eq!(acl.len(), 2);
    }

    #[test]
    fn acl_campaign_confines_the_failure() {
        let scenario = ApacheScenario::new();
        let upgrade = scenario.upgrade.clone();
        let (clustering, _) = scenario.cluster_and_score();
        let plan = RolloutPlan::new(
            DeployPlan::from_clustering(&clustering, 1),
            RolloutStrategy::Staged { waves: 1 },
        );
        let mut campaign = Campaign::new(scenario.vendor, scenario.agents);
        let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
        assert!(result.converged(8));
        assert_eq!(result.failed_validations, 1, "one representative only");
        let groups = campaign.urr.failure_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].machines.len(), 1);
    }

    #[test]
    fn slimserver_packaging_problem_and_corrected_package() {
        let (repo, machine, broken, fixed) = slimserver_scenario();
        let mut agent = UserAgent::new(machine);
        agent.collect("slimserver", RunInput::new("scan"));
        // 6.5.1 fails validation: the server cannot start without the
        // v2 database the package never shipped.
        let report = Validator::new().validate(&agent.machine, &repo, &broken, &agent.runs);
        assert!(!report.passed());
        assert!(matches!(
            report.first_failure().unwrap().1,
            FailureKind::Crash { .. } | FailureKind::Integration { .. }
        ));
        // 6.5.2 ships the database: the very same problem spec can no
        // longer trigger, and validation passes.
        let report = Validator::new().validate(&agent.machine, &repo, &fixed, &agent.runs);
        assert!(report.passed(), "{report:?}");
        // The live machine integrates cleanly.
        assert!(agent.integrate(&repo, &fixed));
        assert!(agent.machine.fs.contains("/srv/slimserver/library-v2.db"));
    }
}
