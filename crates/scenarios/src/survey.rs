//! The 50-administrator upgrade survey (paper §2, Figures 1–3).
//!
//! The paper characterises software upgrades through an online survey of
//! 50 system administrators. The raw responses were never published, so
//! this module carries a *deterministic synthetic dataset* constructed to
//! match every aggregate the paper reports:
//!
//! * 82 % with more than five years of experience; 78 % managing more
//!   than 20 machines; 48 Linux/UNIX, 29 Windows, 12 macOS
//!   administrators (multi-select);
//! * Figure 1 — 90 % upgrade at least monthly;
//! * reason ranks: security 1.6, bug fix 2.2, user request 3.3, new
//!   feature 3.5;
//! * Figure 2 — 70 % refrain from installing upgrades, 70 % have a
//!   testing strategy (25 testing environment, 6 staged roll-out,
//!   4 identical-configuration testbeds, 2 rely on Internet reports);
//! * Figure 3 — failure-rate histogram with average 8.6 %, median 5 %,
//!   66 % answering 5–10 %;
//! * failure-cause ranks: broken dependency 2.5, removed behaviour 2.5,
//!   buggy upgrade 2.6, legacy configuration 3.1, improper packaging
//!   3.2;
//! * 48 % hit problems that passed initial testing, 18 % experienced
//!   catastrophic failures, 50 % consistently report problems, 86 % use
//!   the OS-packaged upgrade tooling.
//!
//! The aggregation code below regenerates Figures 1–3 from the rows, so
//! the figures are *computed*, not transcribed.

use std::collections::BTreeMap;

/// Administration experience buckets (Figure 1 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Experience {
    /// 0–2 years.
    Y0to2,
    /// 2–5 years.
    Y2to5,
    /// 5–10 years.
    Y5to10,
    /// More than 10 years.
    Y10plus,
}

impl Experience {
    /// All buckets in legend order.
    pub const ALL: [Experience; 4] = [
        Experience::Y0to2,
        Experience::Y2to5,
        Experience::Y5to10,
        Experience::Y10plus,
    ];

    /// Returns `true` for more than five years of experience.
    pub fn more_than_five_years(self) -> bool {
        matches!(self, Experience::Y5to10 | Experience::Y10plus)
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Experience::Y0to2 => "0-2",
            Experience::Y2to5 => "2-5",
            Experience::Y5to10 => "5-10",
            Experience::Y10plus => "more than 10",
        }
    }
}

/// Upgrade frequency buckets (Figure 1 y-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Frequency {
    /// More than once a week.
    MoreThanWeekly,
    /// Once a week.
    Weekly,
    /// Once every couple of weeks.
    BiWeekly,
    /// Once a month.
    Monthly,
    /// Once per quarter.
    Quarterly,
    /// Once per semester.
    SemiAnnually,
    /// Once a year.
    Annually,
    /// Not even once a year.
    LessThanAnnually,
}

impl Frequency {
    /// All buckets in Figure 1 order.
    pub const ALL: [Frequency; 8] = [
        Frequency::MoreThanWeekly,
        Frequency::Weekly,
        Frequency::BiWeekly,
        Frequency::Monthly,
        Frequency::Quarterly,
        Frequency::SemiAnnually,
        Frequency::Annually,
        Frequency::LessThanAnnually,
    ];

    /// Returns `true` for at least monthly.
    pub fn at_least_monthly(self) -> bool {
        matches!(
            self,
            Frequency::MoreThanWeekly
                | Frequency::Weekly
                | Frequency::BiWeekly
                | Frequency::Monthly
        )
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Frequency::MoreThanWeekly => "More than once a week",
            Frequency::Weekly => "Once a week",
            Frequency::BiWeekly => "Once every couple of weeks",
            Frequency::Monthly => "Once a month",
            Frequency::Quarterly => "Once per quarter",
            Frequency::SemiAnnually => "Once per semester",
            Frequency::Annually => "Once a year",
            Frequency::LessThanAnnually => "Not even once a year",
        }
    }
}

/// Testing strategy kinds (§2.2 "Testing strategies").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// No strategy at all.
    None,
    /// A dedicated testing environment.
    TestingEnvironment {
        /// Whether the testbed mirrors production configurations.
        identical_config: bool,
    },
    /// Test on a few machines, then widen (manual staging).
    StagedRollout,
    /// Rely on reports of successful upgrades on the Internet.
    InternetReports,
    /// Some other strategy.
    Other,
}

/// Per-reason importance ranks (1 = most important, 5 = least).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReasonRanks {
    /// Bug fixes.
    pub bug_fix: u8,
    /// Security patches.
    pub security: u8,
    /// New features.
    pub new_feature: u8,
    /// User requests.
    pub user_request: u8,
}

/// Per-cause prevalence ranks (1 = most prevalent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CauseRanks {
    /// Broken dependencies.
    pub broken_dependency: u8,
    /// Removed or altered behaviour.
    pub removed_behavior: u8,
    /// Bugs in the upgrade itself.
    pub buggy_upgrade: u8,
    /// Incompatibility with legacy configurations.
    pub legacy_config: u8,
    /// Improper packaging.
    pub improper_packaging: u8,
}

/// One survey respondent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Respondent {
    /// Respondent index (0–49).
    pub id: usize,
    /// Administration experience.
    pub experience: Experience,
    /// Manages more than 20 machines.
    pub manages_over_20: bool,
    /// Administers Linux or another UNIX-like system.
    pub os_linux: bool,
    /// Administers Windows systems.
    pub os_windows: bool,
    /// Administers macOS systems.
    pub os_mac: bool,
    /// How often they upgrade.
    pub frequency: Frequency,
    /// Reason importance ranks.
    pub reasons: ReasonRanks,
    /// Refrains from installing upgrades.
    pub refrains: bool,
    /// Testing strategy.
    pub strategy: Strategy,
    /// Perceived upgrade failure rate (percent).
    pub failure_rate_pct: u8,
    /// Experienced problems that passed initial testing.
    pub problems_past_testing: bool,
    /// Experienced a catastrophic upgrade failure.
    pub catastrophic_failure: bool,
    /// Consistently reports problems to the vendor.
    pub reports_to_vendor: bool,
    /// Uses the OS-packaged software to install upgrades.
    pub uses_os_packaging: bool,
    /// Failure-cause prevalence ranks.
    pub causes: CauseRanks,
}

/// Figure 1 cell counts: `frequency → [count per experience bucket]`.
fn figure1_matrix() -> Vec<(Frequency, [usize; 4])> {
    vec![
        (Frequency::MoreThanWeekly, [0, 1, 4, 3]),
        (Frequency::Weekly, [1, 1, 4, 4]),
        (Frequency::BiWeekly, [1, 1, 5, 5]),
        (Frequency::Monthly, [2, 2, 5, 6]),
        (Frequency::Quarterly, [0, 0, 2, 1]),
        (Frequency::SemiAnnually, [0, 0, 1, 0]),
        (Frequency::Annually, [0, 0, 0, 1]),
        (Frequency::LessThanAnnually, [0, 0, 0, 0]),
    ]
}

/// Figure 3 histogram: `(percent, count)`.
fn figure3_histogram() -> Vec<(u8, usize)> {
    vec![
        (1, 10),
        (5, 20),
        (10, 13),
        (20, 2),
        (25, 2),
        (30, 2),
        (40, 1),
        (50, 0),
        (60, 0),
        (80, 0),
        (90, 0),
        (100, 0),
    ]
}

fn nth_from_counts<T: Copy>(counts: &[(T, usize)], n: usize) -> T {
    let mut remaining = n;
    for (value, count) in counts {
        if remaining < *count {
            return *value;
        }
        remaining -= count;
    }
    counts.last().expect("non-empty counts").0
}

/// Builds the deterministic 50-respondent dataset.
pub fn dataset() -> Vec<Respondent> {
    // Flatten the Figure 1 matrix into per-respondent (freq, exp) pairs.
    let mut freq_exp: Vec<(Frequency, Experience)> = Vec::new();
    for (freq, by_exp) in figure1_matrix() {
        for (e, count) in Experience::ALL.iter().zip(by_exp) {
            for _ in 0..count {
                freq_exp.push((freq, *e));
            }
        }
    }
    assert_eq!(freq_exp.len(), 50);

    // Figure 3 failure-rate values, one per respondent.
    let fig3 = figure3_histogram();

    // Reason ranks chosen so the averages are exactly 1.6 / 2.2 / 3.5 /
    // 3.3 (security / bug fix / new feature / user request).
    let security_rank = |i: usize| -> u8 {
        // 25×1 + 20×2 + 5×3 = 80 → 1.6.
        if i < 25 {
            1
        } else if i < 45 {
            2
        } else {
            3
        }
    };
    let bug_fix_rank = |i: usize| -> u8 {
        // 10×1 + 25×2 + 10×3 + 5×4 = 110 → 2.2.
        if i < 10 {
            1
        } else if i < 35 {
            2
        } else if i < 45 {
            3
        } else {
            4
        }
    };
    let user_request_rank = |i: usize| -> u8 {
        // 5×2 + 25×3 + 20×4 = 165 → 3.3.
        if i < 5 {
            2
        } else if i < 30 {
            3
        } else {
            4
        }
    };
    let new_feature_rank = |i: usize| -> u8 {
        // 25×3 + 25×4 = 175 → 3.5.
        if i < 25 {
            3
        } else {
            4
        }
    };
    // Cause ranks: 2.5 / 2.5 / 2.6 / 3.1 / 3.2.
    let broken_dep_rank = |i: usize| -> u8 {
        if i < 25 {
            2
        } else {
            3
        }
    }; // 125
    let removed_rank = |i: usize| -> u8 {
        if i < 25 {
            3
        } else {
            2
        }
    }; // 125
    let buggy_rank = |i: usize| -> u8 {
        if i < 20 {
            2
        } else {
            3
        }
    }; // 130
    let legacy_rank = |i: usize| -> u8 {
        // 20×2 + 5×3 + 25×4 = 155 → 3.1.
        if i < 20 {
            2
        } else if i < 25 {
            3
        } else {
            4
        }
    };
    let packaging_rank = |i: usize| -> u8 {
        // 10×2 + 20×3 + 20×4 = 160 → 3.2.
        if i < 10 {
            2
        } else if i < 30 {
            3
        } else {
            4
        }
    };

    // Figure 2 cross-tab: refrain ∧ strategy 25, refrain ∧ none 10,
    // eager ∧ strategy 10, eager ∧ none 5.
    let refrains = |i: usize| i < 35;
    // Strategy presence: indexes 0..25 and 35..45 (see the cross-tab above).

    // Strategy kinds among the 35 with one: 25 testing environment
    // (4 of them with identical configs), 6 staged, 2 internet, 2 other.
    let strategy = |i: usize| -> Strategy {
        // Indexes with a strategy, in order: 0..25, 35..45.
        let strategists: Vec<usize> = (0..25).chain(35..45).collect();
        match strategists.iter().position(|&s| s == i) {
            None => Strategy::None,
            Some(pos) => {
                if pos < 25 {
                    Strategy::TestingEnvironment {
                        identical_config: pos < 4,
                    }
                } else if pos < 31 {
                    Strategy::StagedRollout
                } else if pos < 33 {
                    Strategy::InternetReports
                } else {
                    Strategy::Other
                }
            }
        }
    };

    (0..50)
        .map(|i| {
            let (frequency, experience) = freq_exp[i];
            Respondent {
                id: i,
                experience,
                manages_over_20: i < 39, // 78 %
                os_linux: i < 48,        // 48 respondents
                os_windows: i % 50 < 29, // 29 respondents
                os_mac: i >= 38,         // 12 respondents
                frequency,
                reasons: ReasonRanks {
                    bug_fix: bug_fix_rank(i),
                    security: security_rank(i),
                    new_feature: new_feature_rank(i),
                    user_request: user_request_rank(i),
                },
                refrains: refrains(i),
                strategy: strategy(i),
                failure_rate_pct: nth_from_counts(&fig3, i),
                problems_past_testing: i % 25 < 12, // 24 = 48 %
                catastrophic_failure: i % 50 < 9,   // 18 %
                reports_to_vendor: i % 2 == 0,      // 50 %
                uses_os_packaging: i < 43,          // 86 %
                causes: CauseRanks {
                    broken_dependency: broken_dep_rank(i),
                    removed_behavior: removed_rank(i),
                    buggy_upgrade: buggy_rank(i),
                    legacy_config: legacy_rank(i),
                    improper_packaging: packaging_rank(i),
                },
            }
        })
        .collect()
}

/// Figure 1: upgrade-frequency counts, stacked by experience.
pub fn figure1(rows: &[Respondent]) -> Vec<(Frequency, [usize; 4])> {
    Frequency::ALL
        .iter()
        .map(|f| {
            let mut per_exp = [0usize; 4];
            for r in rows.iter().filter(|r| r.frequency == *f) {
                let idx = Experience::ALL
                    .iter()
                    .position(|e| *e == r.experience)
                    .expect("bucket");
                per_exp[idx] += 1;
            }
            (*f, per_exp)
        })
        .collect()
}

/// Figure 2: `(refrains, has strategy) → count`.
pub fn figure2(rows: &[Respondent]) -> BTreeMap<(bool, bool), usize> {
    let mut table = BTreeMap::new();
    for r in rows {
        let has = !matches!(r.strategy, Strategy::None);
        *table.entry((r.refrains, has)).or_insert(0) += 1;
    }
    table
}

/// Figure 3: failure-rate histogram `(percent, count)` over the paper's
/// x-axis buckets.
pub fn figure3(rows: &[Respondent]) -> Vec<(u8, usize)> {
    const BUCKETS: [u8; 12] = [1, 5, 10, 20, 25, 30, 40, 50, 60, 80, 90, 100];
    BUCKETS
        .iter()
        .map(|b| (*b, rows.iter().filter(|r| r.failure_rate_pct == *b).count()))
        .collect()
}

/// Average reason ranks `(security, bug fix, user request, new feature)`.
pub fn reason_rank_averages(rows: &[Respondent]) -> (f64, f64, f64, f64) {
    let n = rows.len() as f64;
    (
        rows.iter().map(|r| r.reasons.security as f64).sum::<f64>() / n,
        rows.iter().map(|r| r.reasons.bug_fix as f64).sum::<f64>() / n,
        rows.iter()
            .map(|r| r.reasons.user_request as f64)
            .sum::<f64>()
            / n,
        rows.iter()
            .map(|r| r.reasons.new_feature as f64)
            .sum::<f64>()
            / n,
    )
}

/// Average cause ranks in the paper's order: broken dependency, removed
/// behaviour, buggy upgrade, legacy configuration, improper packaging.
pub fn cause_rank_averages(rows: &[Respondent]) -> [f64; 5] {
    let n = rows.len() as f64;
    [
        rows.iter()
            .map(|r| r.causes.broken_dependency as f64)
            .sum::<f64>()
            / n,
        rows.iter()
            .map(|r| r.causes.removed_behavior as f64)
            .sum::<f64>()
            / n,
        rows.iter()
            .map(|r| r.causes.buggy_upgrade as f64)
            .sum::<f64>()
            / n,
        rows.iter()
            .map(|r| r.causes.legacy_config as f64)
            .sum::<f64>()
            / n,
        rows.iter()
            .map(|r| r.causes.improper_packaging as f64)
            .sum::<f64>()
            / n,
    ]
}

/// Headline survey statistics (§2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyStats {
    /// Respondent count.
    pub respondents: usize,
    /// Fraction with more than five years of experience.
    pub experienced_fraction: f64,
    /// Fraction managing more than 20 machines.
    pub large_fleet_fraction: f64,
    /// Linux/UNIX administrator count.
    pub linux_admins: usize,
    /// Windows administrator count.
    pub windows_admins: usize,
    /// macOS administrator count.
    pub mac_admins: usize,
    /// Fraction upgrading at least monthly.
    pub monthly_or_more: f64,
    /// Fraction that refrain from upgrading.
    pub refrain_fraction: f64,
    /// Fraction with a testing strategy.
    pub strategy_fraction: f64,
    /// Average perceived failure rate (percent).
    pub failure_rate_avg: f64,
    /// Median perceived failure rate (percent).
    pub failure_rate_median: f64,
    /// Fraction answering 5–10 % failure rate.
    pub failure_rate_5_to_10: f64,
    /// Fraction with problems past initial testing.
    pub problems_past_testing: f64,
    /// Fraction with catastrophic failures.
    pub catastrophic: f64,
    /// Fraction consistently reporting to the vendor.
    pub reports_to_vendor: f64,
    /// Fraction using OS-packaged upgrade tooling.
    pub uses_os_packaging: f64,
}

/// Computes the headline statistics.
pub fn stats(rows: &[Respondent]) -> SurveyStats {
    let n = rows.len();
    let frac = |count: usize| count as f64 / n as f64;
    let mut rates: Vec<u8> = rows.iter().map(|r| r.failure_rate_pct).collect();
    rates.sort_unstable();
    let median = if n.is_multiple_of(2) {
        (rates[n / 2 - 1] as f64 + rates[n / 2] as f64) / 2.0
    } else {
        rates[n / 2] as f64
    };
    SurveyStats {
        respondents: n,
        experienced_fraction: frac(
            rows.iter()
                .filter(|r| r.experience.more_than_five_years())
                .count(),
        ),
        large_fleet_fraction: frac(rows.iter().filter(|r| r.manages_over_20).count()),
        linux_admins: rows.iter().filter(|r| r.os_linux).count(),
        windows_admins: rows.iter().filter(|r| r.os_windows).count(),
        mac_admins: rows.iter().filter(|r| r.os_mac).count(),
        monthly_or_more: frac(
            rows.iter()
                .filter(|r| r.frequency.at_least_monthly())
                .count(),
        ),
        refrain_fraction: frac(rows.iter().filter(|r| r.refrains).count()),
        strategy_fraction: frac(
            rows.iter()
                .filter(|r| !matches!(r.strategy, Strategy::None))
                .count(),
        ),
        failure_rate_avg: rows.iter().map(|r| r.failure_rate_pct as f64).sum::<f64>() / n as f64,
        failure_rate_median: median,
        failure_rate_5_to_10: frac(
            rows.iter()
                .filter(|r| (5..=10).contains(&r.failure_rate_pct))
                .count(),
        ),
        problems_past_testing: frac(rows.iter().filter(|r| r.problems_past_testing).count()),
        catastrophic: frac(rows.iter().filter(|r| r.catastrophic_failure).count()),
        reports_to_vendor: frac(rows.iter().filter(|r| r.reports_to_vendor).count()),
        uses_os_packaging: frac(rows.iter().filter(|r| r.uses_os_packaging).count()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64) {
        assert!(
            (actual - expected).abs() < 1e-9,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn dataset_matches_demographics() {
        let rows = dataset();
        let s = stats(&rows);
        assert_eq!(s.respondents, 50);
        assert_close(s.experienced_fraction, 0.82);
        assert_close(s.large_fleet_fraction, 0.78);
        assert_eq!(s.linux_admins, 48);
        assert_eq!(s.windows_admins, 29);
        assert_eq!(s.mac_admins, 12);
    }

    #[test]
    fn figure1_matches_paper() {
        let rows = dataset();
        let fig = figure1(&rows);
        let total: usize = fig.iter().map(|(_, c)| c.iter().sum::<usize>()).sum();
        assert_eq!(total, 50);
        assert_close(stats(&rows).monthly_or_more, 0.90);
        // Spot-check a cell against the construction matrix.
        assert_eq!(fig[0].0, Frequency::MoreThanWeekly);
        assert_eq!(fig[0].1.iter().sum::<usize>(), 8);
    }

    #[test]
    fn reason_ranks_match_paper() {
        let rows = dataset();
        let (security, bug_fix, user_request, new_feature) = reason_rank_averages(&rows);
        assert_close(security, 1.6);
        assert_close(bug_fix, 2.2);
        assert_close(user_request, 3.3);
        assert_close(new_feature, 3.5);
    }

    #[test]
    fn figure2_matches_paper() {
        let rows = dataset();
        let fig = figure2(&rows);
        assert_eq!(fig[&(true, true)], 25);
        assert_eq!(fig[&(true, false)], 10);
        assert_eq!(fig[&(false, true)], 10);
        assert_eq!(fig[&(false, false)], 5);
        let s = stats(&rows);
        assert_close(s.refrain_fraction, 0.70);
        assert_close(s.strategy_fraction, 0.70);
    }

    #[test]
    fn strategies_match_paper_counts() {
        let rows = dataset();
        let env = rows
            .iter()
            .filter(|r| matches!(r.strategy, Strategy::TestingEnvironment { .. }))
            .count();
        let identical = rows
            .iter()
            .filter(|r| {
                matches!(
                    r.strategy,
                    Strategy::TestingEnvironment {
                        identical_config: true
                    }
                )
            })
            .count();
        let staged = rows
            .iter()
            .filter(|r| matches!(r.strategy, Strategy::StagedRollout))
            .count();
        let internet = rows
            .iter()
            .filter(|r| matches!(r.strategy, Strategy::InternetReports))
            .count();
        assert_eq!(env, 25);
        assert_eq!(identical, 4);
        assert_eq!(staged, 6);
        assert_eq!(internet, 2);
    }

    #[test]
    fn figure3_matches_paper() {
        let rows = dataset();
        let s = stats(&rows);
        assert_close(s.failure_rate_avg, 8.6);
        assert_close(s.failure_rate_median, 5.0);
        assert_close(s.failure_rate_5_to_10, 0.66);
        let fig = figure3(&rows);
        assert_eq!(fig.iter().map(|(_, c)| c).sum::<usize>(), 50);
        assert_eq!(fig[1], (5, 20));
    }

    #[test]
    fn cause_ranks_match_paper() {
        let rows = dataset();
        let [broken, removed, buggy, legacy, packaging] = cause_rank_averages(&rows);
        assert_close(broken, 2.5);
        assert_close(removed, 2.5);
        assert_close(buggy, 2.6);
        assert_close(legacy, 3.1);
        assert_close(packaging, 3.2);
    }

    #[test]
    fn remaining_headline_stats() {
        let s = stats(&dataset());
        assert_close(s.problems_past_testing, 0.48);
        assert_close(s.catastrophic, 0.18);
        assert_close(s.reports_to_vendor, 0.50);
        assert_close(s.uses_os_packaging, 0.86);
    }

    #[test]
    fn dataset_is_deterministic() {
        assert_eq!(dataset(), dataset());
    }
}
