//! The Firefox clustering evaluation (paper §4.2.2, Table 3, Figures 8–9).
//!
//! Six machines: three fresh 1.5.0.7 installations (one with Java and
//! JavaScript disabled) and three upgraded from 1.0.4 (one with
//! Java/JavaScript disabled). The 1.0.4-upgraded machines carry two
//! legacy preference files that cause erratic behaviour when upgrading
//! to Firefox 2.0 (the paper's \[11\]): `user.js` and `localstore.rdf`.
//!
//! With the vendor's preferences parser (which discards user-specific
//! noise such as update timestamps and window geometry), clustering is
//! sound: 4 clusters, w = 0, C = 2 (Figure 8). With Mirage parsers only,
//! the preference files fall back to content chunking, where every
//! machine's `prefs.js` hash differs (timestamps!): diameter 4 yields
//! the *ideal* two-cluster split, while diameter 6 collapses everything
//! into one imperfect cluster with w = 3 (Figure 9) — the paper's
//! demonstration that the right diameter is hard to pick and that only
//! parsers can tell relevant differences from irrelevant ones.

use std::collections::BTreeMap;

use mirage_cluster::{Clustering, ClusteringScore, MachineInfo};
use mirage_core::{UserAgent, Vendor};
use mirage_env::{
    ApplicationSpec, EnvPredicate, File, FileContent, MachineBuilder, Package, PrefsDoc,
    ProblemEffect, ProblemSpec, Repository, RunInput, Upgrade, Version, VersionReq,
};
use mirage_fingerprint::parsers::{mirage_default_registry, PrefsParser};
use mirage_fingerprint::{ParserRegistry, ResourceKind};

/// One Table 3 configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Machine name as printed in Table 3.
    pub name: &'static str,
    /// Upgraded from 1.0.4 (carries the legacy preference files).
    pub from10: bool,
    /// Java and JavaScript disabled.
    pub nojava: bool,
    /// Per-machine noise seed (update timestamps, window geometry).
    pub noise: u64,
}

/// The Table 3 machine list.
pub fn table3_configs() -> Vec<MachineConfig> {
    vec![
        MachineConfig {
            name: "firefox15-fresh",
            from10: false,
            nojava: false,
            noise: 11,
        },
        MachineConfig {
            name: "firefox15-fresh(2)",
            from10: false,
            nojava: false,
            noise: 22,
        },
        MachineConfig {
            name: "firefox15-fresh-nojava",
            from10: false,
            nojava: true,
            noise: 33,
        },
        MachineConfig {
            name: "firefox15-from10",
            from10: true,
            nojava: false,
            noise: 44,
        },
        MachineConfig {
            name: "firefox15-from10(2)",
            from10: true,
            nojava: false,
            noise: 55,
        },
        MachineConfig {
            name: "firefox15-from10-nojava",
            from10: true,
            nojava: true,
            noise: 66,
        },
    ]
}

/// Path of the preferences file.
pub const PREFS_PATH: &str = "/home/user/.mozilla/firefox/prefs.js";
/// Path of the first legacy preference file (1.0.x era).
pub const LEGACY_USERJS: &str = "/home/user/.mozilla/firefox/user.js";
/// Path of the second legacy file (1.0.x era, opaque format).
pub const LEGACY_LOCALSTORE: &str = "/home/user/.mozilla/firefox/localstore.rdf";

/// Builds a machine's `prefs.js`.
pub fn prefs_doc(nojava: bool, noise: u64) -> PrefsDoc {
    PrefsDoc::new()
        .pref("javascript.enabled", if nojava { "false" } else { "true" })
        .pref("java.enabled", if nojava { "false" } else { "true" })
        .pref("browser.startup.homepage", "\"about:home\"")
        .pref(
            "app.update.lastUpdateTime",
            format!("{}", 1_161_000_000 + noise),
        )
        .pref("browser.window.width", format!("{}", 800 + noise % 7 * 64))
}

/// The Firefox package repository (1.5.0.7 installed, 2.0 upgrade).
pub fn repository() -> Repository {
    let mut repo = Repository::new();
    repo.publish(
        Package::new("firefox", Version::new(1, 5, 7))
            .with_file(File::executable("/usr/bin/firefox", "firefox", 1507))
            .with_file(File::library(
                "/usr/lib/libxul.so",
                "libxul",
                "1.5.0.7",
                1507,
            )),
    );
    repo
}

/// The Firefox application behaviour spec.
pub fn firefox_spec() -> ApplicationSpec {
    ApplicationSpec::new("firefox", "firefox", "/usr/bin/firefox")
        .reads("/usr/lib/libxul.so")
        .probes(PREFS_PATH)
        .probes(LEGACY_USERJS)
        .probes(LEGACY_LOCALSTORE)
        .with_logic(mirage_env::AppLogic {
            serves_net: true,
            writes_data: false,
            log_path: None,
            output_path: Some("/home/user/.mozilla/firefox/session-summary".into()),
            version_sensitive: false,
        })
}

/// Builds one Table 3 machine.
pub fn build_machine(config: &MachineConfig, repo: &Repository) -> mirage_env::Machine {
    let mut builder = MachineBuilder::new(config.name)
        .env_var("HOME", "/home/user")
        .install(repo, "firefox", VersionReq::Any)
        .app(firefox_spec())
        .file(File::prefs(
            PREFS_PATH,
            prefs_doc(config.nojava, config.noise),
        ));
    if config.from10 {
        builder = builder
            .file(File::prefs(
                LEGACY_USERJS,
                PrefsDoc::new()
                    .pref("browser.chrome.legacy", "true")
                    .pref("mail.migration.from10", "true"),
            ))
            .file(
                File::new(
                    LEGACY_LOCALSTORE,
                    ResourceKind::Binary,
                    // Sized for a couple of Rabin chunks; identical on every
                    // upgraded machine (static since the 1.0→1.5 migration).
                    FileContent::Binary {
                        seed: 4242,
                        len: 9000,
                    },
                )
                .env_resource(),
            )
    }
    builder.build()
}

/// The vendor's reference machine: a fresh 1.5.0.7 install.
pub fn vendor_reference(repo: &Repository) -> mirage_env::Machine {
    build_machine(
        &MachineConfig {
            name: "vendor-reference",
            from10: false,
            nojava: false,
            noise: 0,
        },
        repo,
    )
}

/// The Firefox 2.0 upgrade with the legacy-preferences problem.
pub fn firefox2_upgrade() -> Upgrade {
    Upgrade::new(
        Package::new("firefox", Version::new(2, 0, 0))
            .with_file(File::executable("/usr/bin/firefox", "firefox", 2000))
            .with_file(File::library("/usr/lib/libxul.so", "libxul", "2.0", 2000)),
        vec![ProblemSpec::new(
            "ff2-legacy-prefs",
            "legacy 1.0.x preference files cause erratic behaviour in 2.0",
            EnvPredicate::FileExists(LEGACY_USERJS.into()),
            ProblemEffect::WrongOutput {
                app: "firefox".into(),
                tag: "!erratic".into(),
            },
        )],
    )
}

/// The vendor registry with the Firefox preferences parser (Figure 8).
pub fn full_registry() -> ParserRegistry {
    let mut registry = mirage_default_registry();
    registry.register_vendor(
        ResourceKind::Prefs,
        Box::new(PrefsParser::ignoring(["app.update.*", "browser.window.*"])),
    );
    registry
}

/// Ground-truth behaviour under [`firefox2_upgrade`].
pub fn behavior_map() -> BTreeMap<String, String> {
    table3_configs()
        .into_iter()
        .filter(|c| c.from10)
        .map(|c| (c.name.to_string(), "ff2-legacy-prefs".to_string()))
        .collect()
}

/// The assembled scenario.
pub struct FirefoxScenario {
    /// The vendor.
    pub vendor: Vendor,
    /// One agent per Table 3 machine.
    pub agents: Vec<UserAgent>,
    /// The Firefox 2.0 upgrade.
    pub upgrade: Upgrade,
    /// Ground-truth behaviours.
    pub behavior: BTreeMap<String, String>,
}

impl FirefoxScenario {
    /// Figure 8 configuration: vendor preferences parser registered.
    pub fn with_full_parsers() -> Self {
        Self::build(full_registry(), 3)
    }

    /// Figure 9 configuration: Mirage parsers only, explicit diameter.
    pub fn with_mirage_parsers(diameter: usize) -> Self {
        Self::build(mirage_default_registry(), diameter)
    }

    fn build(registry: ParserRegistry, diameter: usize) -> Self {
        let repo = repository();
        let reference = vendor_reference(&repo);
        let vendor = Vendor::new(reference, repo)
            .with_registry(registry)
            .with_diameter(diameter);
        let mut agents = Vec::new();
        for config in table3_configs() {
            let machine = build_machine(&config, &vendor.repo);
            let mut agent = UserAgent::new(machine);
            agent.collect("firefox", RunInput::new("browse-1"));
            agent.collect("firefox", RunInput::new("browse-2"));
            agents.push(agent);
        }
        FirefoxScenario {
            vendor,
            agents,
            upgrade: firefox2_upgrade(),
            behavior: behavior_map(),
        }
    }

    /// Computes clustering inputs for the fleet.
    pub fn fleet_inputs(&self) -> Vec<MachineInfo> {
        let classification = self
            .vendor
            .classify_reference("firefox", &[RunInput::new("a"), RunInput::new("b")]);
        let reference = self.vendor.reference_fingerprint(&classification);
        self.agents
            .iter()
            .map(|a| a.clustering_input("firefox", &self.vendor, &reference))
            .collect()
    }

    /// Runs the clustering and scores it.
    pub fn cluster_and_score(&self) -> (Clustering, ClusteringScore) {
        let inputs = self.fleet_inputs();
        let clustering = self.vendor.cluster(&inputs);
        let score = ClusteringScore::compute(&clustering, &self.behavior);
        (clustering, score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_cluster::ClusterQuality;

    #[test]
    fn legacy_localstore_has_two_or_three_chunks() {
        // The Figure 9 distances depend on the opaque legacy file
        // spanning 2–3 chunks (cross-group distance 5–6).
        let chunker = mirage_fingerprint::Chunker::paper_default();
        let bytes = FileContent::Binary {
            seed: 4242,
            len: 9000,
        }
        .render();
        let n = chunker.chunk(&bytes).len();
        assert!((2..=3).contains(&n), "localstore.rdf spans {n} chunks");
    }

    #[test]
    fn figure8_full_parsers_sound_4_clusters() {
        let scenario = FirefoxScenario::with_full_parsers();
        let (clustering, score) = scenario.cluster_and_score();
        clustering.validate_partition().unwrap();
        assert_eq!(clustering.len(), 4, "paper: 4 clusters");
        assert_eq!(score.misplaced, 0, "paper: w = 0");
        assert_eq!(score.unnecessary_clusters, 2, "paper: C = 2");
        assert_eq!(score.quality(), ClusterQuality::Sound);
        // Identical machines cluster together.
        let fresh = clustering.cluster_of("firefox15-fresh").unwrap();
        assert!(fresh.contains("firefox15-fresh(2)"));
        assert_eq!(fresh.len(), 2);
        let from10 = clustering.cluster_of("firefox15-from10").unwrap();
        assert!(from10.contains("firefox15-from10(2)"));
        assert_eq!(from10.len(), 2);
    }

    #[test]
    fn figure9_d4_is_ideal() {
        let scenario = FirefoxScenario::with_mirage_parsers(4);
        let (clustering, score) = scenario.cluster_and_score();
        assert_eq!(clustering.len(), 2, "paper: two clusters at d = 4");
        assert_eq!(score.misplaced, 0);
        assert_eq!(score.unnecessary_clusters, 0);
        assert_eq!(score.quality(), ClusterQuality::Ideal);
        // All problematic machines together, all healthy together.
        let bad = clustering.cluster_of("firefox15-from10").unwrap();
        assert_eq!(bad.len(), 3);
        assert!(bad.contains("firefox15-from10-nojava"));
    }

    #[test]
    fn figure9_d6_is_imperfect_w3() {
        let scenario = FirefoxScenario::with_mirage_parsers(6);
        let (clustering, score) = scenario.cluster_and_score();
        assert_eq!(clustering.len(), 1, "d = 6 collapses everything");
        assert_eq!(score.misplaced, 3, "paper: w = 3");
        assert_eq!(score.quality(), ClusterQuality::Imperfect);
    }

    #[test]
    fn upgrade_problem_triggers_only_on_from10_machines() {
        let repo = repository();
        let upgrade = firefox2_upgrade();
        for config in table3_configs() {
            let machine = build_machine(&config, &repo);
            let active = upgrade.active_problems(&machine);
            assert_eq!(
                !active.is_empty(),
                config.from10,
                "problem trigger mismatch on {}",
                config.name
            );
        }
    }

    #[test]
    fn validation_catches_the_erratic_behavior() {
        use mirage_testing::FailureKind;
        let scenario = FirefoxScenario::with_full_parsers();
        let from10 = scenario
            .agents
            .iter()
            .find(|a| a.machine.id == "firefox15-from10")
            .unwrap();
        let report = from10.test_upgrade(&scenario.vendor.repo, &scenario.upgrade);
        assert!(!report.passed());
        assert!(matches!(
            report.first_failure().unwrap().1,
            FailureKind::OutputMismatch { .. } | FailureKind::Crash { .. }
        ));
        // A fresh machine validates cleanly.
        let fresh = scenario
            .agents
            .iter()
            .find(|a| a.machine.id == "firefox15-fresh")
            .unwrap();
        assert!(fresh
            .test_upgrade(&scenario.vendor.repo, &scenario.upgrade)
            .passed());
    }
}
