//! The deployment-protocol simulation scenarios (paper §4.3, Figures
//! 10–11).
//!
//! 100 000 machines in 20 equal clusters of 5 000 (a sound clustering:
//! 16 more clusters than the ideal 4), one representative per cluster.
//! Times: download 5, test 10, fix 500. Problems: one *prevalent*
//! problem affecting 15 % of machines (three whole clusters, mirroring
//! the failure rates reported by Beattie et al.) and two *non-prevalent*
//! problems of one cluster each.
//!
//! Cluster index doubles as vendor distance, so placing the problem
//! clusters at the *end* of the index range is the Balanced protocol's
//! best case (problems discovered as late as possible) and placing them
//! at the *start* is its worst case. RandomStaging is evaluated, as in
//! the paper, on a scenario whose problems are uniformly spread across
//! the deployment order. The imperfect-clustering variant (Figure 11)
//! injects a single misplaced non-representative machine into the first
//! or last cluster of the deployment order.

use mirage_deploy::{Balanced, FrontLoading, NoStaging, Protocol, ProtocolChoice};
use mirage_sim::{latency_cdf, run, Scenario, ScenarioBuilder, SimMetrics, SimTime};

/// Number of clusters in the paper's scenario.
pub const CLUSTERS: usize = 20;
/// Machines per cluster.
pub const CLUSTER_SIZE: usize = 5_000;
/// The prevalent problem's name.
pub const PREVALENT: &str = "prevalent";
/// First non-prevalent problem.
pub const RARE_A: &str = "rare-a";
/// Second non-prevalent problem.
pub const RARE_B: &str = "rare-b";

/// Where the five problem clusters sit in the deployment order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProblemPlacement {
    /// Problems in the last clusters — Balanced's best case.
    Late,
    /// Problems in the first clusters — Balanced's worst case.
    Early,
    /// Problems uniformly spread — the RandomStaging evaluation.
    Uniform,
}

impl ProblemPlacement {
    fn clusters(self) -> ([usize; 3], usize, usize) {
        match self {
            ProblemPlacement::Late => ([15, 16, 17], 18, 19),
            ProblemPlacement::Early => ([0, 1, 2], 3, 4),
            ProblemPlacement::Uniform => ([3, 9, 15], 6, 12),
        }
    }
}

/// Builds the sound-clustering scenario with the given placement.
pub fn sound_scenario(placement: ProblemPlacement) -> Scenario {
    let (prevalent, rare_a, rare_b) = placement.clusters();
    ScenarioBuilder::new()
        .clusters(CLUSTERS, CLUSTER_SIZE, 1)
        .problem_in_clusters(PREVALENT, &prevalent)
        .problem_in_clusters(RARE_A, &[rare_a])
        .problem_in_clusters(RARE_B, &[rare_b])
        .build()
}

/// Builds the imperfect-clustering scenario: sound base plus one
/// misplaced (problematic, non-representative) machine in the given
/// cluster.
pub fn imperfect_scenario(placement: ProblemPlacement, misplaced_cluster: usize) -> Scenario {
    let (prevalent, rare_a, rare_b) = placement.clusters();
    ScenarioBuilder::new()
        .clusters(CLUSTERS, CLUSTER_SIZE, 1)
        .problem_in_clusters(PREVALENT, &prevalent)
        .problem_in_clusters(RARE_A, &[rare_a])
        .problem_in_clusters(RARE_B, &[rare_b])
        .misplaced_machine(misplaced_cluster, "misplaced")
        .build()
}

/// One Figure 10/11 curve: protocol label plus its per-cluster latency
/// CDF and headline metrics.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Curve label as printed in the figure legend.
    pub label: String,
    /// CDF points `(time, fraction of clusters)`.
    pub cdf: Vec<(SimTime, f64)>,
    /// Upgrade overhead (failed tests).
    pub overhead: usize,
    /// Completion time.
    pub completion: Option<SimTime>,
}

fn curve(label: &str, scenario: &Scenario, protocol: &mut dyn Protocol) -> Curve {
    let metrics = run(scenario, protocol);
    let latencies = metrics.cluster_latencies(&scenario.plan, 1.0);
    Curve {
        label: label.to_string(),
        cdf: latency_cdf(&latencies),
        overhead: metrics.failed_tests,
        completion: metrics.completion_time,
    }
}

/// Runs the five Figure 10 curves under sound clustering.
pub fn figure10() -> Vec<Curve> {
    let mut curves = Vec::new();

    let late = sound_scenario(ProblemPlacement::Late);
    curves.push(curve(
        "NoStaging",
        &late,
        &mut NoStaging::new(late.plan.clone()),
    ));
    curves.push(curve(
        "Balanced (best)",
        &late,
        &mut Balanced::new(late.plan.clone(), 1.0),
    ));

    let uniform = sound_scenario(ProblemPlacement::Uniform);
    curves.push(curve(
        "RandomStaging",
        &uniform,
        &mut Balanced::with_order(
            uniform.plan.clone(),
            uniform.plan.order_by_distance_asc(),
            1.0,
        ),
    ));
    curves.push(curve(
        "FrontLoading",
        &late,
        &mut FrontLoading::new(late.plan.clone(), 1.0),
    ));

    let early = sound_scenario(ProblemPlacement::Early);
    curves.push(curve(
        "Balanced (worst)",
        &early,
        &mut Balanced::new(early.plan.clone(), 1.0),
    ));
    curves
}

/// Runs the five Figure 11 curves under imperfect clustering.
///
/// "(first)" / "(last)" gives the position of the misplaced machine's
/// cluster in the protocol's deployment order.
pub fn figure11() -> Vec<Curve> {
    let mut curves = Vec::new();

    // NoStaging is insensitive to the misplaced machine's position.
    let base = imperfect_scenario(ProblemPlacement::Late, 0);
    curves.push(curve(
        "NoStaging",
        &base,
        &mut NoStaging::new(base.plan.clone()),
    ));

    // Balanced deploys ascending: first cluster = 0, last = 19. Its
    // problems sit late (best case), so the misplaced machine goes into
    // an otherwise-healthy cluster.
    let first = imperfect_scenario(ProblemPlacement::Late, 0);
    curves.push(curve(
        "Balanced-best (first)",
        &first,
        &mut Balanced::new(first.plan.clone(), 1.0),
    ));
    let last = imperfect_scenario(ProblemPlacement::Late, 14);
    curves.push(curve(
        "Balanced-best (last)",
        &last,
        &mut Balanced::new(last.plan.clone(), 1.0),
    ));

    // FrontLoading deploys descending: first cluster = 19, last = 0.
    let fl_first = imperfect_scenario(ProblemPlacement::Early, 19);
    curves.push(curve(
        "FrontLoading (first)",
        &fl_first,
        &mut FrontLoading::new(fl_first.plan.clone(), 1.0),
    ));
    let fl_last = imperfect_scenario(ProblemPlacement::Early, 5);
    curves.push(curve(
        "FrontLoading (last)",
        &fl_last,
        &mut FrontLoading::new(fl_last.plan.clone(), 1.0),
    ));
    curves
}

/// The §4.3.2 upgrade-overhead comparison under sound clustering.
///
/// Returns `(protocol, overhead)` rows: NoStaging's overhead is `m`
/// (every problematic machine), Balanced's and RandomStaging's is `p`
/// (one representative per problem), FrontLoading's is `p + Cp`
/// (representatives of every cluster sharing the prevalent problem).
pub fn overhead_table() -> Vec<(String, usize)> {
    figure10()
        .into_iter()
        .map(|c| (c.label, c.overhead))
        .collect()
}

/// Convenience: the expected problematic-machine count `m`.
pub fn problematic_machines() -> usize {
    5 * CLUSTER_SIZE
}

/// Runs one protocol on one scenario, returning full metrics (for
/// benches and the repro harness).
///
/// Protocol selection goes through the deploy crate's unified
/// [`ProtocolChoice`]; when the scenario carries an active fault plan
/// with a `rep_timeout`, the protocol is hardened to match.
pub fn run_protocol(scenario: &Scenario, name: &str) -> SimMetrics {
    let choice =
        ProtocolChoice::from_name(name).unwrap_or_else(|| panic!("unknown protocol {name}"));
    let mut protocol = choice.build(scenario.plan.clone(), scenario.threshold);
    if let Some(timeout) = scenario.faults.rep_timeout {
        protocol = protocol.with_rep_timeout(timeout);
    }
    run(scenario, &mut protocol)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smaller clusters keep debug-mode tests quick; the repro harness
    /// runs the full 100 000-machine version.
    fn small(placement: ProblemPlacement) -> Scenario {
        let (prevalent, rare_a, rare_b) = placement.clusters();
        ScenarioBuilder::new()
            .clusters(CLUSTERS, 50, 1)
            .problem_in_clusters(PREVALENT, &prevalent)
            .problem_in_clusters(RARE_A, &[rare_a])
            .problem_in_clusters(RARE_B, &[rare_b])
            .build()
    }

    #[test]
    fn overheads_match_paper_formulas() {
        let s = small(ProblemPlacement::Late);
        let m = 5 * 50;
        let nostaging = run(&s, &mut NoStaging::new(s.plan.clone()));
        assert_eq!(nostaging.failed_tests, m, "NoStaging overhead = m");
        let balanced = run(&s, &mut Balanced::new(s.plan.clone(), 1.0));
        assert_eq!(balanced.failed_tests, 3, "Balanced overhead = p");
        let frontloading = run(&s, &mut FrontLoading::new(s.plan.clone(), 1.0));
        assert_eq!(
            frontloading.failed_tests,
            3 + 2,
            "FrontLoading overhead = p + Cp"
        );
        let random = run(
            &s,
            &mut Balanced::with_order(s.plan.clone(), s.plan.order_by_distance_asc(), 1.0),
        );
        assert_eq!(random.failed_tests, 3, "RandomStaging overhead = p");
    }

    #[test]
    fn nostaging_cdf_shape() {
        let s = small(ProblemPlacement::Late);
        let m = run(&s, &mut NoStaging::new(s.plan.clone()));
        let cdf = latency_cdf(&m.cluster_latencies(&s.plan, 1.0));
        // 75 % of clusters pass at download+test = 15.
        assert_eq!(cdf[0], (15, 0.75));
        // Everyone done after the three sequential fixes.
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert_eq!(m.completion_time, Some(1530));
    }

    #[test]
    fn balanced_best_beats_frontloading_early_and_loses_late() {
        let s = small(ProblemPlacement::Late);
        let balanced = run(&s, &mut Balanced::new(s.plan.clone(), 1.0));
        let fl = run(&s, &mut FrontLoading::new(s.plan.clone(), 1.0));
        let b_cdf = latency_cdf(&balanced.cluster_latencies(&s.plan, 1.0));
        let f_cdf = latency_cdf(&fl.cluster_latencies(&s.plan, 1.0));
        // Balanced's first cluster completes far earlier than
        // FrontLoading's (which waits out phase 1 debugging).
        assert!(b_cdf[0].0 < f_cdf[0].0);
        // ...but FrontLoading's *last* cluster finishes sooner (the
        // paper's crossover).
        assert!(f_cdf.last().unwrap().0 < b_cdf.last().unwrap().0);
    }

    #[test]
    fn balanced_worst_is_slower_early_than_best() {
        let best = small(ProblemPlacement::Late);
        let worst = small(ProblemPlacement::Early);
        let b = run(&best, &mut Balanced::new(best.plan.clone(), 1.0));
        let w = run(&worst, &mut Balanced::new(worst.plan.clone(), 1.0));
        let b_cdf = latency_cdf(&b.cluster_latencies(&best.plan, 1.0));
        let w_cdf = latency_cdf(&w.cluster_latencies(&worst.plan, 1.0));
        // Worst case hits the problems immediately: first completion late.
        assert!(w_cdf[0].0 > b_cdf[0].0);
    }

    #[test]
    fn misplaced_machine_slows_the_affected_order_position() {
        let (prevalent, rare_a, rare_b) = ProblemPlacement::Late.clusters();
        let build = |mis: usize| {
            ScenarioBuilder::new()
                .clusters(CLUSTERS, 50, 1)
                .problem_in_clusters(PREVALENT, &prevalent)
                .problem_in_clusters(RARE_A, &[rare_a])
                .problem_in_clusters(RARE_B, &[rare_b])
                .misplaced_machine(mis, "misplaced")
                .build()
        };
        let first = build(0);
        let last = build(14);
        let m_first = run(&first, &mut Balanced::new(first.plan.clone(), 1.0));
        let m_last = run(&last, &mut Balanced::new(last.plan.clone(), 1.0));
        // Both runs pay one extra failure.
        assert_eq!(m_first.failed_tests, 4);
        assert_eq!(m_last.failed_tests, 4);
        // A misplaced machine in the first cluster delays everything.
        assert!(
            m_first.completion_time.unwrap() >= m_last.completion_time.unwrap(),
            "first: {:?}, last: {:?}",
            m_first.completion_time,
            m_last.completion_time
        );
    }

    #[test]
    fn figure_helpers_produce_five_curves() {
        // Run the full-size figures once in release-ish CI: they are the
        // repro harness's direct inputs. Keep assertions structural.
        let placements = [
            ProblemPlacement::Late,
            ProblemPlacement::Early,
            ProblemPlacement::Uniform,
        ];
        for p in placements {
            let s = small(p);
            assert_eq!(s.plan.clusters.len(), CLUSTERS);
        }
    }
}
