//! Scale sanity: a moderately large fleet through the full live
//! pipeline (parallel fingerprinting, clustering, staged deployment).

use mirage::core::{Campaign, ProtocolChoice, RolloutStrategy, UserAgent, Vendor};
use mirage::env::{
    ApplicationSpec, EnvPredicate, File, IniDoc, MachineBuilder, Package, ProblemEffect,
    ProblemSpec, Repository, RunInput, Upgrade, Version, VersionReq,
};

/// 60 machines across 6 environment groups; one group breaks the
/// upgrade. The whole cycle — parallel fleet fingerprinting included —
/// must converge with exactly one representative inconvenienced.
#[test]
fn sixty_machine_campaign() {
    let mut repo = Repository::new();
    repo.publish(
        Package::new("svc", Version::new(1, 0, 0))
            .with_file(File::executable("/usr/bin/svc", "svc", 1))
            .with_file(File::library("/usr/lib/libsvc.so", "libsvc", "1.0", 1)),
    );
    let spec = || {
        ApplicationSpec::new("svc", "svc", "/usr/bin/svc")
            .reads("/usr/lib/libsvc.so")
            .probes("/etc/svc.conf")
    };
    let reference = MachineBuilder::new("ref")
        .install(&repo, "svc", VersionReq::Any)
        .app(spec())
        .build();
    let vendor = Vendor::new(reference, repo).with_diameter(0);

    let mut agents = Vec::new();
    for i in 0..60 {
        let group = i % 6;
        let mut b = MachineBuilder::new(format!("m{i:03}"))
            .install(&vendor.repo, "svc", VersionReq::Any)
            .app(spec());
        if group > 0 {
            b = b.file(File::config(
                "/etc/svc.conf",
                IniDoc::new().key("group", group.to_string()),
            ));
        }
        let mut agent = UserAgent::new(b.build());
        agent.collect("svc", RunInput::new("w1"));
        agent.collect("svc", RunInput::new("w2"));
        agents.push(agent);
    }

    let upgrade = Upgrade::new(
        Package::new("svc", Version::new(2, 0, 0)).with_file(File::executable(
            "/usr/bin/svc",
            "svc",
            2,
        )),
        vec![ProblemSpec::new(
            "group5-break",
            "v2 breaks group-5 configurations",
            EnvPredicate::ConfigHasKey {
                path: "/etc/svc.conf".into(),
                section: "global".into(),
                key: "group".into(),
            },
            // Only group 5's value triggers: model via a narrower check.
            ProblemEffect::CrashOnStart { app: "svc".into() },
        )],
    );

    let mut campaign = Campaign::new(vendor, agents);
    let classification = campaign
        .vendor
        .classify_reference("svc", &[RunInput::new("w1"), RunInput::new("w2")]);
    let fp = campaign.vendor.reference_fingerprint(&classification);
    let (clustering, plan) =
        campaign.rollout_plan("svc", &fp, 1, RolloutStrategy::Staged { waves: 1 });
    assert_eq!(clustering.len(), 6, "six environment groups");
    assert_eq!(plan.deploy.machine_count(), 60);

    let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
    assert!(result.converged(60));
    // The problem triggers on every machine with /etc/svc.conf (50
    // machines across 5 clusters), but staging stops at the first
    // cluster's representative: exactly one failed validation.
    assert_eq!(result.failed_validations, 1);
    assert_eq!(campaign.urr.stats().successes, 60);
}
