//! Integration tests for the beyond-the-evaluation features: private
//! clustering (§3.5), incremental reclustering (§3.2.3 future work),
//! urgency-driven protocol selection (§3.2.2), per-machine rule
//! templates (§4.1), and the simulator's late-arrival / imperfect-
//! testing knobs.

use std::collections::BTreeMap;

use mirage::cluster::privacy::{is_my_turn, machine_token, PrivateClustering};
use mirage::cluster::{recluster_one, ClusteringScore, MachineInfo};
use mirage::scenarios::mysql::MySqlScenario;

/// Private clustering over the MySQL fleet reproduces the phase-1
/// structure from opaque tokens, and the advertised-token protocol lets
/// exactly the right machines respond.
#[test]
fn private_clustering_on_the_mysql_fleet() {
    let scenario = MySqlScenario::with_full_parsers();
    let inputs = scenario.fleet_inputs();

    // Machines report only tokens.
    let private = PrivateClustering::from_tokens(inputs.iter().map(|i| machine_token(&i.diff)));
    assert_eq!(private.machine_count(), 21);
    // Tokens group machines with identical parsed diffs — the plain
    // phase-1 structure. (The full clustering further splits by
    // overlapping applications, which private mode cannot see; the
    // MySQL fleet's parsed diffs alone give at least 10 groups.)
    assert!(private.len() >= 10, "got {} token groups", private.len());

    // Walking the advertised schedule reaches every machine exactly once.
    let mut reached = 0usize;
    for token in private.schedule() {
        let responders: Vec<&str> = inputs
            .iter()
            .filter(|i| is_my_turn(&i.diff, token))
            .map(|i| i.id())
            .collect();
        assert!(!responders.is_empty());
        reached += responders.len();
    }
    assert_eq!(reached, 21);
}

/// An admin edits `my.cnf` on one machine: incremental reclustering
/// moves exactly that machine and keeps the partition sound.
#[test]
fn incremental_recluster_after_config_edit() {
    let scenario = MySqlScenario::with_full_parsers();
    let inputs = scenario.fleet_inputs();
    let clustering = scenario.vendor.cluster(&inputs);
    let by_id: BTreeMap<String, MachineInfo> = inputs
        .iter()
        .map(|i| (i.id().to_string(), i.clone()))
        .collect();

    // ubt-ms4(2) suddenly matches the withconfig group: simulate by
    // giving it that group's diff.
    let withconfig = by_id["ubt-ms4/withconfig"].clone();
    let mut updated = withconfig.clone();
    updated.diff.machine = "ubt-ms4(2)".to_string();
    let next = recluster_one(
        &clustering,
        &by_id,
        updated.clone(),
        scenario.vendor.diameter,
    );
    next.validate_partition().unwrap();
    // It left its twin and joined the withconfig cluster.
    assert!(!next.cluster_of("ubt-ms4").unwrap().contains("ubt-ms4(2)"));
    assert!(next
        .cluster_of("ubt-ms4/withconfig")
        .unwrap()
        .contains("ubt-ms4(2)"));

    // Soundness against ground truth is preserved (the machine is still
    // healthy; it just changed environment groups).
    let mut machines = by_id.clone();
    machines.insert("ubt-ms4(2)".into(), updated);
    let score = ClusteringScore::compute(&next, &scenario.behavior);
    assert_eq!(score.misplaced, 0);
}

/// Rule templates expand per machine: the `.my.cnf` include lands in
/// each user's home.
#[test]
fn rule_templates_expand_per_machine() {
    use mirage::heuristic::{expand_templates, RuleTemplate};
    let templates = vec![RuleTemplate::include("$HOME/.my.cnf")];
    let root_env: BTreeMap<String, String> = [("HOME".to_string(), "/root".to_string())].into();
    let user_env: BTreeMap<String, String> = [("HOME".to_string(), "/home/dba".to_string())].into();
    let root_rules = expand_templates(&templates, &root_env);
    let user_rules = expand_templates(&templates, &user_env);
    assert!(root_rules.includes("/root/.my.cnf"));
    assert!(!root_rules.includes("/home/dba/.my.cnf"));
    assert!(user_rules.includes("/home/dba/.my.cnf"));
}

/// The simulator's extension knobs interact sanely with staging: an
/// escaped problem never drives a fix, and late arrivals still converge.
#[test]
fn simulator_extension_knobs() {
    use mirage::deploy::Balanced;
    use mirage::sim::{run, ScenarioBuilder};
    let scenario = ScenarioBuilder::new()
        .clusters(3, 5, 1)
        .problem_in_clusters("p", &[2])
        .missed_detections(2, 5) // every problem machine escapes
        .offline_machines(0, 2, 1_000)
        .threshold(0.6)
        .build();
    let metrics = run(&scenario, &mut Balanced::new(scenario.plan.clone(), 0.6));
    // All problems escaped: no failures, no fixes, but the faulty
    // release is now live on 5 machines — the paper's motivation for
    // better testing, quantified.
    assert_eq!(metrics.failed_tests, 0);
    assert_eq!(metrics.releases_shipped, 0);
    assert_eq!(metrics.escaped_problems, 5);
    // Late arrivals eventually integrate.
    assert_eq!(metrics.passed_count(), 15);
    assert!(
        metrics
            .machine_pass_time
            .iter()
            .flatten()
            .any(|&t| t >= 1_000),
        "some machine integrated after coming online"
    );
}
