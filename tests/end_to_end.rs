//! End-to-end integration tests: the full Mirage cycle on the paper's
//! evaluation fleets.

use mirage::cluster::ClusteringScore;
use mirage::core::{Campaign, ProtocolChoice, RolloutPlan, RolloutStrategy};
use mirage::deploy::DeployPlan;
use mirage::scenarios::{firefox, mysql};

/// The complete MySQL campaign: trace → identify → fingerprint →
/// cluster → staged deploy → sandbox test → report → fix → converge.
#[test]
fn mysql_campaign_with_balanced_protocol() {
    let scenario = mysql::MySqlScenario::with_full_parsers();
    let behavior = scenario.behavior.clone();
    let upgrade = scenario.upgrade.clone();
    let inputs = scenario.fleet_inputs();
    let clustering = scenario.vendor.cluster(&inputs);
    let score = ClusteringScore::compute(&clustering, &behavior);
    assert_eq!(score.clusters, 15);
    assert_eq!(score.misplaced, 0);

    let plan = RolloutPlan::new(
        DeployPlan::from_clustering(&clustering, 1),
        RolloutStrategy::Staged { waves: 1 },
    );
    let mut campaign = Campaign::new(scenario.vendor, scenario.agents);
    let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);

    assert!(result.converged(21), "all 21 machines converge");
    // One representative per problem is inconvenienced; the PHP problem
    // affects multiple clusters but the first failure halts deployment
    // until the fix ships.
    assert!(
        (1..=3).contains(&result.failed_validations),
        "staged overhead should be tiny, got {}",
        result.failed_validations
    );
    // Three releases at most: original + one fix per problem (the fix
    // batches all problems known at that point).
    assert!(result.releases.len() <= 3);

    // The URR has deduplicated failure groups covering both problems.
    let groups = campaign.urr.failure_groups();
    assert!(!groups.is_empty());
    let stats = campaign.urr.stats();
    assert_eq!(stats.failures, result.failed_validations);
    // Every machine eventually filed a success report.
    assert!(stats.successes >= 21);
}

/// NoStaging inconveniences every problem machine; staging avoids that.
#[test]
fn mysql_nostaging_pays_full_overhead() {
    let scenario = mysql::MySqlScenario::with_full_parsers();
    let upgrade = scenario.upgrade.clone();
    let inputs = scenario.fleet_inputs();
    let clustering = scenario.vendor.cluster(&inputs);
    let plan = RolloutPlan::new(
        DeployPlan::from_clustering(&clustering, 1),
        RolloutStrategy::Staged { waves: 1 },
    );
    let mut campaign = Campaign::new(scenario.vendor, scenario.agents);
    let result = campaign.drive(upgrade, &plan, ProtocolChoice::NoStaging, 1.0);
    assert!(result.converged(21));
    // All 5 PHP machines + 2 userconfig machines fail.
    assert_eq!(result.failed_validations, 7, "m = 7 problem machines");
}

/// FrontLoading discovers every problem in phase 1 (all reps), so the
/// failure groups cover all problem clusters before non-reps test.
#[test]
fn firefox_frontloading_campaign() {
    let scenario = firefox::FirefoxScenario::with_full_parsers();
    let upgrade = scenario.upgrade.clone();
    let inputs = scenario.fleet_inputs();
    let clustering = scenario.vendor.cluster(&inputs);
    assert_eq!(clustering.len(), 4);
    let plan = RolloutPlan::new(
        DeployPlan::from_clustering(&clustering, 1),
        RolloutStrategy::Staged { waves: 1 },
    );
    let mut campaign = Campaign::new(scenario.vendor, scenario.agents);
    let result = campaign.drive(upgrade, &plan, ProtocolChoice::FrontLoading, 1.0);
    assert!(result.converged(6));
    // Two clusters carry the problem → two representatives fail
    // (p + Cp = 1 + 1).
    assert_eq!(result.failed_validations, 2);
    assert_eq!(result.releases.len(), 2);
}

/// The live machines are genuinely upgraded after a campaign, and
/// machines that first saw a faulty release end up on the fixed one.
#[test]
fn campaign_upgrades_live_machines() {
    let scenario = mysql::MySqlScenario::with_full_parsers();
    let upgrade = scenario.upgrade.clone();
    let inputs = scenario.fleet_inputs();
    let clustering = scenario.vendor.cluster(&inputs);
    let plan = RolloutPlan::new(
        DeployPlan::from_clustering(&clustering, 1),
        RolloutStrategy::Staged { waves: 1 },
    );
    let mut campaign = Campaign::new(scenario.vendor, scenario.agents);
    let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
    assert!(result.converged(21));
    for agent in &campaign.agents {
        let v = agent
            .machine
            .pkgs
            .installed_version("mysql")
            .expect("mysql installed");
        assert_eq!(v.major, 5, "{} still runs MySQL {v}", agent.machine.id);
        // The new library is actually on disk.
        assert_eq!(
            agent
                .machine
                .fs
                .get("/usr/lib/libmysqlclient.so")
                .and_then(|f| f.content.library_version()),
            Some("5.0")
        );
    }
}
