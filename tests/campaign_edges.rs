//! Edge-case behaviour of live campaigns.

use mirage::core::{Campaign, ProtocolChoice, RolloutPlan, RolloutStrategy, UserAgent, Vendor};
use mirage::env::{
    AppLogic, ApplicationSpec, File, MachineBuilder, Package, Repository, RunInput, Upgrade,
    Version, VersionReq,
};
use mirage::testing::refresh_runs;

fn version_sensitive_world() -> (Campaign, mirage::fingerprint::MachineFingerprint, Upgrade) {
    let mut repo = Repository::new();
    repo.publish(
        Package::new("app", Version::new(1, 0, 0)).with_file(File::executable(
            "/usr/bin/app",
            "app",
            1,
        )),
    );
    let spec = || {
        ApplicationSpec::new("app", "app", "/usr/bin/app").with_logic(AppLogic {
            serves_net: true,
            writes_data: false,
            log_path: None,
            output_path: Some("/out".into()),
            version_sensitive: true, // the upgrade legitimately changes I/O
        })
    };
    let reference = MachineBuilder::new("ref")
        .install(&repo, "app", VersionReq::Any)
        .app(spec())
        .build();
    let vendor = Vendor::new(reference, repo).with_diameter(0);
    let mut agents = Vec::new();
    for i in 0..3 {
        let mut agent = UserAgent::new(
            MachineBuilder::new(format!("u{i}"))
                .install(&vendor.repo, "app", VersionReq::Any)
                .app(spec())
                .build(),
        );
        agent.collect("app", RunInput::new("w").request("c", b"q".to_vec()));
        agents.push(agent);
    }
    let upgrade = Upgrade::new(
        Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
            "/usr/bin/app",
            "app",
            2,
        )),
        vec![],
    );
    let c = vendor.classify_reference("app", &[RunInput::new("w")]);
    let fp = vendor.reference_fingerprint(&c);
    (Campaign::new(vendor, agents), fp, upgrade)
}

/// A feature upgrade that changes I/O fails strict validation at the
/// representative, and — because there is no *bug* for the vendor to
/// fix — the campaign stalls rather than looping or mis-converging.
/// This is exactly the situation the §3.5 refresh flow exists for.
#[test]
fn io_changing_upgrade_stalls_without_refresh() {
    let (mut campaign, fp, upgrade) = version_sensitive_world();
    let (_, plan) = campaign.rollout_plan("app", &fp, 1, RolloutStrategy::Staged { waves: 1 });
    let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
    assert!(!result.converged(3), "strict comparison must block it");
    assert_eq!(result.releases.len(), 1, "nothing to fix, nothing shipped");
    assert!(campaign.urr.stats().failures >= 1);
    // The failure signature is an output mismatch, not a crash.
    let groups = campaign.urr.failure_groups();
    assert!(groups[0].signature.contains("output mismatch"));
}

/// The refresh flow unblocks it: a representative approves the new
/// behaviour and records fresh traces; replacing the fleet's reference
/// runs lets the same campaign converge with zero failures.
#[test]
fn refresh_flow_unblocks_io_changing_upgrade() {
    let (mut campaign, fp, upgrade) = version_sensitive_world();
    // The representative records the upgraded behaviour.
    let rep_machine = campaign.agents[0].machine.clone();
    let inputs = vec![RunInput::new("w").request("c", b"q".to_vec())];
    let fresh = refresh_runs(
        &rep_machine,
        &campaign.vendor.repo,
        &upgrade,
        &inputs,
        "app",
    );
    assert!(!fresh.is_empty());
    // The cluster members adopt the refreshed reference traces.
    for agent in &mut campaign.agents {
        agent.runs = fresh
            .iter()
            .map(|r| {
                let mut run = r.clone();
                run.trace.machine = agent.machine.id.clone();
                run
            })
            .collect();
    }
    let (_, plan) = campaign.rollout_plan("app", &fp, 1, RolloutStrategy::Staged { waves: 1 });
    let result = campaign.drive(upgrade, &plan, ProtocolChoice::Balanced, 1.0);
    assert!(result.converged(3));
    assert_eq!(result.failed_validations, 0);
}

/// Machines named in the plan but missing from the fleet (retired
/// hardware) are skipped without wedging the campaign, as long as the
/// threshold tolerates them.
#[test]
fn missing_machines_are_tolerated_with_threshold() {
    let mut repo = Repository::new();
    repo.publish(
        Package::new("app", Version::new(1, 0, 0)).with_file(File::executable(
            "/usr/bin/app",
            "app",
            1,
        )),
    );
    let spec = || ApplicationSpec::new("app", "app", "/usr/bin/app");
    let reference = MachineBuilder::new("ref")
        .install(&repo, "app", VersionReq::Any)
        .app(spec())
        .build();
    let vendor = Vendor::new(reference, repo).with_diameter(0);
    let mut agents = Vec::new();
    for i in 0..3 {
        let mut agent = UserAgent::new(
            MachineBuilder::new(format!("u{i}"))
                .install(&vendor.repo, "app", VersionReq::Any)
                .app(spec())
                .build(),
        );
        agent.collect("app", RunInput::new("w"));
        agents.push(agent);
    }
    let c = vendor.classify_reference("app", &[RunInput::new("w")]);
    let fp = vendor.reference_fingerprint(&c);
    let mut campaign = Campaign::new(vendor, agents);
    let clean = Upgrade::new(
        Package::new("app", Version::new(2, 0, 0)).with_file(File::executable(
            "/usr/bin/app",
            "app",
            2,
        )),
        vec![],
    );
    let (_, plan) = campaign.rollout_plan("app", &fp, 1, RolloutStrategy::Staged { waves: 1 });
    // A ghost machine appears in the plan's only cluster (it is not a
    // representative). Mutate the deploy plan, then re-shape the
    // cohorts so the rollout plan sees the ghost too.
    let mut deploy = plan.deploy;
    let ghost = deploy.machines.intern("ghost");
    deploy.clusters[0].members.push(ghost);
    let plan = RolloutPlan::new(deploy, RolloutStrategy::Staged { waves: 1 });
    let result = campaign.drive(clean, &plan, ProtocolChoice::Balanced, 0.75);
    // The three real machines all converge; the ghost never reports.
    assert_eq!(result.integrated.len(), 3);
}
