//! One test per paper table/figure: the headline numbers this
//! reproduction commits to (the EXPERIMENTS.md ledger, executable).

use mirage::scenarios::{apps, deployment, firefox, mysql, survey};

#[test]
fn table1_all_rows() {
    let expected = [
        ("firefox", 907, 839, 1, 23, 7),
        ("apache", 400, 251, 133, 0, 2),
        ("php", 215, 206, 0, 0, 0),
        ("mysql", 286, 250, 0, 33, 1),
    ];
    for (model, (name, files, env, fp, fn_, rules)) in apps::all_models().iter().zip(expected) {
        let row = model.table1_row();
        assert_eq!(row.app, name);
        assert_eq!(
            (
                row.files_total,
                row.env_resources,
                row.false_positives,
                row.false_negatives,
                row.vendor_rules
            ),
            (files, env, fp, fn_, rules),
            "Table 1 row {name}"
        );
        assert!(model.with_rules_row().is_perfect(), "{name} with rules");
    }
}

#[test]
fn figure6_and_7() {
    let (clustering, score) = mysql::MySqlScenario::with_full_parsers().cluster_and_score();
    assert_eq!(
        (
            clustering.len(),
            score.unnecessary_clusters,
            score.misplaced
        ),
        (15, 12, 0)
    );

    let (_, score) = mysql::MySqlScenario::with_mirage_parsers(3).cluster_and_score();
    assert_eq!(score.misplaced, 2, "Figure 7: w = 2 at d = 3");
}

#[test]
fn figure8_and_9() {
    let (clustering, score) = firefox::FirefoxScenario::with_full_parsers().cluster_and_score();
    assert_eq!(
        (
            clustering.len(),
            score.unnecessary_clusters,
            score.misplaced
        ),
        (4, 2, 0)
    );

    let (c4, s4) = firefox::FirefoxScenario::with_mirage_parsers(4).cluster_and_score();
    assert_eq!(
        (c4.len(), s4.unnecessary_clusters, s4.misplaced),
        (2, 0, 0),
        "d=4 ideal"
    );

    let (c6, s6) = firefox::FirefoxScenario::with_mirage_parsers(6).cluster_and_score();
    assert_eq!((c6.len(), s6.misplaced), (1, 3), "d=6 imperfect");
}

#[test]
fn survey_headlines() {
    let rows = survey::dataset();
    let s = survey::stats(&rows);
    assert_eq!(s.respondents, 50);
    assert!((s.experienced_fraction - 0.82).abs() < 1e-9);
    assert!((s.monthly_or_more - 0.90).abs() < 1e-9);
    assert!((s.refrain_fraction - 0.70).abs() < 1e-9);
    assert!((s.failure_rate_avg - 8.6).abs() < 1e-9);
    assert!((s.failure_rate_median - 5.0).abs() < 1e-9);
    assert!((s.failure_rate_5_to_10 - 0.66).abs() < 1e-9);
}

/// The §4.3.2 overhead formulas on a scaled-down fleet (the full
/// 100 000-machine run is exercised by the repro harness and benches).
#[test]
fn overhead_formulas_hold() {
    use mirage::deploy::{Balanced, FrontLoading, NoStaging};
    use mirage::sim::{run, ScenarioBuilder};
    let scenario = ScenarioBuilder::new()
        .clusters(20, 100, 1)
        .problem_in_clusters(deployment::PREVALENT, &[15, 16, 17])
        .problem_in_clusters(deployment::RARE_A, &[18])
        .problem_in_clusters(deployment::RARE_B, &[19])
        .build();
    let m = 5 * 100;
    assert_eq!(
        run(&scenario, &mut NoStaging::new(scenario.plan.clone())).failed_tests,
        m
    );
    assert_eq!(
        run(&scenario, &mut Balanced::new(scenario.plan.clone(), 1.0)).failed_tests,
        3
    );
    assert_eq!(
        run(
            &scenario,
            &mut FrontLoading::new(scenario.plan.clone(), 1.0)
        )
        .failed_tests,
        5
    );
}

/// Figure 10's qualitative shape at reduced scale: NoStaging's immediate
/// 75 %, Balanced-best's early lead, FrontLoading's late-start /
/// early-finish crossover.
#[test]
fn figure10_shape() {
    use mirage::deploy::{Balanced, FrontLoading, NoStaging};
    use mirage::sim::{latency_cdf, run, ScenarioBuilder};
    let scenario = ScenarioBuilder::new()
        .clusters(20, 100, 1)
        .problem_in_clusters(deployment::PREVALENT, &[15, 16, 17])
        .problem_in_clusters(deployment::RARE_A, &[18])
        .problem_in_clusters(deployment::RARE_B, &[19])
        .build();
    let nostaging = run(&scenario, &mut NoStaging::new(scenario.plan.clone()));
    let balanced = run(&scenario, &mut Balanced::new(scenario.plan.clone(), 1.0));
    let frontloading = run(
        &scenario,
        &mut FrontLoading::new(scenario.plan.clone(), 1.0),
    );

    let ns = latency_cdf(&nostaging.cluster_latencies(&scenario.plan, 1.0));
    assert_eq!(ns[0], (15, 0.75), "75% of clusters pass immediately");

    let b = latency_cdf(&balanced.cluster_latencies(&scenario.plan, 1.0));
    let f = latency_cdf(&frontloading.cluster_latencies(&scenario.plan, 1.0));
    assert!(b[0].0 < f[0].0, "Balanced starts integrating first");
    assert!(
        f.last().unwrap().0 < b.last().unwrap().0,
        "FrontLoading's last cluster finishes first (the crossover)"
    );
}
