//! Cross-crate pipeline tests on synthetic fleets: each stage's output
//! is checked as it feeds the next.

use std::collections::BTreeMap;

use mirage::cluster::{ClusterEngine, ClusteringScore, MachineInfo};
use mirage::core::{classify_machine, fingerprint_machine, UserAgent, Vendor};
use mirage::deploy::{Balanced, DeployPlan, NoStaging};
use mirage::env::{
    ApplicationSpec, File, IniDoc, MachineBuilder, Package, Repository, RunInput, Version,
    VersionReq,
};
use mirage::sim::{latency_cdf, run, ScenarioBuilder};
use mirage::trace::RunId;

fn repo() -> Repository {
    let mut repo = Repository::new();
    repo.publish(
        Package::new("svc", Version::new(1, 0, 0))
            .with_file(File::executable("/usr/bin/svc", "svc", 1))
            .with_file(File::library("/usr/lib/libsvc.so", "libsvc", "1.0", 1)),
    );
    repo
}

fn spec() -> ApplicationSpec {
    ApplicationSpec::new("svc", "svc", "/usr/bin/svc")
        .reads("/usr/lib/libsvc.so")
        .probes("/etc/svc.conf")
}

fn machine(name: &str, conf_value: Option<&str>) -> mirage::env::Machine {
    let mut builder = MachineBuilder::new(name)
        .install(&repo(), "svc", VersionReq::Any)
        .app(spec());
    if let Some(v) = conf_value {
        builder = builder.file(File::config(
            "/etc/svc.conf",
            IniDoc::new().section("svc").key("mode", v),
        ));
    }
    builder.build()
}

/// Heuristic output feeds fingerprinting: the identified resources are
/// exactly the fingerprinted ones, and config differences surface as
/// item diffs.
#[test]
fn heuristic_feeds_fingerprinting() {
    let vendor_machine = machine("vendor", None);
    let vendor = Vendor::new(vendor_machine, repo());
    let classification = vendor.classify_reference("svc", &[RunInput::new("r")]);
    assert!(classification.is_env("/usr/bin/svc"));
    assert!(classification.is_env("/usr/lib/libsvc.so"));
    assert!(!classification.is_env("/etc/svc.conf"), "absent on vendor");
    let reference = vendor.reference_fingerprint(&classification);

    let user = machine("user", Some("fast"));
    let traces = vec![user.run_app("svc", &RunInput::new("r"), RunId(0))];
    let uc = classify_machine(&user, "svc", &traces, &vendor.heuristic, &vendor.rules);
    assert!(uc.is_env("/etc/svc.conf"), "probed and found on the user");
    let ufp = fingerprint_machine(&user, &uc, &vendor.registry, "user");
    let diff = ufp.diff(&reference);
    assert!(!diff.is_empty(), "config file must show in the diff");
    assert!(diff
        .all_items()
        .iter()
        .all(|i| i.resource() == "/etc/svc.conf"));
}

/// Fingerprint diffs feed clustering; clustering feeds deployment plans;
/// plans feed the simulator; the simulator's metrics match the fleet.
#[test]
fn diffs_to_clusters_to_simulation() {
    let vendor_machine = machine("vendor", None);
    let vendor = Vendor::new(vendor_machine, repo()).with_diameter(0);
    let classification = vendor.classify_reference("svc", &[RunInput::new("r")]);
    let reference = vendor.reference_fingerprint(&classification);

    let mut infos: Vec<MachineInfo> = Vec::new();
    for i in 0..9 {
        let conf = match i % 3 {
            0 => None,
            1 => Some("fast"),
            _ => Some("slow"),
        };
        let mut agent = UserAgent::new(machine(&format!("m{i}"), conf));
        agent.collect("svc", RunInput::new("r"));
        infos.push(agent.clustering_input("svc", &vendor, &reference));
    }
    let clustering = ClusterEngine::new(0).cluster(&infos);
    assert_eq!(clustering.len(), 3, "none / fast / slow configurations");
    clustering.validate_partition().unwrap();

    // Pretend the "slow" config breaks the upgrade.
    let behavior: BTreeMap<String, String> = (0..9)
        .filter(|i| i % 3 == 2)
        .map(|i| (format!("m{i}"), "slow-breaks".to_string()))
        .collect();
    let score = ClusteringScore::compute(&clustering, &behavior);
    assert_eq!(score.misplaced, 0);

    // Drive the deployment plan through the discrete-event simulator.
    let plan = DeployPlan::from_clustering(&clustering, 1);
    let mut builder = mirage::sim::ScenarioBuilder::over_plan(plan.clone());
    for m in behavior.keys() {
        builder = builder.problem_on_machine(m, "slow-breaks");
    }
    let scenario = builder.build();
    let metrics = run(&scenario, &mut Balanced::new(plan.clone(), 1.0));
    assert_eq!(metrics.passed_count(), 9);
    assert_eq!(metrics.failed_tests, 1, "only the slow cluster's rep");
    let nostaging = run(&scenario, &mut NoStaging::new(plan.clone()));
    assert_eq!(nostaging.failed_tests, 3, "every slow machine");
    // Staging sacrifices some latency for the overhead win.
    assert!(
        metrics.completion_time.unwrap() >= nostaging.completion_time.unwrap(),
        "balanced {:?} vs nostaging {:?}",
        metrics.completion_time,
        nostaging.completion_time
    );
}

/// Cluster latency CDFs are monotone and complete for healthy fleets.
#[test]
fn latency_cdf_invariants() {
    let scenario = ScenarioBuilder::new().clusters(10, 20, 2).build();
    let metrics = run(&scenario, &mut Balanced::new(scenario.plan.clone(), 1.0));
    let cdf = latency_cdf(&metrics.cluster_latencies(&scenario.plan, 1.0));
    assert!(!cdf.is_empty());
    assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    for pair in cdf.windows(2) {
        assert!(pair[0].0 < pair[1].0, "times strictly increase");
        assert!(pair[0].1 < pair[1].1, "fractions strictly increase");
    }
}

/// Representative count is a real knob: more representatives catch a
/// misplaced machine in the representative stage.
#[test]
fn extra_representatives_catch_misplaced_machines_earlier() {
    // With 1 rep, the misplaced machine (a non-rep) fails during the
    // non-rep wave; with enough reps it IS a rep and fails in the rep
    // stage, before other members are disturbed... unless it is not
    // first. Either way the fleet converges with exactly one failure.
    for reps in [1usize, 3] {
        let scenario = ScenarioBuilder::new()
            .clusters(3, 6, reps)
            .misplaced_machine(1, "odd")
            .build();
        let metrics = run(&scenario, &mut Balanced::new(scenario.plan.clone(), 1.0));
        assert_eq!(metrics.failed_tests, 1);
        assert_eq!(metrics.passed_count(), 18);
    }
}
