//! Mirage: integrated software upgrade testing and staged distribution.
//!
//! This is the umbrella crate of the Mirage workspace, a production-quality
//! reproduction of *"Staged Deployment in Mirage, an Integrated Software
//! Upgrade Testing and Distribution System"* (Crameri et al., SOSP 2007).
//! It re-exports every subsystem crate under a stable, discoverable path.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete fleet-clustering and staged
//! deployment walk-through, and the `mirage-scenarios` crate for faithful
//! reconstructions of the paper's MySQL (Table 2) and Firefox (Table 3)
//! evaluation fleets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

pub use mirage_cluster as cluster;
pub use mirage_core as core;
pub use mirage_deploy as deploy;
pub use mirage_env as env;
pub use mirage_fingerprint as fingerprint;
pub use mirage_heuristic as heuristic;
pub use mirage_report as report;
pub use mirage_scenarios as scenarios;
pub use mirage_sim as sim;
pub use mirage_testing as testing;
pub use mirage_trace as trace;
